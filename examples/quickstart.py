#!/usr/bin/env python3
"""Quickstart: solve a random 3-SAT instance with HyQSAT.

Generates a hard uniform random 3-SAT instance (clause/variable ratio
4.3, near the phase transition), solves it with the hybrid
quantum-annealer + CDCL solver, and compares the iteration count with
the classic MiniSAT-style baseline — the paper's Table I metric.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AnnealerDevice,
    ChimeraGraph,
    HyQSatConfig,
    HyQSatSolver,
    minisat_solver,
    random_3sat,
)


def main() -> None:
    rng = np.random.default_rng(seed=25)
    formula = random_3sat(num_vars=100, num_clauses=430, rng=rng)
    print(f"instance: {formula.num_vars} variables, {formula.num_clauses} clauses")

    # Classic CDCL baseline (MiniSAT-style: VSIDS + Luby restarts).
    baseline = minisat_solver(formula).solve()
    print(f"classic CDCL : {baseline.status.value:8s} {baseline.stats.iterations} iterations")

    # HyQSAT on a simulated noise-free D-Wave 2000Q (Chimera C16).
    device = AnnealerDevice(ChimeraGraph(16, 16, 4), seed=1)
    solver = HyQSatSolver(formula, device=device, config=HyQSatConfig(seed=1))
    result = solver.solve()
    print(f"HyQSAT       : {result.status.value:8s} {result.stats.iterations} iterations")
    print(
        f"  warm-up {result.hybrid.warmup_iterations} iterations, "
        f"{result.hybrid.qa_calls} QA calls, "
        f"{result.hybrid.avg_embedded_clauses:.0f} clauses/call embedded, "
        f"device time {result.hybrid.qpu_time_us:.0f} us"
    )
    strategies = {
        s.name: count for s, count in result.hybrid.strategy_counts.items() if count
    }
    print(f"  feedback strategies used: {strategies}")

    if baseline.is_sat and result.is_sat:
        assert result.model.satisfies(formula)
        reduction = baseline.stats.iterations / max(1, result.stats.iterations)
        print(f"iteration reduction: {reduction:.2f}x")


if __name__ == "__main__":
    main()
