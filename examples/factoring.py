#!/usr/bin/env python3
"""Integer factorisation as SAT (the paper's IF domain).

Encodes ``A x B = N`` through an array-multiplier circuit (Tseitin,
width-3 clauses) and lets HyQSAT find the factors of a semiprime —
the EzFact/Lisa benchmark family.  Also demonstrates the UNSAT side:
a prime N has no non-trivial factorisation.

Run:  python examples/factoring.py
"""

import numpy as np

from repro import AnnealerDevice, ChimeraGraph, HyQSatSolver
from repro.benchgen.factoring import factoring_cnf, random_semiprime


def decode_factor(model, first_var: int, bits: int) -> int:
    return sum(
        int(model[v]) << i for i, v in enumerate(range(first_var, first_var + bits))
    )


def main() -> None:
    rng = np.random.default_rng(seed=3)
    factor_bits = 5
    n, p, q = random_semiprime(factor_bits, rng)
    print(f"factoring N = {n} (= {p} x {q}, hidden)")

    formula = factoring_cnf(n, factor_bits, factor_bits)
    print(f"encoding: {formula.num_vars} vars, {formula.num_clauses} clauses (3-SAT)")

    device = AnnealerDevice(ChimeraGraph(16, 16, 4), seed=2)
    result = HyQSatSolver(formula, device=device).solve()
    assert result.is_sat, "semiprime encoding must be satisfiable"
    a = decode_factor(result.model, 1, factor_bits)
    b = decode_factor(result.model, factor_bits + 1, factor_bits)
    print(f"found {a} x {b} = {a * b} in {result.stats.iterations} iterations")
    assert a * b == n and a > 1 and b > 1

    # The UNSAT side: a prime has no such factorisation.
    prime = 97
    unsat = HyQSatSolver(
        factoring_cnf(prime, factor_bits, factor_bits), device=device
    ).solve()
    print(f"N = {prime} (prime): {unsat.status.value} "
          f"in {unsat.stats.iterations} iterations")
    assert unsat.is_unsat


if __name__ == "__main__":
    main()
