#!/usr/bin/env python3
"""Fault tolerance: a hybrid solve surviving a failing QPU service.

Injects every fault channel the resilience layer models — programming
failures, readout timeouts, read dropouts, and calibration drift — at
a 20% rate, then solves the same instance three ways:

1. classic CDCL (the ground truth),
2. HyQSAT on the faulty device behind the resilience proxy (retry +
   backoff, deadlines, circuit breaker),
3. HyQSAT with the breaker forced open from the start — the graceful-
   degradation path, which must be bit-identical to classic CDCL.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import (
    AnnealerDevice,
    ChimeraGraph,
    FaultModel,
    HyQSatConfig,
    HyQSatSolver,
    ResilienceConfig,
    ResilientDevice,
    minisat_solver,
    random_3sat,
)
from repro.analysis import resilience_summary

FAULT_RATE = 0.20


def main() -> None:
    rng = np.random.default_rng(seed=42)
    formula = random_3sat(num_vars=60, num_clauses=258, rng=rng)
    print(f"instance: {formula.num_vars} variables, {formula.num_clauses} clauses")

    baseline = minisat_solver(formula).solve()
    print(f"classic CDCL : {baseline.status.value:8s} "
          f"{baseline.stats.iterations} iterations")

    # A device where every fault channel fires at 20%, wrapped in the
    # resilience proxy.  Same (formula, seeds) -> same fault sequence,
    # retry trace, and result, every run.
    faulty = AnnealerDevice(
        ChimeraGraph(16, 16, 4),
        seed=1,
        faults=FaultModel.uniform(FAULT_RATE),
        fault_seed=7,
    )
    device = ResilientDevice(faulty, ResilienceConfig(seed=7))
    solver = HyQSatSolver(formula, device=device, config=HyQSatConfig(num_reads=3))
    result = solver.solve()
    hybrid = result.hybrid
    print(f"HyQSAT @ {FAULT_RATE:.0%} faults: {result.status.value:8s} "
          f"{result.stats.iterations} iterations")
    print(f"  QA calls served {hybrid.qa_calls}, failed {hybrid.qa_failures}, "
          f"retries {hybrid.qa_retries} "
          f"(availability {hybrid.qa_availability:.0%})")
    print(f"  faults absorbed: "
          f"{dict(sorted(hybrid.qa_fault_counts.items())) or 'none'}")
    print(f"  breaker {hybrid.breaker_state}, "
          f"budget spent {hybrid.qa_budget_spent_us:.0f} us"
          + (f", degraded to CDCL ({hybrid.degraded_reason})"
             if hybrid.degraded else ""))
    for key, value in resilience_summary(hybrid).items():
        print(f"    {key:28s} {value:g}")

    assert result.status is baseline.status, "verdict must survive faults"
    if result.is_sat:
        assert result.model.satisfies(formula)

    # Graceful degradation: breaker forced open -> pure CDCL,
    # bit-identical to a bare CdclSolver with the same configuration.
    from repro.cdcl.solver import CdclSolver

    degraded_device = ResilientDevice(
        AnnealerDevice(ChimeraGraph(16, 16, 4), seed=1)
    )
    degraded_device.force_degraded()
    degraded = HyQSatSolver(formula, device=degraded_device).solve()
    pure = CdclSolver(formula).solve()
    print(f"breaker open : {degraded.status.value:8s} "
          f"{degraded.stats.iterations} iterations "
          f"(degraded={degraded.hybrid.degraded}, "
          f"reason={degraded.hybrid.degraded_reason})")
    assert degraded.stats.iterations == pure.stats.iterations
    assert degraded.model == pure.model
    print("degraded run is bit-identical to pure CDCL — OK")


if __name__ == "__main__":
    main()
