#!/usr/bin/env python3
"""Compare the three embedding schemes (the Figure 13 experiment).

Embeds clause queues of growing size with HyQSAT's linear-time scheme,
the Minorminer-like iterative router, and the place-and-route baseline,
reporting embedding time, success, and chain length.

Run:  python examples/embedding_comparison.py
"""

import numpy as np

from repro import ChimeraGraph, encode_formula, random_3sat
from repro.analysis import format_table
from repro.embedding import (
    HyQSatEmbedder,
    MinorminerLikeEmbedder,
    PlaceAndRouteEmbedder,
)


def main() -> None:
    hardware = ChimeraGraph(16, 16, 4)
    rng = np.random.default_rng(seed=0)
    rows = []
    for num_clauses in (10, 20, 30, 40):
        formula = random_3sat(3 * num_clauses // 2, num_clauses, rng)
        encoding = encode_formula(list(formula.clauses), formula.num_vars)
        edges = list(encoding.objective.quadratic.keys())
        variables = encoding.objective.variables

        hy = HyQSatEmbedder(hardware).embed(encoding)
        mm = MinorminerLikeEmbedder(hardware, timeout_seconds=60, seed=0).embed(
            edges, variables
        )
        pr = PlaceAndRouteEmbedder(hardware, timeout_seconds=60, seed=0).embed(
            edges, variables
        )
        for name, result, embedded in (
            ("HyQSAT", hy, hy.num_embedded),
            ("Minorminer-like", mm, num_clauses if mm.success else 0),
            ("P&R", pr, num_clauses if pr.success else 0),
        ):
            rows.append(
                [
                    num_clauses,
                    name,
                    f"{result.elapsed_seconds * 1e3:.2f}",
                    f"{embedded}/{num_clauses}",
                    f"{result.avg_chain_length:.2f}",
                    result.max_chain_length,
                ]
            )
    print(
        format_table(
            ["#Clauses", "Scheme", "Time (ms)", "Embedded", "Avg chain", "Max chain"],
            rows,
            title="Embedding scheme comparison (Figure 13 shape)",
        )
    )


if __name__ == "__main__":
    main()
