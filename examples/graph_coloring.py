#!/usr/bin/env python3
"""Graph colouring with HyQSAT (the paper's GC domain).

Builds a flat random graph with a hidden 3-colouring, encodes
3-colourability as 3-SAT (the paper's GC1-GC3 benchmark family),
solves it with the hybrid solver, and decodes + verifies the colouring.

Run:  python examples/graph_coloring.py
"""

import numpy as np

from repro import AnnealerDevice, ChimeraGraph, HyQSatSolver
from repro.benchgen.graph_coloring import NUM_COLOURS, colouring_cnf, flat_graph


def main() -> None:
    rng = np.random.default_rng(seed=11)
    num_vertices, num_edges = 30, 60
    edges = flat_graph(num_vertices, num_edges, rng)
    formula = colouring_cnf(num_vertices, edges)
    print(
        f"3-colouring a flat graph: {num_vertices} vertices, {num_edges} edges "
        f"-> {formula.num_vars} vars, {formula.num_clauses} clauses"
    )

    device = AnnealerDevice(ChimeraGraph(16, 16, 4), seed=1)
    result = HyQSatSolver(formula, device=device).solve()
    print(f"status: {result.status.value} in {result.stats.iterations} iterations")
    if not result.is_sat:
        return

    # Decode: variable (v * 3 + c + 1) true means vertex v gets colour c.
    colouring = {}
    for vertex in range(num_vertices):
        for colour in range(NUM_COLOURS):
            if result.model[vertex * NUM_COLOURS + colour + 1]:
                colouring[vertex] = colour
                break

    conflicts = [(u, v) for u, v in edges if colouring[u] == colouring[v]]
    assert not conflicts, f"invalid colouring on edges {conflicts}"
    counts = [sum(1 for c in colouring.values() if c == k) for k in range(NUM_COLOURS)]
    print(f"valid 3-colouring found; colour class sizes: {counts}")


if __name__ == "__main__":
    main()
