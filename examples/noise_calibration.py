#!/usr/bin/env python3
"""Calibrate the backend's confidence bands (Figures 8 and 15).

Runs batches of known-satisfiable and known-unsatisfiable problems on a
noisy simulated annealer, fits the Gaussian Naive Bayes model to the
energy distributions, and derives the 90% confidence partition the
backend uses.  Also shows the Section IV-C coefficient adjustment
widening the energy gap.

Run:  python examples/noise_calibration.py
"""

import numpy as np

from repro import (
    AnnealerDevice,
    ChimeraGraph,
    NoiseModel,
    adjust_coefficients,
    encode_formula,
    random_3sat,
)
from repro.annealer.device import AnnealRequest
from repro.embedding import HyQSatEmbedder
from repro.ml import fit_bands
from repro.qubo import energy_gap, normalize
from repro.sat import brute_force_solve


def sample_energy(device, hardware, formula, adjust=True):
    encoding = encode_formula(list(formula.clauses), formula.num_vars)
    if adjust:
        encoding = adjust_coefficients(encoding).encoding
    embedded = HyQSatEmbedder(hardware).embed(encoding)
    if not embedded.success:
        return None
    objective, d_star = normalize(encoding.objective)
    request = AnnealRequest(
        objective, embedded.embedding, embedded.edge_couplers, d_star
    )
    return device.run(request).best.energy


def main() -> None:
    hardware = ChimeraGraph(16, 16, 4)
    device = AnnealerDevice(hardware, noise=NoiseModel.dwave_2000q(), seed=0)
    rng = np.random.default_rng(seed=4)

    sat_energies, unsat_energies = [], []
    while len(sat_energies) < 40 or len(unsat_energies) < 40:
        n = int(rng.integers(8, 14))
        m = int(rng.integers(3 * n, 5 * n))
        formula = random_3sat(n, m, rng)
        is_sat = brute_force_solve(formula) is not None
        energy = sample_energy(device, hardware, formula)
        if energy is None:
            continue
        if is_sat and len(sat_energies) < 40:
            sat_energies.append(energy)
        elif not is_sat and len(unsat_energies) < 40:
            unsat_energies.append(energy)

    print(f"satisfiable energies   : mean {np.mean(sat_energies):.2f}, "
          f"90th pct {np.percentile(sat_energies, 90):.2f}")
    print(f"unsatisfiable energies : mean {np.mean(unsat_energies):.2f}, "
          f"10th pct {np.percentile(unsat_energies, 10):.2f}")

    bands, model = fit_bands(sat_energies, unsat_energies)
    print(f"fitted 90% confidence partition: near-sat <= {bands.t_sat:.2f} "
          f"< uncertain <= {bands.t_unsat:.2f} < near-unsat")
    print(f"(paper's D-Wave 2000Q calibration: 4.5 / 8.0)")

    # Section IV-C: the adjustment widens the normalised energy gap.
    # Mixed clause widths leave room under the d* constraint (uniform
    # width-3 formulas do not; see EXPERIMENTS.md on Figure 15).
    from repro.sat.cnf import Clause

    clauses = [Clause([-1, -2]), Clause([-1])]
    enc = encode_formula(clauses, 2)
    adjusted = adjust_coefficients(enc)
    before = energy_gap(enc) / enc.objective.d_star()
    after = energy_gap(adjusted.encoding) / adjusted.encoding.objective.d_star()
    print(
        f"normalised energy gap of a mixed-width clause set: "
        f"{before:.2f} -> {after:.2f} after coefficient adjustment"
    )


if __name__ == "__main__":
    main()
