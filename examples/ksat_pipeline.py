#!/usr/bin/env python3
"""k-SAT inputs through the Section VII-B reduction pipeline.

HyQSAT natively targets 3-SAT; wider formulas are split with auxiliary
variables (one fresh variable per extra literal).  This example encodes
a small exam-scheduling problem whose at-least-one constraints are wide
(one clause per exam over all slots), solves it through
``HyQSatSolver.from_ksat``, and decodes the schedule from the projected
model.

Run:  python examples/ksat_pipeline.py
"""

import numpy as np

from repro import AnnealerDevice, ChimeraGraph, CNF, HyQSatSolver
from repro.sat import to_3sat

NUM_EXAMS = 6
NUM_SLOTS = 4
CONFLICTS = [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5), (1, 2)]


def var(exam: int, slot: int) -> int:
    """Variable: exam e sits in slot s."""
    return exam * NUM_SLOTS + slot + 1


def build_formula() -> CNF:
    clauses = []
    for exam in range(NUM_EXAMS):
        # At least one slot: a width-NUM_SLOTS clause (k-SAT!).
        clauses.append([var(exam, s) for s in range(NUM_SLOTS)])
        # At most one slot.
        for s1 in range(NUM_SLOTS):
            for s2 in range(s1 + 1, NUM_SLOTS):
                clauses.append([-var(exam, s1), -var(exam, s2)])
    # Conflicting exams take different slots.
    for e1, e2 in CONFLICTS:
        for s in range(NUM_SLOTS):
            clauses.append([-var(e1, s), -var(e2, s)])
    return CNF(clauses, num_vars=NUM_EXAMS * NUM_SLOTS)


def main() -> None:
    formula = build_formula()
    reduction = to_3sat(formula)
    print(
        f"scheduling formula: {formula.num_vars} vars, "
        f"{formula.num_clauses} clauses, widest clause {formula.max_clause_size}"
    )
    print(
        f"after 3-SAT reduction: {reduction.formula.num_vars} vars "
        f"({reduction.num_aux_vars} auxiliaries), "
        f"{reduction.formula.num_clauses} clauses"
    )

    device = AnnealerDevice(ChimeraGraph(16, 16, 4), seed=5)
    result = HyQSatSolver.from_ksat(formula, device=device).solve()
    assert result.is_sat, "this scheduling instance is satisfiable"

    schedule = {}
    for exam in range(NUM_EXAMS):
        for slot in range(NUM_SLOTS):
            if result.model.get(var(exam, slot)):
                schedule[exam] = slot
    print("schedule:", {f"exam{e}": f"slot{s}" for e, s in sorted(schedule.items())})
    for e1, e2 in CONFLICTS:
        assert schedule[e1] != schedule[e2], (e1, e2)
    print("all conflict constraints satisfied "
          f"({result.stats.iterations} iterations, "
          f"{result.hybrid.qa_calls} QA calls)")


if __name__ == "__main__":
    main()
