"""Tests for the embedded-problem compiler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.annealer.embedded import build_embedded_problem
from repro.embedding.hyqsat_embed import HyQSatEmbedder
from repro.qubo.encoding import encode_formula
from repro.qubo.normalization import normalize
from repro.sat.cnf import Clause


def _compile(clauses, n, hardware, chain_strength=1.0):
    enc = encode_formula(clauses, n)
    norm_obj, d = normalize(enc.objective)
    emb = HyQSatEmbedder(hardware).embed(enc)
    assert emb.success
    problem = build_embedded_problem(
        norm_obj, emb.embedding, hardware, emb.edge_couplers, chain_strength
    )
    return enc, norm_obj, d, emb, problem


class TestCompilation:
    def test_chain_intact_energy_matches_logical(self, small_hardware):
        clauses = [Clause([1, 2, 3]), Clause([-1, 2]), Clause([3])]
        enc, norm_obj, d, emb, problem = _compile(clauses, 3, small_hardware)
        # Evaluate both at every logical assignment with intact chains.
        variables = sorted(norm_obj.variables)
        for bits_int in range(1 << len(variables)):
            logical = {
                v: (bits_int >> i) & 1 for i, v in enumerate(variables)
            }
            physical = np.array(
                [logical[var] for var in problem.chain_of_index], dtype=float
            )
            assert problem.energy(physical) == pytest.approx(
                norm_obj.energy(logical), abs=1e-9
            )

    def test_chain_break_costs_energy(self, small_hardware):
        clauses = [Clause([1, 2, 3])]
        _, norm_obj, _, emb, problem = _compile(clauses, 3, small_hardware, 2.0)
        # Find a variable with a multi-qubit chain and break it.
        target = next(
            v for v in emb.embedding.variables if len(emb.embedding.chain_of(v)) > 1
        )
        intact = np.zeros(problem.num_qubits)
        broken = intact.copy()
        first_index = problem.chain_of_index.index(target)
        broken[first_index] = 1.0
        assert problem.energy(broken) > problem.energy(intact)

    def test_linear_bias_spread_over_chain(self, small_hardware):
        clauses = [Clause([1, 2, 3])]
        enc, norm_obj, _, emb, problem = _compile(clauses, 3, small_hardware)
        for var, bias in norm_obj.linear.items():
            chain = emb.embedding.chain_of(var)
            indices = [i for i, v in enumerate(problem.chain_of_index) if v == var]
            assert len(indices) == len(chain)

    def test_missing_variable_rejected(self, small_hardware):
        from repro.embedding.base import Embedding
        from repro.qubo.ising import QuadraticObjective

        obj = QuadraticObjective(linear={1: 1.0})
        with pytest.raises(ValueError, match="not embedded"):
            build_embedded_problem(obj, Embedding(), small_hardware, {})

    def test_missing_coupler_rejected(self, small_hardware):
        from repro.embedding.base import Embedding
        from repro.qubo.ising import QuadraticObjective

        obj = QuadraticObjective(quadratic={(1, 2): 1.0})
        embedding = Embedding({1: [0], 2: [1]})
        with pytest.raises(ValueError, match="no hardware coupler"):
            build_embedded_problem(obj, embedding, small_hardware, {(1, 2): ()})

    def test_chain_strength_validated(self, small_hardware):
        from repro.embedding.base import Embedding
        from repro.qubo.ising import QuadraticObjective

        with pytest.raises(ValueError):
            build_embedded_problem(
                QuadraticObjective(), Embedding(), small_hardware, {}, chain_strength=0
            )

    def test_offset_carried(self, small_hardware):
        clauses = [Clause([1, 2, 3])]
        _, norm_obj, _, _, problem = _compile(clauses, 3, small_hardware)
        assert problem.offset == norm_obj.offset


class TestEnergyKernels:
    """The vectorised CSR energy path and the batch kernel."""

    def _loop_energy(self, problem, state):
        total = problem.offset + float(problem.linear @ state)
        for i, j, w in problem.couplings:
            total += w * state[i] * state[j]
        return total

    def test_energy_matches_loop_reference(self, small_hardware):
        clauses = [Clause([1, 2, 3]), Clause([-1, 2]), Clause([-2, -3, 1])]
        *_, problem = _compile(clauses, 3, small_hardware)
        rng = np.random.default_rng(0)
        for _ in range(10):
            state = rng.integers(0, 2, size=problem.num_qubits).astype(float)
            assert problem.energy(state) == pytest.approx(
                self._loop_energy(problem, state), abs=1e-9
            )

    def test_batch_energies_match_single(self, small_hardware):
        clauses = [Clause([1, 2, 3]), Clause([2, -3])]
        *_, problem = _compile(clauses, 3, small_hardware)
        rng = np.random.default_rng(1)
        states = rng.integers(0, 2, size=(7, problem.num_qubits)).astype(float)
        batch = problem.energies(states)
        assert batch.shape == (7,)
        for k in range(7):
            assert batch[k] == pytest.approx(problem.energy(states[k]), abs=1e-9)

    def test_batch_energies_rejects_wrong_rank(self, small_hardware):
        from repro.annealer.embedded import batch_energies

        clauses = [Clause([1, 2])]
        *_, problem = _compile(clauses, 2, small_hardware)
        with pytest.raises(ValueError):
            batch_energies(
                problem.linear, problem.couplings_csr, np.zeros(problem.num_qubits)
            )

    def test_couplings_csr_symmetric(self, small_hardware):
        clauses = [Clause([1, 2, 3])]
        *_, problem = _compile(clauses, 3, small_hardware)
        csr = problem.couplings_csr
        assert (abs(csr - csr.T)).max() == 0
        dense = csr.toarray()
        for i, j, w in problem.couplings:
            assert dense[i, j] == pytest.approx(w)
            assert dense[j, i] == pytest.approx(w)

    def test_chain_strength_recorded(self, small_hardware):
        clauses = [Clause([1, 2, 3])]
        *_, problem = _compile(clauses, 3, small_hardware, chain_strength=2.5)
        assert problem.chain_strength == 2.5


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_energy_equivalence_random(seed, ):
    from repro.topology.chimera import ChimeraGraph

    hardware = ChimeraGraph(8, 8, 4)
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    clauses = []
    for _ in range(int(rng.integers(1, 8))):
        width = int(rng.integers(1, min(3, n) + 1))
        vs = rng.choice(np.arange(1, n + 1), size=width, replace=False)
        clauses.append(Clause([int(v) if rng.integers(0, 2) else -int(v) for v in vs]))
    enc = encode_formula(clauses, n)
    norm_obj, _ = normalize(enc.objective)
    emb = HyQSatEmbedder(hardware).embed(enc)
    if not emb.success:
        return
    problem = build_embedded_problem(
        norm_obj, emb.embedding, hardware, emb.edge_couplers, 1.5
    )
    # Coefficient cancellation can leave embedded chains whose variable
    # is absent from the objective: assign over the embedding's variables.
    variables = sorted(emb.embedding.variables)
    logical = {v: int(rng.integers(0, 2)) for v in variables}
    physical = np.array([logical[v] for v in problem.chain_of_index], dtype=float)
    assert problem.energy(physical) == pytest.approx(norm_obj.energy(logical), abs=1e-9)
