"""Tests for majority-vote unembedding."""

import numpy as np

from repro.annealer.embedded import EmbeddedProblem
from repro.annealer.unembed import majority_vote_unembed


def _problem(chain_of_index):
    n = len(chain_of_index)
    return EmbeddedProblem(
        qubits=tuple(range(n)),
        linear=np.zeros(n),
        couplings=(),
        chain_edges=(),
        chain_of_index=tuple(chain_of_index),
        offset=0.0,
    )


def test_unanimous_chains():
    problem = _problem([1, 1, 2, 2])
    assignment, breaks = majority_vote_unembed(
        problem, np.array([1, 1, 0, 0]), np.random.default_rng(0)
    )
    assert assignment[1] is True
    assert assignment[2] is False
    assert breaks == 0.0


def test_majority_wins():
    problem = _problem([1, 1, 1])
    assignment, breaks = majority_vote_unembed(
        problem, np.array([1, 1, 0]), np.random.default_rng(0)
    )
    assert assignment[1] is True
    assert breaks == 1.0


def test_tie_broken_by_rng_deterministically():
    problem = _problem([1, 1])
    bits = np.array([1, 0])
    a, _ = majority_vote_unembed(problem, bits, np.random.default_rng(3))
    b, _ = majority_vote_unembed(problem, bits, np.random.default_rng(3))
    assert a == b


def test_break_fraction_counts_broken_chains():
    problem = _problem([1, 1, 2, 2, 3])
    bits = np.array([1, 0, 0, 0, 1])  # chain 1 broken, 2 intact, 3 single
    _, breaks = majority_vote_unembed(problem, bits, np.random.default_rng(0))
    assert breaks == 1 / 3


def test_empty_problem():
    problem = _problem([])
    assignment, breaks = majority_vote_unembed(
        problem, np.zeros(0), np.random.default_rng(0)
    )
    assert len(assignment) == 0
    assert breaks == 0.0
