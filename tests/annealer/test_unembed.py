"""Tests for majority-vote unembedding."""

import numpy as np

from repro.annealer.embedded import EmbeddedProblem
from repro.annealer.unembed import majority_vote_unembed


def _problem(chain_of_index):
    n = len(chain_of_index)
    return EmbeddedProblem(
        qubits=tuple(range(n)),
        linear=np.zeros(n),
        couplings=(),
        chain_edges=(),
        chain_of_index=tuple(chain_of_index),
        offset=0.0,
    )


def test_unanimous_chains():
    problem = _problem([1, 1, 2, 2])
    assignment, breaks = majority_vote_unembed(
        problem, np.array([1, 1, 0, 0]), np.random.default_rng(0)
    )
    assert assignment[1] is True
    assert assignment[2] is False
    assert breaks == 0.0


def test_majority_wins():
    problem = _problem([1, 1, 1])
    assignment, breaks = majority_vote_unembed(
        problem, np.array([1, 1, 0]), np.random.default_rng(0)
    )
    assert assignment[1] is True
    assert breaks == 1.0


def test_tie_broken_by_rng_deterministically():
    problem = _problem([1, 1])
    bits = np.array([1, 0])
    a, _ = majority_vote_unembed(problem, bits, np.random.default_rng(3))
    b, _ = majority_vote_unembed(problem, bits, np.random.default_rng(3))
    assert a == b


def test_break_fraction_counts_broken_chains():
    problem = _problem([1, 1, 2, 2, 3])
    bits = np.array([1, 0, 0, 0, 1])  # chain 1 broken, 2 intact, 3 single
    _, breaks = majority_vote_unembed(problem, bits, np.random.default_rng(0))
    assert breaks == 1 / 3


def test_empty_problem():
    problem = _problem([])
    assignment, breaks = majority_vote_unembed(
        problem, np.zeros(0), np.random.default_rng(0)
    )
    assert len(assignment) == 0
    assert breaks == 0.0


def test_every_chain_broken():
    """All-broken reads still yield a full assignment, fraction 1.0."""
    problem = _problem([1, 1, 1, 2, 2, 2])
    bits = np.array([1, 0, 1, 0, 1, 0])  # both chains disagree internally
    assignment, breaks = majority_vote_unembed(
        problem, bits, np.random.default_rng(0)
    )
    assert breaks == 1.0
    assert assignment[1] is True  # 2-of-3 majority
    assert assignment[2] is False  # 1-of-3 minority loses
    assert len(assignment) == 2


def test_exact_tie_votes_cover_both_outcomes():
    """A 2-2 tie is an RNG coin flip: both values must be reachable,
    and the chain always counts as broken."""
    problem = _problem([7, 7, 7, 7])
    bits = np.array([1, 1, 0, 0])
    seen = set()
    for seed in range(32):
        assignment, breaks = majority_vote_unembed(
            problem, bits, np.random.default_rng(seed)
        )
        assert breaks == 1.0
        seen.add(assignment[7])
    assert seen == {True, False}


def test_single_qubit_chains_under_heavy_readout_flip():
    """A single-qubit chain can never 'break': under a 50% readout
    flip it still maps each read verbatim with break fraction 0."""
    rng = np.random.default_rng(11)
    problem = _problem([1, 2, 3, 4, 5, 6, 7, 8])
    for _ in range(20):
        bits = (rng.random(8) < 0.5).astype(np.int8)  # 50% flips of all-0
        assignment, breaks = majority_vote_unembed(
            problem, bits, np.random.default_rng(0)
        )
        assert breaks == 0.0
        for index, var in enumerate(problem.chain_of_index):
            assert assignment[var] is bool(bits[index])
