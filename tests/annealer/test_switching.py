"""Tests for the Section VII-A switching-latency model."""

import pytest

from repro.annealer.switching import SwitchingLatencyModel
from repro.annealer.timing import QpuTimingModel


def test_defaults_are_fpga_scale():
    model = SwitchingLatencyModel()
    assert model.per_call_us == pytest.approx(0.66)


def test_fpga_integrated_hidden_by_execution():
    """The paper's claim: switching fits inside one 130 us sample."""
    model = SwitchingLatencyModel.fpga_integrated()
    assert model.hidden_by_execution(QpuTimingModel())


def test_internet_api_not_hidden():
    model = SwitchingLatencyModel.internet_api()
    assert not model.hidden_by_execution(QpuTimingModel())
    # ...unless the device runs very many samples per call.
    assert model.hidden_by_execution(QpuTimingModel(), num_reads=100)


def test_total_overhead():
    model = SwitchingLatencyModel(communication_us=10, preprocessing_us=1,
                                  postprocessing_us=1)
    assert model.total_overhead_us(5) == pytest.approx(60.0)


def test_validation():
    with pytest.raises(ValueError):
        SwitchingLatencyModel(communication_us=-1)
    with pytest.raises(ValueError):
        SwitchingLatencyModel().total_overhead_us(-1)
