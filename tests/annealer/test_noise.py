"""Tests for the noise model."""

import numpy as np
import pytest

from repro.annealer.noise import NoiseModel


def test_noiseless_flags():
    n = NoiseModel.noiseless()
    assert n.is_noiseless
    assert not NoiseModel.dwave_2000q().is_noiseless
    assert not NoiseModel.bit_flip(0.1).is_noiseless


def test_validation():
    with pytest.raises(ValueError):
        NoiseModel(coefficient_std=-0.1)
    with pytest.raises(ValueError):
        NoiseModel(readout_flip_prob=1.5)
    with pytest.raises(ValueError):
        NoiseModel(thermal_beta=0.0)


def test_perturb_noiseless_identity():
    values = np.array([1.0, -2.0])
    out = NoiseModel.noiseless().perturb_coefficients(values, np.random.default_rng(0))
    assert out is values


def test_perturb_statistics():
    rng = np.random.default_rng(1)
    noise = NoiseModel(coefficient_std=0.5)
    values = np.zeros(20_000)
    out = noise.perturb_coefficients(values, rng)
    assert abs(out.mean()) < 0.02
    assert abs(out.std() - 0.5) < 0.02


def test_flip_noiseless_identity():
    bits = np.array([0, 1, 1])
    out = NoiseModel.noiseless().flip_readout(bits, np.random.default_rng(0))
    assert (out == bits).all()


def test_flip_rate():
    rng = np.random.default_rng(2)
    bits = np.zeros(50_000, dtype=np.int8)
    flipped = NoiseModel.bit_flip(0.1).flip_readout(bits, rng)
    assert abs(flipped.mean() - 0.1) < 0.01


def test_flip_probability_one_inverts_everything():
    bits = np.array([0, 1, 0, 1], dtype=np.int8)
    out = NoiseModel.bit_flip(1.0).flip_readout(bits, np.random.default_rng(0))
    assert (out == 1 - bits).all()
