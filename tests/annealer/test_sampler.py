"""Tests for the simulated-annealing sampler."""

import numpy as np
import pytest

from repro.annealer.embedded import EmbeddedProblem
from repro.annealer.noise import NoiseModel
from repro.annealer.sampler import SamplerConfig, SimulatedAnnealingSampler


def _problem(linear, couplings, offset=0.0):
    n = len(linear)
    return EmbeddedProblem(
        qubits=tuple(range(n)),
        linear=np.array(linear, dtype=float),
        couplings=tuple(couplings),
        chain_edges=(),
        chain_of_index=tuple(range(n)),
        offset=offset,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplerConfig(num_sweeps=0)
        with pytest.raises(ValueError):
            SamplerConfig(beta_min=0)
        with pytest.raises(ValueError):
            SamplerConfig(beta_min=2, beta_max=1)
        with pytest.raises(ValueError):
            SamplerConfig(sweep_mode="magic")
        with pytest.raises(ValueError):
            SamplerConfig(num_restarts=0)
        with pytest.raises(ValueError):
            SamplerConfig(max_descent_sweeps=-1)


class TestGroundStates:
    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    def test_independent_biases(self, mode):
        # H = -x0 + x1: minimum at (1, 0).
        problem = _problem([-1.0, 1.0], [])
        sampler = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=64, sweep_mode=mode), seed=0
        )
        bits = sampler.sample(problem, num_reads=1)[0]
        assert list(bits) == [1, 0]

    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    def test_ferromagnetic_pair(self, mode):
        # H = x0 + x1 - 2 x0 x1 : minima at (0,0) and (1,1).
        problem = _problem([1.0, 1.0], [(0, 1, -2.0)])
        sampler = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=64, sweep_mode=mode), seed=1
        )
        for bits in sampler.sample(problem, num_reads=5):
            assert bits[0] == bits[1]

    def test_frustrated_triangle_reaches_optimum(self):
        # Antiferromagnetic triangle: best energy = -2 (two ones).
        couplings = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]
        problem = _problem([-1.0, -1.0, -1.0], couplings)
        sampler = SimulatedAnnealingSampler(seed=2)
        best = min(problem.energy(b) for b in sampler.sample(problem, num_reads=10))
        assert best == pytest.approx(-1.0)

    def test_empty_problem(self):
        problem = _problem([], [])
        bits = SimulatedAnnealingSampler().sample(problem, num_reads=3)
        assert len(bits) == 3
        assert all(b.size == 0 for b in bits)


class TestDeterminism:
    def test_same_seed_same_samples(self):
        problem = _problem([0.5, -0.5, 0.2], [(0, 1, -1.0), (1, 2, 0.5)])
        a = SimulatedAnnealingSampler(seed=7).sample(problem, num_reads=4)
        b = SimulatedAnnealingSampler(seed=7).sample(problem, num_reads=4)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        # On a flat landscape the final state depends on the seed.
        problem = _problem([0.0] * 16, [])
        a = SimulatedAnnealingSampler(seed=1).sample(problem)[0]
        b = SimulatedAnnealingSampler(seed=2).sample(problem)[0]
        assert (a != b).any()


class TestNoiseIntegration:
    def test_readout_flips_applied(self):
        problem = _problem([-5.0], [])  # strongly wants 1
        noisy = SimulatedAnnealingSampler(
            noise=NoiseModel.bit_flip(1.0), seed=0
        )
        assert noisy.sample(problem)[0][0] == 0  # flipped from 1

    def test_thermal_beta_caps_schedule(self):
        config = SamplerConfig(beta_min=0.1, beta_max=10.0, num_sweeps=8)
        hot = SimulatedAnnealingSampler(config, NoiseModel(thermal_beta=0.5))
        assert hot._schedule().max() == pytest.approx(0.5)

    def test_num_reads_validated(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample(_problem([0.0], []), num_reads=0)


class TestDescentAndRestarts:
    def test_descent_reaches_local_minimum(self):
        # From any state, descent must end with no improving flip.
        problem = _problem([0.3, -0.7, 0.1], [(0, 1, -0.5), (1, 2, 0.9)])
        sampler = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=2, greedy_descent=True), seed=3
        )
        bits = sampler.sample(problem)[0]
        state = bits.astype(float)
        linear, matrix = sampler._programmed_arrays(problem, np.random.default_rng(0))
        field = linear + matrix @ state
        delta = (1.0 - 2.0 * state) * field
        assert (delta >= -1e-9).all()

    def test_restarts_never_worse(self):
        couplings = [(i, j, 1.0) for i in range(8) for j in range(i + 1, 8)]
        problem = _problem([-1.0] * 8, couplings)
        single = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=4, num_restarts=1, greedy_descent=False), seed=5
        )
        multi = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=4, num_restarts=12, greedy_descent=False), seed=5
        )
        e_single = problem.energy(single.sample(problem)[0])
        e_multi = problem.energy(multi.sample(problem)[0])
        assert e_multi <= e_single + 1e-9
