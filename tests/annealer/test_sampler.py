"""Tests for the simulated-annealing sampler."""

import numpy as np
import pytest

from repro.annealer.embedded import EmbeddedProblem
from repro.annealer.noise import NoiseModel
from repro.annealer.sampler import SamplerConfig, SimulatedAnnealingSampler


def _problem(linear, couplings, offset=0.0):
    n = len(linear)
    return EmbeddedProblem(
        qubits=tuple(range(n)),
        linear=np.array(linear, dtype=float),
        couplings=tuple(couplings),
        chain_edges=(),
        chain_of_index=tuple(range(n)),
        offset=offset,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplerConfig(num_sweeps=0)
        with pytest.raises(ValueError):
            SamplerConfig(beta_min=0)
        with pytest.raises(ValueError):
            SamplerConfig(beta_min=2, beta_max=1)
        with pytest.raises(ValueError):
            SamplerConfig(sweep_mode="magic")
        with pytest.raises(ValueError):
            SamplerConfig(num_restarts=0)
        with pytest.raises(ValueError):
            SamplerConfig(max_descent_sweeps=-1)


class TestGroundStates:
    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    def test_independent_biases(self, mode):
        # H = -x0 + x1: minimum at (1, 0).
        problem = _problem([-1.0, 1.0], [])
        sampler = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=64, sweep_mode=mode), seed=0
        )
        bits = sampler.sample(problem, num_reads=1)[0]
        assert list(bits) == [1, 0]

    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    def test_ferromagnetic_pair(self, mode):
        # H = x0 + x1 - 2 x0 x1 : minima at (0,0) and (1,1).
        problem = _problem([1.0, 1.0], [(0, 1, -2.0)])
        sampler = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=64, sweep_mode=mode), seed=1
        )
        for bits in sampler.sample(problem, num_reads=5):
            assert bits[0] == bits[1]

    def test_frustrated_triangle_reaches_optimum(self):
        # Antiferromagnetic triangle: best energy = -2 (two ones).
        couplings = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]
        problem = _problem([-1.0, -1.0, -1.0], couplings)
        sampler = SimulatedAnnealingSampler(seed=2)
        best = min(problem.energy(b) for b in sampler.sample(problem, num_reads=10))
        assert best == pytest.approx(-1.0)

    def test_empty_problem(self):
        problem = _problem([], [])
        bits = SimulatedAnnealingSampler().sample(problem, num_reads=3)
        assert len(bits) == 3
        assert all(b.size == 0 for b in bits)


class TestDeterminism:
    def test_same_seed_same_samples(self):
        problem = _problem([0.5, -0.5, 0.2], [(0, 1, -1.0), (1, 2, 0.5)])
        a = SimulatedAnnealingSampler(seed=7).sample(problem, num_reads=4)
        b = SimulatedAnnealingSampler(seed=7).sample(problem, num_reads=4)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        # On a flat landscape the final state depends on the seed.
        problem = _problem([0.0] * 16, [])
        a = SimulatedAnnealingSampler(seed=1).sample(problem)[0]
        b = SimulatedAnnealingSampler(seed=2).sample(problem)[0]
        assert (a != b).any()


class TestNoiseIntegration:
    def test_readout_flips_applied(self):
        problem = _problem([-5.0], [])  # strongly wants 1
        noisy = SimulatedAnnealingSampler(
            noise=NoiseModel.bit_flip(1.0), seed=0
        )
        assert noisy.sample(problem)[0][0] == 0  # flipped from 1

    def test_thermal_beta_caps_schedule(self):
        config = SamplerConfig(beta_min=0.1, beta_max=10.0, num_sweeps=8)
        hot = SimulatedAnnealingSampler(config, NoiseModel(thermal_beta=0.5))
        assert hot._schedule().max() == pytest.approx(0.5)

    def test_num_reads_validated(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample(_problem([0.0], []), num_reads=0)


def _embedded_random_3sat(hardware, num_vars=8, num_clauses=24, seed=9):
    """Compile a random 3-SAT residual onto ``hardware`` (C4 in tests).

    Only the clauses the embedder actually placed contribute to the
    objective, mirroring the frontend's embedded-subset rebuild.
    """
    from repro.annealer.embedded import build_embedded_problem
    from repro.embedding.hyqsat_embed import HyQSatEmbedder
    from repro.qubo.encoding import encode_formula
    from repro.qubo.ising import QuadraticObjective
    from repro.qubo.normalization import normalize
    from tests.conftest import make_random_3sat

    formula = make_random_3sat(num_vars, num_clauses, seed=seed)
    enc = encode_formula(list(formula.clauses), formula.num_vars)
    emb = HyQSatEmbedder(hardware).embed(enc)
    assert emb.embedded_clauses
    keep = set(emb.embedded_clauses)
    objective = QuadraticObjective()
    for sub in enc.sub_objectives:
        if sub.clause_index in keep:
            objective.add_objective(sub.objective, scale=sub.coefficient)
    norm_obj, _ = normalize(objective)
    return build_embedded_problem(
        norm_obj, emb.embedding, hardware, emb.edge_couplers, 1.5
    )


class TestBatchedReplicas:
    """The vectorised all-replica hot path (``batch_reads=True``)."""

    def test_deterministic_given_seed(self, small_hardware):
        problem = _embedded_random_3sat(small_hardware)
        config = SamplerConfig(num_restarts=3, batch_reads=True)
        a = SimulatedAnnealingSampler(config, seed=13).sample(problem, num_reads=4)
        b = SimulatedAnnealingSampler(config, seed=13).sample(problem, num_reads=4)
        assert all((x == y).all() for x, y in zip(a, b))
        c = SimulatedAnnealingSampler(config, seed=14).sample(problem, num_reads=4)
        assert any((x != y).any() for x, y in zip(a, c))

    def test_reads_are_valid_bit_vectors(self, small_hardware):
        problem = _embedded_random_3sat(small_hardware)
        config = SamplerConfig(num_restarts=2, batch_reads=True)
        reads = SimulatedAnnealingSampler(config, seed=0).sample(problem, num_reads=5)
        assert len(reads) == 5
        for bits in reads:
            assert bits.shape == (problem.num_qubits,)
            assert set(np.unique(bits)) <= {0, 1}

    def test_energy_distribution_matches_per_read(self, small_hardware):
        # The merged acceptance draw has exactly the per-read flip
        # probability, so the final-energy distributions must agree
        # (they are not bit-identical: the RNG stream shape differs).
        problem = _embedded_random_3sat(small_hardware)
        per_read = SamplerConfig(batch_reads=False)
        batched = SamplerConfig(batch_reads=True)
        e_ref = [
            problem.energy(b)
            for b in SimulatedAnnealingSampler(per_read, seed=21).sample(
                problem, num_reads=40
            )
        ]
        e_new = [
            problem.energy(b)
            for b in SimulatedAnnealingSampler(batched, seed=21).sample(
                problem, num_reads=40
            )
        ]
        spread = max(np.std(e_ref), np.std(e_new), 1e-6)
        assert abs(np.mean(e_new) - np.mean(e_ref)) < spread

    @pytest.mark.parametrize("batch", [False, True])
    def test_ground_state_simple_problems(self, batch):
        problem = _problem([-1.0, 1.0], [])
        config = SamplerConfig(num_sweeps=64, batch_reads=batch)
        bits = SimulatedAnnealingSampler(config, seed=0).sample(problem)[0]
        assert list(bits) == [1, 0]

    def test_batched_restarts_never_worse(self):
        couplings = [(i, j, 1.0) for i in range(8) for j in range(i + 1, 8)]
        problem = _problem([-1.0] * 8, couplings)
        single = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=4, num_restarts=1, batch_reads=True), seed=5
        )
        multi = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=4, num_restarts=12, batch_reads=True), seed=5
        )
        e_single = problem.energy(single.sample(problem)[0])
        e_multi = problem.energy(multi.sample(problem)[0])
        assert e_multi <= e_single + 1e-9

    def test_sequential_mode_ignores_batch_flag(self):
        problem = _problem([0.5, -0.5, 0.2], [(0, 1, -1.0), (1, 2, 0.5)])
        on = SamplerConfig(sweep_mode="sequential", num_sweeps=16, batch_reads=True)
        off = SamplerConfig(sweep_mode="sequential", num_sweeps=16, batch_reads=False)
        a = SimulatedAnnealingSampler(on, seed=3).sample(problem, num_reads=2)
        b = SimulatedAnnealingSampler(off, seed=3).sample(problem, num_reads=2)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_batched_readout_noise_applied(self):
        problem = _problem([-5.0], [])  # strongly wants 1
        noisy = SimulatedAnnealingSampler(
            SamplerConfig(batch_reads=True), noise=NoiseModel.bit_flip(1.0), seed=0
        )
        assert noisy.sample(problem)[0][0] == 0

    def test_batched_descent_reaches_local_minimum(self, small_hardware):
        problem = _embedded_random_3sat(small_hardware)
        config = SamplerConfig(num_sweeps=2, greedy_descent=True, batch_reads=True)
        sampler = SimulatedAnnealingSampler(config, seed=3)
        for bits in sampler.sample(problem, num_reads=3):
            state = bits.astype(float)
            linear, matrix = sampler._programmed_arrays(
                problem, np.random.default_rng(0)
            )
            field = linear + matrix @ state
            delta = (1.0 - 2.0 * state) * field
            # float32 descent: minimal up to single-precision resolution
            assert (delta >= -1e-4).all()


class TestDescentAndRestarts:
    def test_descent_reaches_local_minimum(self):
        # From any state, descent must end with no improving flip.
        problem = _problem([0.3, -0.7, 0.1], [(0, 1, -0.5), (1, 2, 0.9)])
        sampler = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=2, greedy_descent=True), seed=3
        )
        bits = sampler.sample(problem)[0]
        state = bits.astype(float)
        linear, matrix = sampler._programmed_arrays(problem, np.random.default_rng(0))
        field = linear + matrix @ state
        delta = (1.0 - 2.0 * state) * field
        assert (delta >= -1e-9).all()

    def test_restarts_never_worse(self):
        couplings = [(i, j, 1.0) for i in range(8) for j in range(i + 1, 8)]
        problem = _problem([-1.0] * 8, couplings)
        single = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=4, num_restarts=1, greedy_descent=False), seed=5
        )
        multi = SimulatedAnnealingSampler(
            SamplerConfig(num_sweeps=4, num_restarts=12, greedy_descent=False), seed=5
        )
        e_single = problem.energy(single.sample(problem)[0])
        e_multi = problem.energy(multi.sample(problem)[0])
        assert e_multi <= e_single + 1e-9
