"""Tests for the QPU timing model."""

import pytest

from repro.annealer.timing import QpuTimingModel


def test_defaults_match_paper_constants():
    t = QpuTimingModel()
    assert t.anneal_us == 20.0
    assert t.readout_us == 110.0
    assert t.sample_us == 130.0


def test_single_sample_time():
    t = QpuTimingModel(programming_us=10.0)
    assert t.total_us(1) == 10.0 + 130.0


def test_figure1_arithmetic():
    """60 samples with 20 us delays (Figure 1's accounting)."""
    t = QpuTimingModel(anneal_us=20, readout_us=110, inter_sample_delay_us=20, programming_us=0)
    assert t.total_us(60) == pytest.approx(130 * 60 + 20 * 59)


def test_zero_reads_is_programming_only():
    assert QpuTimingModel(programming_us=7.0).total_us(0) == 7.0


def test_negative_reads_rejected():
    with pytest.raises(ValueError):
        QpuTimingModel().total_us(-1)


def test_negative_constants_rejected():
    with pytest.raises(ValueError):
        QpuTimingModel(anneal_us=-1)


def test_monotone_in_reads():
    t = QpuTimingModel()
    assert t.total_us(5) < t.total_us(6)
