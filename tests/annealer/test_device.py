"""Tests for the AnnealerDevice facade."""

import numpy as np
import pytest

from repro.annealer.device import AnnealerDevice, AnnealRequest
from repro.annealer.noise import NoiseModel
from repro.embedding.hyqsat_embed import HyQSatEmbedder
from repro.qubo.encoding import encode_formula
from repro.qubo.normalization import normalize
from repro.sat.cnf import Clause
from repro.topology.chimera import ChimeraGraph


def _request(clauses, n, hardware, num_reads=1):
    enc = encode_formula(clauses, n)
    norm_obj, d = normalize(enc.objective)
    emb = HyQSatEmbedder(hardware).embed(enc)
    assert emb.success
    return AnnealRequest(
        objective=norm_obj,
        embedding=emb.embedding,
        edge_couplers=emb.edge_couplers,
        energy_scale=d,
        num_reads=num_reads,
    )


class TestRequestValidation:
    def test_energy_scale_positive(self, small_hardware):
        req = _request([Clause([1, 2])], 2, small_hardware)
        with pytest.raises(ValueError):
            AnnealRequest(req.objective, req.embedding, req.edge_couplers, 0.0)

    def test_num_reads_positive(self, small_hardware):
        req = _request([Clause([1, 2])], 2, small_hardware)
        with pytest.raises(ValueError):
            AnnealRequest(req.objective, req.embedding, req.edge_couplers, 1.0, 0)


class TestRun:
    def test_satisfiable_clause_reaches_zero(self, small_hardware):
        device = AnnealerDevice(small_hardware, seed=0)
        result = device.run(_request([Clause([1, 2, 3])], 3, small_hardware))
        assert result.best.energy == pytest.approx(0.0, abs=1e-9)
        assert result.best.assignment.satisfies_clause(Clause([1, 2, 3]))

    def test_unsat_core_has_positive_energy(self, small_hardware):
        # (x1 v x2), (-x1), (-x2): unsatisfiable, objective 1 + x1*x2.
        # (A perfectly balanced contradiction like [x1], [-x1] sums to
        # a *constant* objective, which AnnealRequest now rejects.)
        core = [Clause([1, 2]), Clause([-1]), Clause([-2])]
        device = AnnealerDevice(small_hardware, seed=0)
        result = device.run(_request(core, 2, small_hardware))
        assert result.best.energy >= 1.0 - 1e-9

    def test_energy_in_problem_units(self, small_hardware):
        # Three copies of the same contradiction scale the gap.
        core = [Clause([1, 2]), Clause([-1]), Clause([-2])]
        device = AnnealerDevice(small_hardware, seed=1)
        result = device.run(_request(core * 3, 2, small_hardware))
        assert result.best.energy == pytest.approx(3.0, abs=1e-9)

    def test_num_reads_returned(self, small_hardware):
        device = AnnealerDevice(small_hardware, seed=2)
        result = device.run(_request([Clause([1, 2])], 2, small_hardware, num_reads=4))
        assert len(result.samples) == 4
        assert result.best.energy == min(result.energies)

    def test_qpu_time_accounted(self, small_hardware):
        device = AnnealerDevice(small_hardware, seed=0)
        result = device.run(_request([Clause([1, 2])], 2, small_hardware, num_reads=3))
        assert result.qpu_time_us == device.timing.total_us(3)

    def test_repeat_calls_differ_but_device_reproducible(self, small_hardware):
        clauses = [Clause([1, 2]), Clause([-1, 2]), Clause([1, -2])]
        request = _request(clauses, 2, small_hardware)
        d1 = AnnealerDevice(small_hardware, seed=5)
        first = d1.run(request)
        second = d1.run(request)
        d2 = AnnealerDevice(small_hardware, seed=5)
        assert d2.run(request).best.energy == first.best.energy
        assert d2.run(request).best.energy == second.best.energy

    def test_noisy_device_still_sound(self, small_hardware):
        device = AnnealerDevice(
            small_hardware, noise=NoiseModel.dwave_2000q(), seed=3
        )
        result = device.run(_request([Clause([1, 2, 3])], 3, small_hardware))
        # With noise energies may be positive but must be finite and the
        # assignment must cover the formula variables.
        assert np.isfinite(result.best.energy)
        assert all(v in result.best.assignment for v in (1, 2, 3))

    def test_mqc_disabled_reports_raw_energy(self, small_hardware):
        device = AnnealerDevice(small_hardware, multi_qubit_correction=False, seed=4)
        result = device.run(_request([Clause([1, 2, 3])], 3, small_hardware))
        assert np.isfinite(result.best.energy)

    def test_default_hardware_is_c16(self):
        assert AnnealerDevice().hardware.num_qubits == 2048
