"""Tests for logical greedy descent (multi-qubit correction)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.annealer.postprocess import LogicalDescender, logical_greedy_descent
from repro.qubo.ising import QuadraticObjective
from repro.sat.assignment import Assignment


def test_descends_single_variable():
    obj = QuadraticObjective(linear={1: -2.0})
    start = Assignment({1: False})
    out, energy = logical_greedy_descent(obj, start, np.random.default_rng(0))
    assert out[1] is True
    assert energy == -2.0
    assert start[1] is False  # input untouched


def test_already_minimal_unchanged():
    obj = QuadraticObjective(linear={1: 1.0})
    out, energy = logical_greedy_descent(
        obj, Assignment({1: False}), np.random.default_rng(0)
    )
    assert out[1] is False
    assert energy == 0.0


def test_missing_variables_default_false():
    obj = QuadraticObjective(linear={1: 1.0, 2: -1.0})
    out, energy = logical_greedy_descent(obj, Assignment(), np.random.default_rng(0))
    assert out[2] is True
    assert energy == -1.0


def test_empty_objective():
    out, energy = logical_greedy_descent(
        QuadraticObjective(offset=3.0), Assignment(), np.random.default_rng(0)
    )
    assert energy == 3.0


def _random_objective(rng, n):
    obj = QuadraticObjective(offset=float(rng.normal()))
    for v in range(1, n + 1):
        obj.add_linear(v, float(rng.normal()))
    for _ in range(n):
        u, v = rng.choice(np.arange(1, n + 1), size=2, replace=False)
        obj.add_quadratic(int(u), int(v), float(rng.normal()))
    return obj


class TestLogicalDescender:
    """The precompiled-arrays descent engine the device reuses per
    request."""

    def test_energy_of_matches_objective(self):
        rng = np.random.default_rng(2)
        obj = _random_objective(rng, 6)
        descender = LogicalDescender(obj)
        for _ in range(8):
            bits = {v: int(rng.integers(0, 2)) for v in descender.order}
            state = np.array([bits[v] for v in descender.order], dtype=float)
            assert descender.energy_of(state) == pytest.approx(obj.energy(bits))

    def test_batch_energies_match_single(self):
        rng = np.random.default_rng(3)
        obj = _random_objective(rng, 5)
        descender = LogicalDescender(obj)
        states = rng.integers(0, 2, size=(6, descender.num_variables)).astype(float)
        batch = descender.energies(states)
        for k in range(6):
            assert batch[k] == pytest.approx(descender.energy_of(states[k]))

    def test_state_roundtrip(self):
        obj = QuadraticObjective(linear={1: 1.0, 3: -1.0})
        descender = LogicalDescender(obj)
        state = descender.state_of(Assignment({1: True, 3: False}))
        assert list(state) == [1.0, 0.0]

    def test_descend_equals_wrapper(self):
        rng_obj = np.random.default_rng(4)
        obj = _random_objective(rng_obj, 6)
        start = Assignment({v: bool(rng_obj.integers(0, 2)) for v in range(1, 7)})
        out_a, e_a = LogicalDescender(obj).descend(
            start, np.random.default_rng(9)
        )
        out_b, e_b = logical_greedy_descent(obj, start, np.random.default_rng(9))
        assert e_a == pytest.approx(e_b)
        assert all(out_a[v] == out_b[v] for v in range(1, 7))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_never_increases_energy(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    obj = QuadraticObjective()
    for v in range(1, n + 1):
        obj.add_linear(v, float(rng.normal()))
    for _ in range(n):
        u, v = rng.choice(np.arange(1, n + 1), size=2, replace=False)
        obj.add_quadratic(int(u), int(v), float(rng.normal()))
    start = Assignment({v: bool(rng.integers(0, 2)) for v in range(1, n + 1)})
    start_energy = obj.energy({v: int(start[v]) for v in range(1, n + 1)})
    out, energy = logical_greedy_descent(obj, start, rng)
    assert energy <= start_energy + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_reaches_local_minimum(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 6))
    obj = QuadraticObjective()
    for v in range(1, n + 1):
        obj.add_linear(v, float(rng.normal()))
    start = Assignment({v: bool(rng.integers(0, 2)) for v in range(1, n + 1)})
    out, energy = logical_greedy_descent(obj, start, rng)
    # No single flip improves.
    for v in range(1, n + 1):
        flipped = out.copy()
        flipped.assign(v, not out[v])
        flipped_energy = obj.energy({u: int(flipped[u]) for u in range(1, n + 1)})
        assert flipped_energy >= energy - 1e-9
