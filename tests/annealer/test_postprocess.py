"""Tests for logical greedy descent (multi-qubit correction)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.annealer.postprocess import logical_greedy_descent
from repro.qubo.ising import QuadraticObjective
from repro.sat.assignment import Assignment


def test_descends_single_variable():
    obj = QuadraticObjective(linear={1: -2.0})
    start = Assignment({1: False})
    out, energy = logical_greedy_descent(obj, start, np.random.default_rng(0))
    assert out[1] is True
    assert energy == -2.0
    assert start[1] is False  # input untouched


def test_already_minimal_unchanged():
    obj = QuadraticObjective(linear={1: 1.0})
    out, energy = logical_greedy_descent(
        obj, Assignment({1: False}), np.random.default_rng(0)
    )
    assert out[1] is False
    assert energy == 0.0


def test_missing_variables_default_false():
    obj = QuadraticObjective(linear={1: 1.0, 2: -1.0})
    out, energy = logical_greedy_descent(obj, Assignment(), np.random.default_rng(0))
    assert out[2] is True
    assert energy == -1.0


def test_empty_objective():
    out, energy = logical_greedy_descent(
        QuadraticObjective(offset=3.0), Assignment(), np.random.default_rng(0)
    )
    assert energy == 3.0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_never_increases_energy(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    obj = QuadraticObjective()
    for v in range(1, n + 1):
        obj.add_linear(v, float(rng.normal()))
    for _ in range(n):
        u, v = rng.choice(np.arange(1, n + 1), size=2, replace=False)
        obj.add_quadratic(int(u), int(v), float(rng.normal()))
    start = Assignment({v: bool(rng.integers(0, 2)) for v in range(1, n + 1)})
    start_energy = obj.energy({v: int(start[v]) for v in range(1, n + 1)})
    out, energy = logical_greedy_descent(obj, start, rng)
    assert energy <= start_energy + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_reaches_local_minimum(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 6))
    obj = QuadraticObjective()
    for v in range(1, n + 1):
        obj.add_linear(v, float(rng.normal()))
    start = Assignment({v: bool(rng.integers(0, 2)) for v in range(1, n + 1)})
    out, energy = logical_greedy_descent(obj, start, rng)
    # No single flip improves.
    for v in range(1, n + 1):
        flipped = out.copy()
        flipped.assign(v, not out[v])
        flipped_energy = obj.energy({u: int(flipped[u]) for u in range(1, n + 1)})
        assert flipped_energy >= energy - 1e-9
