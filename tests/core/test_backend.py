"""Tests for the backend's band classification and strategy dispatch."""

import pytest

from repro.annealer.device import AnnealResult, AnnealSample
from repro.core.backend import Backend, Strategy
from repro.ml.intervals import Band, ConfidenceBands
from repro.sat.assignment import Assignment


def _result(energy, assignment=None):
    sample = AnnealSample(
        assignment=assignment or Assignment({1: True, 2: False, 7: True}),
        energy=energy,
        chain_break_fraction=0.0,
    )
    return AnnealResult(samples=(sample,), qpu_time_us=130.0)


class TestDispatchTable:
    """Section V-B's table: rows = all/not-all embedded, columns = bands."""

    @pytest.mark.parametrize(
        "energy,all_embedded,expected",
        [
            (0.0, True, Strategy.ACCEPT_SOLUTION),
            (0.0, False, Strategy.KEEP_ASSIGNMENT),
            (2.0, True, Strategy.KEEP_ASSIGNMENT),
            (2.0, False, Strategy.KEEP_ASSIGNMENT),
            (6.0, True, Strategy.NO_FEEDBACK),
            (6.0, False, Strategy.NO_FEEDBACK),
            (9.0, True, Strategy.RUSH_CONFLICT),
            (9.0, False, Strategy.RUSH_CONFLICT),
        ],
    )
    def test_dispatch(self, energy, all_embedded, expected):
        backend = Backend()
        decision = backend.interpret(_result(energy), (1, 2), 5, all_embedded)
        assert decision.strategy is expected

    def test_bands_recorded(self):
        backend = Backend()
        assert backend.interpret(_result(0.0), (1,), 5, True).band is Band.SATISFIABLE
        assert (
            backend.interpret(_result(3.0), (1,), 5, True).band
            is Band.NEAR_SATISFIABLE
        )
        assert backend.interpret(_result(5.0), (1,), 5, True).band is Band.UNCERTAIN
        assert (
            backend.interpret(_result(20.0), (1,), 5, True).band
            is Band.NEAR_UNSATISFIABLE
        )

    def test_custom_bands(self):
        backend = Backend(bands=ConfidenceBands(t_sat=1.0, t_unsat=2.0))
        assert backend.interpret(_result(1.5), (1,), 5, True).band is Band.UNCERTAIN


class TestAblationSwitches:
    def test_strategy_1_disabled_falls_to_2(self):
        backend = Backend(enable_strategy_1=False)
        decision = backend.interpret(_result(0.0), (1,), 5, True)
        assert decision.strategy is Strategy.KEEP_ASSIGNMENT

    def test_strategy_2_disabled_no_feedback(self):
        backend = Backend(enable_strategy_2=False)
        assert (
            backend.interpret(_result(2.0), (1,), 5, True).strategy
            is Strategy.NO_FEEDBACK
        )

    def test_strategies_1_and_2_disabled(self):
        backend = Backend(enable_strategy_1=False, enable_strategy_2=False)
        assert (
            backend.interpret(_result(0.0), (1,), 5, True).strategy
            is Strategy.NO_FEEDBACK
        )

    def test_strategy_4_disabled_no_feedback(self):
        backend = Backend(enable_strategy_4=False)
        assert (
            backend.interpret(_result(50.0), (1,), 5, True).strategy
            is Strategy.NO_FEEDBACK
        )


class TestAssignmentProjection:
    def test_aux_variables_stripped(self):
        assignment = Assignment({1: True, 2: False, 7: True})
        backend = Backend()
        decision = backend.interpret(
            _result(0.0, assignment), (1, 2, 7), num_formula_vars=5, all_embedded=True
        )
        assert 7 not in decision.assignment
        assert decision.assignment == Assignment({1: True, 2: False})

    def test_only_embedded_variables_kept(self):
        assignment = Assignment({1: True, 2: False, 3: True})
        backend = Backend()
        decision = backend.interpret(
            _result(0.0, assignment), (1,), num_formula_vars=5, all_embedded=True
        )
        assert decision.assignment == Assignment({1: True})

    def test_metadata_fields(self):
        backend = Backend()
        decision = backend.interpret(_result(2.5), (1, 2), 5, False)
        assert decision.energy == 2.5
        assert decision.variables == (1, 2)
        assert not decision.all_embedded
        assert not decision.proposes_model
        assert decision.elapsed_seconds >= 0

    def test_proposes_model_flag(self):
        backend = Backend()
        assert backend.interpret(_result(0.0), (1,), 5, True).proposes_model
