"""Tests for the HyQSAT frontend pipeline."""

import numpy as np
import pytest

from repro.core.frontend import Frontend
from repro.qubo.normalization import in_hardware_range
from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause


@pytest.fixture
def formula():
    return CNF(
        [Clause([1, 2, 3]), Clause([-1, 4]), Clause([2, -3, 4]), Clause([5])],
        num_vars=5,
    )


class TestPrepare:
    def test_full_queue(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        result = frontend.prepare([0, 1, 2, 3])
        assert result is not None
        assert result.num_embedded == 4
        assert set(result.formula_clauses) == {0, 1, 2, 3}
        assert in_hardware_range(result.request.objective)
        assert result.request.energy_scale >= 1.0

    def test_empty_queue_returns_none(self, formula, small_hardware):
        assert Frontend(formula, small_hardware).prepare([]) is None

    def test_partial_queue_indices_refer_to_formula(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        result = frontend.prepare([2, 0])
        assert set(result.formula_clauses) <= {0, 2}

    def test_embedded_variables(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        result = frontend.prepare([1])  # clause (-1 v 4)
        assert result.embedded_variables == (1, 4)

    def test_elapsed_time_recorded(self, formula, small_hardware):
        result = Frontend(formula, small_hardware).prepare([0])
        assert result.elapsed_seconds > 0


class TestConditioning:
    def test_falsified_literals_dropped(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        trail = Assignment({1: False})
        result = frontend.prepare([0], trail)
        # Clause 0 = (x1 v x2 v x3) conditioned on x1=0 -> (x2 v x3).
        assert result.encoding.clauses[0] == Clause([2, 3])

    def test_fully_falsified_clause_skipped(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        trail = Assignment({5: False})
        assert frontend.prepare([3], trail) is None

    def test_kept_indices_follow_original_numbering(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        trail = Assignment({5: False, 1: False})
        result = frontend.prepare([3, 0], trail)
        # Clause 3 conditioned away; clause 0 survives as index 0.
        assert result.formula_clauses == (0,)

    def test_device_solves_conditioned_residual(self, formula, small_hardware):
        from repro.annealer import AnnealerDevice

        frontend = Frontend(formula, small_hardware)
        trail = Assignment({1: False, 2: False})
        result = frontend.prepare([0], trail)  # residual (x3)
        device = AnnealerDevice(small_hardware, seed=0)
        anneal = device.run(result.request)
        assert anneal.best.energy == pytest.approx(0.0, abs=1e-9)
        assert anneal.best.assignment[3] is True


class TestCoefficientToggle:
    def test_adjustment_changes_objective(self, small_hardware):
        formula = CNF([Clause([1, 2, 3]), Clause([3])], num_vars=3)
        plain = Frontend(formula, small_hardware, adjust=False).prepare([0, 1])
        adjusted = Frontend(formula, small_hardware, adjust=True).prepare([0, 1])
        # The unit clause's weak sub-objective is amplified to d* = 2.
        assert not plain.encoding.objective.is_close(adjusted.encoding.objective)
        # Unit penalty (1 - x3) has d = 1/2 so its target alpha is 4;
        # the d*-preserving scale-back settles on the largest boost
        # that keeps the summed objective in range (> 1, < 4 here).
        coefficient = adjusted.encoding.sub_objectives[-1].coefficient
        assert 1.0 < coefficient < 4.0
        assert adjusted.encoding.objective.d_star() == pytest.approx(
            plain.encoding.objective.d_star(), rel=1e-6
        )

    def test_num_reads_forwarded(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware, num_reads=7)
        assert frontend.prepare([0]).request.num_reads == 7


class TestCompilationCache:
    def test_repeat_queue_hits_and_reuses_request(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        first = frontend.prepare([0, 1, 2])
        again = frontend.prepare([0, 1, 2])
        assert frontend.cache_misses == 1
        assert frontend.cache_hits == 1
        # The expensive payload is the *same object*, not a recompile.
        assert again.request is first.request
        assert again.formula_clauses == first.formula_clauses

    def test_queue_order_insensitive(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        first = frontend.prepare([2, 0, 1])
        again = frontend.prepare([1, 2, 0])
        assert frontend.cache_hits == 1
        assert again.request is first.request

    def test_relevant_assignment_change_misses(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        frontend.prepare([0], Assignment({1: False}))
        frontend.prepare([0], Assignment({1: True}))
        assert frontend.cache_hits == 0
        assert frontend.cache_misses == 2

    def test_unrelated_assignment_still_hits(self, formula, small_hardware):
        # Clause 0 is over {1, 2, 3}; var 5 cannot affect its residual.
        frontend = Frontend(formula, small_hardware)
        first = frontend.prepare([0], Assignment({1: False}))
        again = frontend.prepare([0], Assignment({1: False, 5: True}))
        assert frontend.cache_hits == 1
        assert again.request is first.request

    def test_none_result_cached(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        trail = Assignment({5: False})
        assert frontend.prepare([3], trail) is None
        assert frontend.prepare([3], trail) is None
        assert frontend.cache_misses == 1
        assert frontend.cache_hits == 1

    def test_lru_bound_evicts_oldest(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware, cache_size=2)
        frontend.prepare([0])
        frontend.prepare([1])
        frontend.prepare([2])  # evicts [0]
        frontend.prepare([0])  # miss again
        assert frontend.cache_hits == 0
        assert frontend.cache_misses == 4
        assert frontend.prepare([2]) is not None  # still resident
        assert frontend.cache_hits == 1

    def test_cache_disabled(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware, cache_size=0)
        first = frontend.prepare([0])
        again = frontend.prepare([0])
        assert frontend.cache_hits == 0
        assert frontend.cache_misses == 0
        assert again.request is not first.request

    def test_negative_cache_size_rejected(self, formula, small_hardware):
        with pytest.raises(ValueError):
            Frontend(formula, small_hardware, cache_size=-1)

    def test_reset_cache(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        frontend.prepare([0])
        frontend.prepare([0])
        frontend.reset_cache()
        assert frontend.cache_hits == 0
        assert frontend.cache_misses == 0
        frontend.prepare([0])
        assert frontend.cache_misses == 1

    def test_hit_refreshes_elapsed_time(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        first = frontend.prepare([0, 1, 2])
        again = frontend.prepare([0, 1, 2])
        assert again.elapsed_seconds > 0
        assert again.elapsed_seconds != first.elapsed_seconds


class TestPrecompiledProblem:
    def test_compiled_attached_when_chain_strength_known(
        self, formula, small_hardware
    ):
        frontend = Frontend(formula, small_hardware, chain_strength=1.0)
        result = frontend.prepare([0, 1, 2])
        assert result.request.compiled is not None
        assert result.request.compiled.chain_strength == 1.0

    def test_no_compile_without_chain_strength(self, formula, small_hardware):
        result = Frontend(formula, small_hardware).prepare([0])
        assert result.request.compiled is None

    def test_device_accepts_precompiled_request(self, formula, small_hardware):
        from repro.annealer import AnnealerDevice

        device = AnnealerDevice(small_hardware, seed=0)
        frontend = Frontend(
            formula, small_hardware, chain_strength=device.chain_strength
        )
        result = frontend.prepare([0, 1, 2])
        anneal = device.run(result.request)
        assert anneal.samples


class TestEmbeddedObjectiveSubset:
    def test_only_embedded_clauses_in_objective(self, small_hardware):
        from repro.topology.chimera import ChimeraGraph

        tiny = ChimeraGraph(2, 2, 2)  # 4 vertical lines
        formula = CNF([Clause([1, 2, 3]), Clause([4, 5, 6])], num_vars=6)
        result = Frontend(formula, tiny).prepare([0, 1])
        assert result.formula_clauses == (0,)
        # Objective variables restricted to clause 0's vars + its aux.
        assert {4, 5, 6}.isdisjoint(
            v for v in result.request.objective.variables if v <= 6
        )
