"""Tests for the HyQSAT frontend pipeline."""

import numpy as np
import pytest

from repro.core.frontend import Frontend
from repro.qubo.normalization import in_hardware_range
from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause


@pytest.fixture
def formula():
    return CNF(
        [Clause([1, 2, 3]), Clause([-1, 4]), Clause([2, -3, 4]), Clause([5])],
        num_vars=5,
    )


class TestPrepare:
    def test_full_queue(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        result = frontend.prepare([0, 1, 2, 3])
        assert result is not None
        assert result.num_embedded == 4
        assert set(result.formula_clauses) == {0, 1, 2, 3}
        assert in_hardware_range(result.request.objective)
        assert result.request.energy_scale >= 1.0

    def test_empty_queue_returns_none(self, formula, small_hardware):
        assert Frontend(formula, small_hardware).prepare([]) is None

    def test_partial_queue_indices_refer_to_formula(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        result = frontend.prepare([2, 0])
        assert set(result.formula_clauses) <= {0, 2}

    def test_embedded_variables(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        result = frontend.prepare([1])  # clause (-1 v 4)
        assert result.embedded_variables == (1, 4)

    def test_elapsed_time_recorded(self, formula, small_hardware):
        result = Frontend(formula, small_hardware).prepare([0])
        assert result.elapsed_seconds > 0


class TestConditioning:
    def test_falsified_literals_dropped(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        trail = Assignment({1: False})
        result = frontend.prepare([0], trail)
        # Clause 0 = (x1 v x2 v x3) conditioned on x1=0 -> (x2 v x3).
        assert result.encoding.clauses[0] == Clause([2, 3])

    def test_fully_falsified_clause_skipped(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        trail = Assignment({5: False})
        assert frontend.prepare([3], trail) is None

    def test_kept_indices_follow_original_numbering(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware)
        trail = Assignment({5: False, 1: False})
        result = frontend.prepare([3, 0], trail)
        # Clause 3 conditioned away; clause 0 survives as index 0.
        assert result.formula_clauses == (0,)

    def test_device_solves_conditioned_residual(self, formula, small_hardware):
        from repro.annealer import AnnealerDevice

        frontend = Frontend(formula, small_hardware)
        trail = Assignment({1: False, 2: False})
        result = frontend.prepare([0], trail)  # residual (x3)
        device = AnnealerDevice(small_hardware, seed=0)
        anneal = device.run(result.request)
        assert anneal.best.energy == pytest.approx(0.0, abs=1e-9)
        assert anneal.best.assignment[3] is True


class TestCoefficientToggle:
    def test_adjustment_changes_objective(self, small_hardware):
        formula = CNF([Clause([1, 2, 3]), Clause([3])], num_vars=3)
        plain = Frontend(formula, small_hardware, adjust=False).prepare([0, 1])
        adjusted = Frontend(formula, small_hardware, adjust=True).prepare([0, 1])
        # The unit clause's weak sub-objective is amplified to d* = 2.
        assert not plain.encoding.objective.is_close(adjusted.encoding.objective)
        # Unit penalty (1 - x3) has d = 1/2 so its target alpha is 4;
        # the d*-preserving scale-back settles on the largest boost
        # that keeps the summed objective in range (> 1, < 4 here).
        coefficient = adjusted.encoding.sub_objectives[-1].coefficient
        assert 1.0 < coefficient < 4.0
        assert adjusted.encoding.objective.d_star() == pytest.approx(
            plain.encoding.objective.d_star(), rel=1e-6
        )

    def test_num_reads_forwarded(self, formula, small_hardware):
        frontend = Frontend(formula, small_hardware, num_reads=7)
        assert frontend.prepare([0]).request.num_reads == 7


class TestEmbeddedObjectiveSubset:
    def test_only_embedded_clauses_in_objective(self, small_hardware):
        from repro.topology.chimera import ChimeraGraph

        tiny = ChimeraGraph(2, 2, 2)  # 4 vertical lines
        formula = CNF([Clause([1, 2, 3]), Clause([4, 5, 6])], num_vars=6)
        result = Frontend(formula, tiny).prepare([0, 1])
        assert result.formula_clauses == (0,)
        # Objective variables restricted to clause 0's vars + its aux.
        assert {4, 5, 6}.isdisjoint(
            v for v in result.request.objective.variables if v <= 6
        )
