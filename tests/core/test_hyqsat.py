"""Integration tests for the HyQSAT hybrid solver."""

import numpy as np
import pytest

from repro.annealer.device import AnnealerDevice
from repro.annealer.noise import NoiseModel
from repro.cdcl.solver import SolverStatus
from repro.core.backend import Strategy
from repro.core.config import HyQSatConfig
from repro.core.hyqsat import HyQSatSolver, estimate_iterations
from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF, Clause
from repro.topology.chimera import ChimeraGraph

from tests.conftest import make_random_3sat


@pytest.fixture(scope="module")
def shared_device():
    return AnnealerDevice(ChimeraGraph(8, 8, 4), seed=0)


class TestEstimate:
    def test_positive(self):
        assert estimate_iterations(10, 42) >= 1
        assert estimate_iterations(0, 0) == 1

    def test_grows_with_clauses(self):
        assert estimate_iterations(100, 430) > estimate_iterations(100, 200)

    def test_grows_with_ratio(self):
        easy = estimate_iterations(100, 200)
        hard = estimate_iterations(100, 430)
        assert hard > easy


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_brute_force(self, seed, shared_device):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 12))
        cap = (n * (n - 1) * (n - 2) // 6) * 8 // 2
        m = min(int(rng.integers(2, 5 * n)), cap)
        f = make_random_3sat(n, m, seed=seed + 500)
        expected = brute_force_solve(f) is not None
        result = HyQSatSolver(
            f, device=shared_device, config=HyQSatConfig(seed=seed)
        ).solve()
        assert result.is_sat == expected
        if result.is_sat:
            assert result.model.satisfies(f)

    def test_unsat_pair(self, shared_device):
        f = CNF([[1], [-1]])
        result = HyQSatSolver(f, device=shared_device).solve()
        assert result.status is SolverStatus.UNSAT

    def test_empty_formula(self, shared_device):
        result = HyQSatSolver(CNF([], num_vars=2), device=shared_device).solve()
        assert result.is_sat

    def test_noisy_device_still_sound(self):
        device = AnnealerDevice(
            ChimeraGraph(8, 8, 4), noise=NoiseModel.dwave_2000q(), seed=1
        )
        for seed in range(6):
            f = make_random_3sat(8, 30, seed=seed)
            expected = brute_force_solve(f) is not None
            result = HyQSatSolver(f, device=device, config=HyQSatConfig(seed=seed)).solve()
            assert result.is_sat == expected

    def test_rejects_wide_clauses(self, shared_device):
        f = CNF([[1, 2, 3, 4]], num_vars=4)
        with pytest.raises(ValueError, match="3-SAT"):
            HyQSatSolver(f, device=shared_device)


class TestHybridAccounting:
    def test_qa_calls_recorded(self, shared_device):
        f = make_random_3sat(30, 126, seed=3)
        solver = HyQSatSolver(f, device=shared_device, config=HyQSatConfig(seed=3))
        result = solver.solve()
        hybrid = result.hybrid
        if hybrid.qa_calls:
            assert hybrid.qpu_time_us > 0
            assert hybrid.frontend_seconds > 0
            assert hybrid.embedded_clause_total > 0
            assert hybrid.avg_embedded_clauses > 0
            assert len(hybrid.energies) == hybrid.qa_calls
            assert sum(hybrid.strategy_counts.values()) == hybrid.qa_calls

    def test_warmup_budget_respected(self, shared_device):
        f = make_random_3sat(30, 126, seed=4)
        config = HyQSatConfig(warmup_iterations=5, seed=4)
        solver = HyQSatSolver(f, device=shared_device, config=config)
        result = solver.solve()
        assert result.hybrid.warmup_iterations == 5
        assert result.hybrid.qa_calls <= 5

    def test_warmup_zero_disables_qa(self, shared_device):
        f = make_random_3sat(20, 84, seed=5)
        config = HyQSatConfig(warmup_iterations=0, seed=5)
        result = HyQSatSolver(f, device=shared_device, config=config).solve()
        assert result.hybrid.qa_calls == 0

    def test_qa_period_thins_calls(self, shared_device):
        f = make_random_3sat(30, 126, seed=6)
        dense = HyQSatSolver(
            f, device=AnnealerDevice(ChimeraGraph(8, 8, 4), seed=0),
            config=HyQSatConfig(seed=6, warmup_iterations=20, qa_period=1),
        ).solve()
        sparse = HyQSatSolver(
            f, device=AnnealerDevice(ChimeraGraph(8, 8, 4), seed=0),
            config=HyQSatConfig(seed=6, warmup_iterations=20, qa_period=10),
        ).solve()
        assert sparse.hybrid.qa_calls <= dense.hybrid.qa_calls

    def test_time_breakdown(self, shared_device):
        f = make_random_3sat(20, 84, seed=7)
        result = HyQSatSolver(f, device=shared_device, config=HyQSatConfig(seed=7)).solve()
        breakdown = result.time_breakdown(cdcl_iteration_seconds=1e-5)
        assert breakdown.total_s == pytest.approx(
            breakdown.frontend_s + breakdown.qpu_s + breakdown.backend_s + breakdown.cdcl_s
        )
        shares = breakdown.shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_iterations_property(self, shared_device):
        f = make_random_3sat(10, 40, seed=8)
        result = HyQSatSolver(f, device=shared_device, config=HyQSatConfig(seed=8)).solve()
        assert result.iterations == result.stats.iterations


class TestStrategyOne:
    def test_trivially_satisfiable_formula_solved_by_proposal(self, shared_device):
        # All-positive clauses: any QA sample descends to all-true.
        clauses = [Clause([v, v % 9 + 1]) for v in range(1, 10)]
        f = CNF(clauses, num_vars=9)
        result = HyQSatSolver(
            f, device=shared_device, config=HyQSatConfig(seed=0)
        ).solve()
        assert result.is_sat


class TestAblationFlags:
    @pytest.mark.parametrize(
        "flags",
        [
            {"enable_strategy_1": False},
            {"enable_strategy_2": False},
            {"enable_strategy_4": False},
            {"use_activity_queue": False},
            {"adjust_coefficients": False},
        ],
    )
    def test_ablations_preserve_correctness(self, flags, shared_device):
        for seed in range(4):
            f = make_random_3sat(8, 32, seed=seed + 40)
            expected = brute_force_solve(f) is not None
            config = HyQSatConfig(seed=seed, **flags)
            result = HyQSatSolver(f, device=shared_device, config=config).solve()
            assert result.is_sat == expected


class TestFrontendCacheIntegration:
    def test_cache_on_off_identical_solve(self):
        # Acceptance check: a full 100-variable solve must produce the
        # same outcome with the compilation cache on and off, and the
        # cached run must actually hit.
        f = make_random_3sat(100, 426, seed=1)
        results = {}
        for cache_size in (64, 0):
            config = HyQSatConfig(seed=0, frontend_cache_size=cache_size)
            device = AnnealerDevice(ChimeraGraph(16, 16, 4), seed=0)
            results[cache_size] = HyQSatSolver(f, device=device, config=config).solve()
        on, off = results[64], results[0]
        assert on.status is off.status
        if on.is_sat:
            assert on.model.satisfies(f)
            assert off.model.satisfies(f)
        assert on.hybrid.frontend_cache_hits > 0
        assert off.hybrid.frontend_cache_hits == 0
        assert off.hybrid.frontend_cache_misses == 0

    def test_hit_rate_property(self):
        from repro.core.hyqsat import HybridStats

        stats = HybridStats()
        assert stats.frontend_cache_hit_rate == 0.0
        stats.frontend_cache_hits = 3
        stats.frontend_cache_misses = 1
        assert stats.frontend_cache_hit_rate == pytest.approx(0.75)

    def test_queue_reuse_disabled_still_correct(self, shared_device):
        for seed in range(4):
            f = make_random_3sat(8, 32, seed=seed + 80)
            expected = brute_force_solve(f) is not None
            config = HyQSatConfig(seed=seed, reuse_queue_between_conflicts=False)
            result = HyQSatSolver(f, device=shared_device, config=config).solve()
            assert result.is_sat == expected


class TestConfigValidation:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            HyQSatConfig(top_k=0)
        with pytest.raises(ValueError):
            HyQSatConfig(qa_period=0)
        with pytest.raises(ValueError):
            HyQSatConfig(num_reads=0)
        with pytest.raises(ValueError):
            HyQSatConfig(max_queue_clauses=0)
        with pytest.raises(ValueError):
            HyQSatConfig(warmup_iterations=-1)
        with pytest.raises(ValueError):
            HyQSatConfig(strategy_4_decisions=-1)

    def test_capacity_from_hardware(self):
        f = CNF([[1, 2]], num_vars=2)
        solver = HyQSatSolver(f, device=AnnealerDevice(ChimeraGraph(4, 4, 4)))
        assert solver._capacity == 3 * 16

    def test_capacity_override(self):
        f = CNF([[1, 2]], num_vars=2)
        solver = HyQSatSolver(
            f,
            device=AnnealerDevice(ChimeraGraph(4, 4, 4)),
            config=HyQSatConfig(max_queue_clauses=10),
        )
        assert solver._capacity == 10
