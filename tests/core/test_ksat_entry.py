"""Tests for the Section VII-B k-SAT entry point."""

import numpy as np
import pytest

from repro.annealer import AnnealerDevice
from repro.benchgen.random_ksat import random_ksat
from repro.core import HyQSatSolver
from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF
from repro.topology import ChimeraGraph


@pytest.fixture(scope="module")
def device():
    return AnnealerDevice(ChimeraGraph(8, 8, 4), seed=0)


def test_from_ksat_solves_wide_formula(device):
    f = CNF([[1, 2, 3, 4, 5], [-1, -2], [-3, -4, -5, 1]], num_vars=5)
    solver = HyQSatSolver.from_ksat(f, device=device)
    result = solver.solve()
    assert result.is_sat
    # Model projected onto the ORIGINAL variables only.
    assert set(result.model.keys()) <= set(range(1, 6))
    assert result.model.completed(5).satisfies(f)


def test_from_ksat_unsat(device):
    # x1..x4, all 16 sign patterns of a 4-clause over the same vars: UNSAT.
    clauses = []
    for bits in range(16):
        clauses.append([(v if (bits >> (v - 1)) & 1 else -v) for v in range(1, 5)])
    f = CNF(clauses, num_vars=4)
    result = HyQSatSolver.from_ksat(f, device=device).solve()
    assert result.is_unsat


@pytest.mark.parametrize("seed", range(5))
def test_from_ksat_agrees_with_brute_force(seed, device):
    rng = np.random.default_rng(seed)
    f = random_ksat(7, 20, 5, rng)
    expected = brute_force_solve(f) is not None
    result = HyQSatSolver.from_ksat(f, device=device).solve()
    assert result.is_sat == expected
    if result.is_sat:
        assert result.model.completed(f.num_vars).satisfies(f)


def test_plain_constructor_still_rejects_wide(device):
    f = CNF([[1, 2, 3, 4]], num_vars=4)
    with pytest.raises(ValueError, match="from_ksat"):
        HyQSatSolver(f, device=device)
