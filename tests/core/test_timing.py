"""Tests for the end-to-end time breakdown."""

import pytest

from repro.core.timing import TimeBreakdown


def test_total_and_warmup():
    b = TimeBreakdown(frontend_s=1.0, qpu_s=2.0, backend_s=3.0, cdcl_s=4.0)
    assert b.total_s == 10.0
    assert b.warmup_s == 6.0


def test_shares_sum_to_one():
    b = TimeBreakdown(0.5, 1.5, 1.0, 2.0)
    shares = b.shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["qa"] == pytest.approx(0.3)


def test_zero_total_shares():
    b = TimeBreakdown(0, 0, 0, 0)
    assert all(v == 0.0 for v in b.shares().values())


def test_str_mentions_components():
    text = str(TimeBreakdown(0.1, 0.2, 0.3, 0.4))
    for key in ("frontend", "qa", "backend", "cdcl"):
        assert key in text
