"""Tests for HyQSatConfig defaults (the paper's settings)."""

import pytest

from repro.core.config import HyQSatConfig
from repro.ml.intervals import ConfidenceBands


def test_paper_defaults():
    config = HyQSatConfig()
    assert config.top_k == 30              # Section IV-A
    assert config.num_reads == 1           # one sample per call
    assert config.qa_period == 1           # QA every warm-up iteration
    assert config.adjust_coefficients      # Section IV-C on by default
    assert config.use_activity_queue       # Section IV-A on by default
    assert config.bands == ConfidenceBands()  # 4.5 / 8.0 partition


def test_all_strategies_enabled_by_default():
    config = HyQSatConfig()
    assert config.enable_strategy_1
    assert config.enable_strategy_2
    assert config.enable_strategy_4


def test_bands_are_per_instance():
    a = HyQSatConfig()
    b = HyQSatConfig(bands=ConfidenceBands(t_sat=1.0, t_unsat=2.0))
    assert a.bands != b.bands
    assert HyQSatConfig().bands == a.bands


def test_warmup_override():
    assert HyQSatConfig(warmup_iterations=0).warmup_iterations == 0
    assert HyQSatConfig().warmup_iterations is None


def test_hot_path_defaults():
    config = HyQSatConfig()
    assert config.batch_reads is True
    assert config.frontend_cache_size == 64
    assert config.reuse_queue_between_conflicts is True


def test_frontend_cache_size_validated():
    assert HyQSatConfig(frontend_cache_size=0).frontend_cache_size == 0
    with pytest.raises(ValueError):
        HyQSatConfig(frontend_cache_size=-1)
