"""Engine selection, warm start, and CDCL-rate stats in the hybrid loop."""

import pytest

from repro.annealer.device import AnnealerDevice
from repro.cdcl.native import native_available
from repro.core.config import HyQSatConfig
from repro.core.hyqsat import HyQSatSolver
from repro.topology.chimera import ChimeraGraph

from tests.conftest import make_random_3sat

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernel"
)


def make_device():
    return AnnealerDevice(ChimeraGraph(8, 8, 4), seed=0)


class TestConfig:
    def test_engine_validated(self):
        with pytest.raises(ValueError, match="unknown CDCL engine"):
            HyQSatConfig(engine="turbo")

    def test_defaults(self):
        config = HyQSatConfig()
        assert config.engine == "reference"
        assert config.warm_start is False


@needs_native
class TestEngineInHybridLoop:
    @pytest.mark.parametrize("seed", range(4))
    def test_engines_agree_on_hybrid_solve(self, seed):
        formula = make_random_3sat(24, 100, seed=seed)
        results = {}
        for engine in ("reference", "fast"):
            solver = HyQSatSolver(
                formula,
                device=make_device(),
                config=HyQSatConfig(seed=seed, engine=engine),
            )
            results[engine] = solver.solve()
        ref, fast = results["reference"], results["fast"]
        assert ref.status == fast.status
        assert ref.stats.as_dict() == fast.stats.as_dict()
        assert ref.hybrid.qa_calls == fast.hybrid.qa_calls
        if ref.model is not None:
            assert ref.model.frozen() == fast.model.frozen()


class TestRates:
    def test_rates_populated(self):
        formula = make_random_3sat(20, 85, seed=1)
        solver = HyQSatSolver(
            formula, device=make_device(), config=HyQSatConfig(seed=1)
        )
        result = solver.solve()
        hybrid = result.hybrid
        assert hybrid.cdcl_seconds > 0.0
        if result.stats.propagations:
            assert hybrid.cdcl_propagations_per_s > 0.0
        assert hybrid.cdcl_conflicts_per_s >= 0.0

    def test_rate_gauges_published(self):
        from repro.observability import Observability

        observability = Observability.profiling()
        formula = make_random_3sat(18, 75, seed=2)
        HyQSatSolver(
            formula,
            device=make_device(),
            config=HyQSatConfig(seed=2),
            observability=observability,
        ).solve()
        dump = observability.metrics.dump_json()
        assert "hyqsat_cdcl_propagations_per_s" in dump
        assert "hyqsat_cdcl_conflicts_per_s" in dump


class TestWarmStart:
    def test_cold_start_discards_solver(self):
        formula = make_random_3sat(18, 75, seed=3)
        solver = HyQSatSolver(
            formula, device=make_device(), config=HyQSatConfig(seed=3)
        )
        solver.solve()
        assert solver._cdcl is None

    def test_warm_start_reuses_solver(self):
        formula = make_random_3sat(18, 75, seed=3)
        solver = HyQSatSolver(
            formula,
            device=make_device(),
            config=HyQSatConfig(seed=3, warm_start=True),
        )
        first = solver.solve()
        warm = solver._cdcl
        assert warm is not None
        second = solver.solve()
        assert solver._cdcl is warm  # same instance, learned DB kept
        assert first.status == second.status
        # cumulative budgets: the warm solver's stats only grow
        assert second.stats.iterations >= first.stats.iterations
        if second.is_sat:
            assert second.model.satisfies(formula)
