"""Tests for clause queue generation (Section IV-A)."""

import numpy as np
import pytest

from repro.core.clause_queue import ClauseQueueGenerator
from repro.sat.cnf import CNF, Clause


@pytest.fixture
def chain_formula():
    """Clauses sharing variables in a chain: 0-1 share x2, 1-2 share x3..."""
    return CNF(
        [
            Clause([1, 2]),
            Clause([2, 3]),
            Clause([3, 4]),
            Clause([4, 5]),
            Clause([6, 7]),  # separate component
        ],
        num_vars=7,
    )


class TestActivityQueue:
    def test_head_is_top_activity_when_k1(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, top_k=1, seed=0)
        activity = [1.0, 1.0, 9.0, 1.0, 1.0]
        queue = gen.generate(activity, capacity=3)
        assert queue[0] == 2

    def test_bfs_order_follows_shared_variables(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, top_k=1, seed=0)
        activity = [9.0, 1.0, 1.0, 1.0, 1.0]
        queue = gen.generate(activity, capacity=5)
        assert queue[0] == 0
        # BFS from clause 0 reaches 1, then 2, then 3; clause 4 is
        # unreachable through shared variables.
        assert queue == [0, 1, 2, 3]

    def test_capacity_respected(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, top_k=1, seed=0)
        queue = gen.generate([5.0, 1, 1, 1, 1], capacity=2)
        assert len(queue) == 2

    def test_candidates_restrict_queue(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, top_k=1, seed=0)
        queue = gen.generate([1.0] * 5, capacity=5, candidates=[2, 3])
        assert set(queue) <= {2, 3}

    def test_empty_candidates(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, top_k=1, seed=0)
        assert gen.generate([1.0] * 5, capacity=5, candidates=[]) == []

    def test_zero_capacity(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, top_k=1, seed=0)
        assert gen.generate([1.0] * 5, capacity=0) == []

    def test_activity_length_validated(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula)
        with pytest.raises(ValueError):
            gen.generate([1.0], capacity=3)

    def test_top_k_validated(self, chain_formula):
        with pytest.raises(ValueError):
            ClauseQueueGenerator(chain_formula, top_k=0)

    def test_random_head_varies_without_score_updates(self, chain_formula):
        """The paper randomises the head draw so repeated calls do not
        re-deploy the same queue."""
        gen = ClauseQueueGenerator(chain_formula, top_k=5, seed=1)
        heads = {gen.generate([1.0] * 5, capacity=1)[0] for _ in range(30)}
        assert len(heads) > 1

    def test_no_duplicates(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, top_k=3, seed=2)
        queue = gen.generate([1.0] * 5, capacity=5)
        assert len(queue) == len(set(queue))


class TestRandomQueue:
    def test_respects_capacity_and_pool(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, seed=0)
        queue = gen.generate_random(3, candidates=[0, 1, 2, 3])
        assert len(queue) == 3
        assert set(queue) <= {0, 1, 2, 3}

    def test_takes_all_when_capacity_exceeds_pool(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, seed=0)
        queue = gen.generate_random(99)
        assert sorted(queue) == [0, 1, 2, 3, 4]

    def test_empty_pool(self, chain_formula):
        gen = ClauseQueueGenerator(chain_formula, seed=0)
        assert gen.generate_random(3, candidates=[]) == []


class TestLocality:
    def test_bfs_queue_has_higher_variable_locality_than_random(self):
        """Adjacent queue clauses should share variables far more often
        under BFS generation than random generation."""
        rng = np.random.default_rng(0)
        clauses = []
        for _ in range(120):
            vs = rng.choice(np.arange(1, 61), size=3, replace=False)
            clauses.append(Clause([int(v) for v in vs]))
        formula = CNF(clauses, num_vars=60)
        gen = ClauseQueueGenerator(formula, seed=0)

        def adjacency_share(queue):
            shares = 0
            for a, b in zip(queue, queue[1:]):
                if formula.clauses[a].variables & formula.clauses[b].variables:
                    shares += 1
            return shares / max(1, len(queue) - 1)

        bfs = gen.generate([1.0] * 120, capacity=40)
        rand = gen.generate_random(40)
        assert adjacency_share(bfs) > adjacency_share(rand)
