"""Tests for the analysis helpers."""

import numpy as np
import pytest

from repro.analysis.calibration import measure_iteration_cost
from repro.analysis.metrics import ReductionStats, reduction_stats, speedup
from repro.analysis.tables import format_table
from repro.analysis.visits import conflict_proportion, visit_profile
from repro.cdcl.solver import CdclSolver
from repro.cdcl.stats import ClauseCounters, SolverStats

from tests.conftest import make_random_3sat


class TestMetrics:
    def test_reduction_stats_values(self):
        stats = reduction_stats([1.0, 2.0, 4.0])
        assert stats.average == pytest.approx(7 / 3)
        assert stats.geomean == pytest.approx(2.0)
        assert stats.maximum == 4.0
        assert stats.minimum == 1.0
        assert stats.count == 3

    def test_as_row(self):
        assert reduction_stats([2.0]).as_row() == ["2.00", "2.00", "2.00", "2.00"]

    def test_validation(self):
        with pytest.raises(ValueError):
            reduction_stats([])
        with pytest.raises(ValueError):
            reduction_stats([1.0, 0.0])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestVisits:
    def test_profile_shares_sum_to_one(self):
        f = make_random_3sat(50, 215, seed=0)
        solver = CdclSolver(f)
        solver.solve()
        profile = visit_profile(solver.counters)
        assert sum(profile.total_share) == pytest.approx(1.0)
        assert len(profile.propagation_share) == 5

    def test_top_quintile_dominates(self):
        """The Figure 5 shape: visits concentrate in the top group."""
        f = make_random_3sat(60, 258, seed=1)
        solver = CdclSolver(f)
        solver.solve()
        profile = visit_profile(solver.counters)
        shares = profile.total_share
        assert shares[0] == max(shares)
        assert shares[0] > 0.2

    def test_empty_counters(self):
        profile = visit_profile(ClauseCounters.for_clauses(10))
        assert sum(profile.total_share) == 0.0

    def test_quantiles_validated(self):
        with pytest.raises(ValueError):
            visit_profile(ClauseCounters.for_clauses(5), quantiles=0)

    def test_conflict_proportion(self):
        stats = SolverStats(iterations=100, conflicts=25)
        assert conflict_proportion(stats) == 0.25
        assert conflict_proportion(SolverStats()) == 0.0


class TestTables:
    def test_alignment_and_title(self):
        text = format_table(["A", "Long header"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Long header" in lines[1]
        assert lines[2].startswith("-")

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["A"], [["x", "extra"]])


class TestCalibration:
    def test_cost_is_positive_and_small(self):
        cost = measure_iteration_cost(num_vars=30, num_clauses=120, trials=2)
        assert 0 < cost < 0.1


class TestResilienceSummary:
    def test_summary_fields(self):
        from repro.analysis.metrics import resilience_summary
        from repro.core.hyqsat import HybridStats

        hybrid = HybridStats(
            qa_calls=8,
            qa_failures=2,
            qa_retries=4,
            qa_dropped_reads=3,
            qa_budget_spent_us=1234.5,
            qa_fault_counts={"programming_error": 2, "readout_timeout": 1},
            degraded=True,
        )
        summary = resilience_summary(hybrid)
        assert summary["qa_calls"] == 8.0
        assert summary["qa_attempted"] == 10.0
        assert summary["availability"] == pytest.approx(0.8)
        assert summary["retries_per_call"] == pytest.approx(0.5)
        assert summary["budget_spent_us"] == pytest.approx(1234.5)
        assert summary["dropped_reads"] == 3.0
        assert summary["degraded"] == 1.0
        assert summary["fault_programming_error"] == 2.0
        assert summary["fault_readout_timeout"] == 1.0

    def test_no_calls_gives_explicit_empty_summary(self):
        # Regression: a run that never attempted a QA call must not
        # fabricate availability=1.0 — the ratio fields are simply
        # absent, so aggregations cannot mistake an all-classic run
        # for a perfectly healthy device.
        from repro.analysis.metrics import resilience_summary
        from repro.core.hyqsat import HybridStats

        summary = resilience_summary(HybridStats())
        assert summary["qa_attempted"] == 0.0
        assert summary["qa_calls"] == 0.0
        assert summary["qa_failures"] == 0.0
        assert "availability" not in summary
        assert "retries_per_call" not in summary

    def test_all_failed_calls_have_zero_availability(self):
        from repro.analysis.metrics import resilience_summary
        from repro.core.hyqsat import HybridStats

        summary = resilience_summary(HybridStats(qa_failures=3, qa_retries=2))
        assert summary["availability"] == 0.0
        assert summary["retries_per_call"] == 0.0
