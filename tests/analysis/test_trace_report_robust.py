"""trace-report robustness: empty / truncated / meta-only traces must
exit with a clean message, never a traceback."""

import json

import pytest

from repro.analysis.trace_report import main

META = json.dumps({"type": "meta", "schema": "hyqsat-trace/1"})
SPAN = json.dumps(
    {
        "type": "span",
        "name": "solve",
        "id": 1,
        "parent": None,
        "wall_dur_s": 0.25,
        "qpu_dur_us": 12.0,
        "attrs": {"status": "sat"},
    }
)


def run(tmp_path, text, capsys):
    path = tmp_path / "trace.jsonl"
    path.write_text(text)
    code = main([str(path)])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_empty_file(tmp_path, capsys):
    code, out, err = run(tmp_path, "", capsys)
    assert code == 1
    assert "trace is empty" in err


def test_blank_lines_only(tmp_path, capsys):
    code, out, err = run(tmp_path, "\n\n  \n", capsys)
    assert code == 1
    assert "trace is empty" in err


def test_meta_only(tmp_path, capsys):
    code, out, err = run(tmp_path, META + "\n", capsys)
    assert code == 0
    assert "no spans or events" in out


def test_truncated_final_record(tmp_path, capsys):
    torn = META + "\n" + SPAN + "\n" + SPAN[: len(SPAN) // 2]
    code, out, err = run(tmp_path, torn, capsys)
    assert code == 0
    assert "truncated final record" in err
    assert "solve" in out  # the intact prefix is still reported


def test_corruption_mid_file_is_an_error(tmp_path, capsys):
    text = META + "\nnot json\n" + SPAN + "\n"
    code, out, err = run(tmp_path, text, capsys)
    assert code == 1
    assert "invalid JSON on line 2" in err


def test_missing_file(tmp_path, capsys):
    code = main([str(tmp_path / "nope.jsonl")])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_wrong_schema(tmp_path, capsys):
    meta = json.dumps({"type": "meta", "schema": "other/9"})
    code, out, err = run(tmp_path, meta + "\n", capsys)
    assert code == 1
    assert "unsupported trace schema" in err


def test_intact_trace_still_reports(tmp_path, capsys):
    code, out, err = run(tmp_path, META + "\n" + SPAN + "\n", capsys)
    assert code == 0
    assert "solve" in out
