"""Tests for the ASCII figure helpers."""

import numpy as np

from repro.analysis.figures import ascii_histogram, ascii_scatter, ascii_series


class TestHistogram:
    def test_renders_bins_and_counts(self):
        text = ascii_histogram([1, 1, 2, 5], bins=4, label="demo")
        assert text.startswith("demo")
        assert text.count("\n") == 4
        assert "█" in text

    def test_empty(self):
        assert "(no data)" in ascii_histogram([], label="x")

    def test_constant_data(self):
        text = ascii_histogram([3.0, 3.0, 3.0], bins=3)
        assert "3" in text

    def test_explicit_range(self):
        text = ascii_histogram([1.0], bins=2, value_range=(0.0, 10.0))
        assert "[   0.00" in text

    def test_total_count_preserved(self):
        values = list(np.random.default_rng(0).normal(size=100))
        text = ascii_histogram(values, bins=8)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()]
        assert sum(counts) == 100


class TestScatter:
    def test_grid_dimensions(self):
        text = ascii_scatter([1, 2, 3], [1, 4, 9], width=20, height=5)
        lines = text.splitlines()
        assert len(lines) == 5 + 3  # grid + borders + footer
        assert all(len(l) == 22 for l in lines[:-1])

    def test_points_plotted(self):
        text = ascii_scatter([0, 1], [0, 1], width=10, height=4)
        assert text.count("o") + text.count("O") >= 1

    def test_footer_labels(self):
        text = ascii_scatter([1], [2], x_label="speed", y_label="time")
        assert "speed" in text and "time" in text

    def test_empty_and_mismatched(self):
        assert ascii_scatter([], []) == "(no data)"
        assert ascii_scatter([1], [1, 2]) == "(no data)"

    def test_overlapping_points_marked(self):
        text = ascii_scatter([1, 1, 2], [1, 1, 2], width=8, height=4)
        assert "O" in text


class TestSeries:
    def test_bars_scale_to_peak(self):
        text = ascii_series([("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[1].count("█") == 2 * lines[0].count("█")

    def test_label_and_empty(self):
        assert ascii_series([], label="t").startswith("t")
        assert "(no data)" in ascii_series([], label="t")

    def test_zero_values(self):
        text = ascii_series([("a", 0.0)])
        assert "0" in text
