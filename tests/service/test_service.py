"""SolverService integration: bit-identity, dedup, fault isolation,
shared budget, lifecycle states, and service observability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability import Observability, read_trace
from repro.service import (
    JobSpec,
    SolverService,
    ServiceConfig,
    run_batch,
    run_job,
)

from tests.service.conftest import solver_view

DIMACS = "p cnf 3 2\n1 2 3 0\n-1 2 3 0\n"


class TestBitIdentity:
    """The acceptance property: service results == solo results, per
    fixed job seed, at any worker count and pool mode."""

    def test_mixed_set_is_actually_mixed(self, solo_outcomes):
        statuses = {o.status for o in solo_outcomes.values()}
        assert statuses == {"sat", "unsat"}

    @pytest.mark.parametrize("workers,pool_mode", [
        (4, "thread"),
        (1, "inline"),
    ])
    def test_parallel_matches_serial(
        self, mixed_specs, solo_outcomes, workers, pool_mode
    ):
        outcomes, stats = run_batch(
            mixed_specs, workers=workers, pool_mode=pool_mode
        )
        assert [o.job_id for o in outcomes] == [s.job_id for s in mixed_specs]
        for outcome in outcomes:
            assert outcome.state == "done"
            assert solver_view(outcome) == solver_view(
                solo_outcomes[outcome.job_id]
            )
        assert stats.jobs_by_state == {"done": len(mixed_specs)}

    def test_process_pool_matches_serial(self, mixed_specs, solo_outcomes):
        subset = mixed_specs[:4]
        outcomes, stats = run_batch(subset, workers=2, pool_mode="process")
        for outcome in outcomes:
            assert solver_view(outcome) == solver_view(
                solo_outcomes[outcome.job_id]
            )
        # replayed accounting still lands in the shared ledger
        assert stats.qpu_grants == sum(o.qa_calls for o in outcomes)
        assert stats.qpu_busy_us == pytest.approx(
            sum(o.qpu_time_us for o in outcomes)
        )


class TestDedup:
    def test_duplicates_solved_once(self, instance_texts):
        text = instance_texts[0]
        specs = [
            JobSpec(job_id="primary", dimacs=text, seed=3),
            JobSpec(job_id="dup1", dimacs=text, seed=3),
            JobSpec(job_id="dup2", dimacs=text, seed=3),
            JobSpec(job_id="other", dimacs=instance_texts[1], seed=3),
        ]
        outcomes, stats = run_batch(specs, workers=2)
        by_id = {o.job_id: o for o in outcomes}

        assert stats.dedup_hits == 2
        assert by_id["primary"].state == "done"
        for dup in ("dup1", "dup2"):
            assert by_id[dup].state == "deduped"
            assert by_id[dup].dedup_of == "primary"
            assert solver_view(by_id[dup]) == solver_view(by_id["primary"])
        assert by_id["other"].state == "done"
        assert stats.jobs_by_state == {"done": 2, "deduped": 2}

    def test_clause_order_does_not_defeat_dedup(self):
        shuffled = "p cnf 3 2\n3 2 -1 0\n2 1 3 0\n"
        specs = [
            JobSpec(job_id="a", dimacs=DIMACS, seed=1),
            JobSpec(job_id="b", dimacs=shuffled, seed=1),
        ]
        _, stats = run_batch(specs, workers=1)
        assert stats.dedup_hits == 1

    def test_different_seeds_do_not_dedup(self):
        specs = [
            JobSpec(job_id="a", dimacs=DIMACS, seed=1),
            JobSpec(job_id="b", dimacs=DIMACS, seed=2),
        ]
        _, stats = run_batch(specs, workers=1)
        assert stats.dedup_hits == 0

    def test_no_dedup_flag(self):
        specs = [
            JobSpec(job_id="a", dimacs=DIMACS, seed=1),
            JobSpec(job_id="b", dimacs=DIMACS, seed=1),
        ]
        outcomes, stats = run_batch(specs, workers=2, dedup=False)
        assert stats.dedup_hits == 0
        assert all(o.state == "done" for o in outcomes)
        # still bit-identical, by determinism rather than by sharing
        assert solver_view(outcomes[0]) == solver_view(outcomes[1])


class TestFaultIsolation:
    """One faulty job degrades alone; siblings stay bit-identical to
    their solo runs (the scheduler-under-faults satellite)."""

    def test_faulty_job_does_not_perturb_siblings(self, instance_texts):
        faulty = JobSpec(
            job_id="faulty",
            dimacs=instance_texts[0],
            seed=0,
            qa_faults="0.8",
            qa_retries=2,
            qa_breaker_threshold=2,
            qa_budget_us=2000.0,
        )
        siblings = [
            JobSpec(job_id=f"clean{i}", dimacs=instance_texts[i], seed=i)
            for i in (1, 2)
        ]
        solo = {s.job_id: run_job(s) for s in [faulty] + siblings}

        outcomes, _ = run_batch([faulty] + siblings, workers=3)
        by_id = {o.job_id: o for o in outcomes}

        # the faulty job's failures/breaker/budget are its own — and
        # even it reproduces its solo run exactly
        assert by_id["faulty"].qa_failures > 0
        assert solver_view(by_id["faulty"]) == solver_view(solo["faulty"])
        # siblings never see the faults
        for spec in siblings:
            out = by_id[spec.job_id]
            assert out.qa_failures == 0
            assert out.breaker_state == "closed"
            assert solver_view(out) == solver_view(solo[spec.job_id])


class TestSharedBudget:
    def test_exhausted_pool_budget_degrades_not_crashes(self, instance_texts):
        specs = [
            JobSpec(job_id=f"j{i}", dimacs=instance_texts[i], seed=i)
            for i in range(3)
        ]
        solo = {s.job_id: run_job(s) for s in specs}
        # a budget no call fits in: every job degrades to pure CDCL
        outcomes, stats = run_batch(specs, workers=2, qpu_budget_us=1.0)
        for outcome in outcomes:
            assert outcome.state == "done"
            # SAT/UNSAT is ground truth, unaffected by degradation
            assert outcome.status == solo[outcome.job_id].status
            assert outcome.qa_calls == 0
        assert stats.qpu_busy_us == 0.0


class TestLifecycle:
    def test_rejected_over_max_depth(self):
        specs = [
            JobSpec(job_id=f"j{i}", dimacs=DIMACS, seed=i) for i in range(3)
        ]
        outcomes, stats = run_batch(specs, workers=1, max_depth=1)
        states = [o.state for o in outcomes]
        assert states.count("rejected") == 2
        assert states.count("done") == 1
        rejected = [o for o in outcomes if o.state == "rejected"]
        assert all("full" in o.error for o in rejected)
        assert stats.jobs_by_state == {"done": 1, "rejected": 2}

    def test_expired_deadline(self):
        specs = [
            JobSpec(job_id="a", dimacs=DIMACS),
            JobSpec(job_id="late", dimacs=DIMACS, deadline_s=1e-12),
        ]
        outcomes, stats = run_batch(specs, workers=1)
        by_id = {o.job_id: o for o in outcomes}
        assert by_id["a"].state == "done"
        assert by_id["late"].state == "expired"
        assert stats.jobs_by_state == {"done": 1, "expired": 1}

    def test_cancel_queued_job(self, instance_texts):
        specs = [
            JobSpec(job_id=f"j{i}", dimacs=instance_texts[i], seed=i)
            for i in range(3)
        ]
        service = SolverService(ServiceConfig(workers=1, pool_mode="thread"))

        def on_outcome(outcome):
            # fires on the coordinator thread as the first job lands;
            # the last job is still queued behind the 1-slot pool.
            if outcome.job_id == "j0":
                assert service.cancel("j2") is True

        outcomes = service.run(specs, on_outcome=on_outcome)
        by_id = {o.job_id: o for o in outcomes}
        assert by_id["j0"].state == "done"
        assert by_id["j1"].state == "done"
        assert by_id["j2"].state == "cancelled"

    def test_cancel_unknown_job_is_false(self):
        service = SolverService(ServiceConfig(workers=1))
        assert service.cancel("ghost") is False

    def test_outcomes_in_submission_order_streaming_in_completion_order(
        self, mixed_specs
    ):
        streamed = []
        outcomes, _ = run_batch(
            mixed_specs[:4], workers=2, on_outcome=lambda o: streamed.append(o)
        )
        assert [o.job_id for o in outcomes] == [
            s.job_id for s in mixed_specs[:4]
        ]
        assert sorted(o.job_id for o in streamed) == sorted(
            o.job_id for o in outcomes
        )


class TestServiceObservability:
    def test_trace_and_metrics(self, tmp_path, instance_texts):
        trace_path = tmp_path / "service.jsonl"
        obs = Observability.tracing(str(trace_path), metrics=True)
        text = instance_texts[0]
        specs = [
            JobSpec(job_id="a", dimacs=text, seed=5),
            JobSpec(job_id="b", dimacs=text, seed=5),  # deduped
            JobSpec(job_id="c", dimacs=instance_texts[1], seed=5),
        ]
        outcomes, _ = run_batch(specs, workers=2, observability=obs)
        obs.close()

        records = read_trace(str(trace_path))
        spans = [r for r in records if r.get("type") == "span"]
        events = [r for r in records if r.get("type") == "event"]
        batch = [r for r in spans if r["name"] == "service.batch"]
        jobs = [r for r in spans if r["name"] == "service.job"]
        assert len(batch) == 1
        assert batch[0]["parent"] is None
        assert batch[0]["attrs"]["jobs"] == 3
        assert batch[0]["attrs"]["done"] == 2
        assert batch[0]["attrs"]["deduped"] == 1
        assert len(jobs) == 3
        for job in jobs:
            assert job["parent"] == batch[0]["id"]
            assert job["attrs"]["state"] in ("done", "deduped")
        assert sum(1 for e in events if e["name"] == "service.admit") == 3
        assert sum(1 for e in events if e["name"] == "service.dedup") == 1

        metrics = obs.metrics
        jobs_total = metrics.counter("hyqsat_service_jobs_total")
        assert jobs_total.labels(state="done").value == 2
        assert jobs_total.labels(state="deduped").value == 1
        assert (
            metrics.counter("hyqsat_service_dedup_hits_total").value == 1
        )
        assert metrics.counter("hyqsat_service_qpu_grants_total").value > 0
