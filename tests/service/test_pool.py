"""WorkerPool: the three execution modes behind one submit API."""

from __future__ import annotations

import pytest

from repro.service import POOL_MODES, WorkerPool


def square(x):
    return x * x


def boom():
    raise ValueError("boom")


class TestModes:
    @pytest.mark.parametrize("mode", POOL_MODES)
    def test_submit_returns_result(self, mode):
        with WorkerPool(workers=2, mode=mode) as pool:
            futures = [pool.submit(square, i) for i in range(5)]
            assert [f.result() for f in futures] == [0, 1, 4, 9, 16]

    @pytest.mark.parametrize("mode", ("inline", "thread"))
    def test_errors_surface_through_result(self, mode):
        with WorkerPool(workers=1, mode=mode) as pool:
            future = pool.submit(boom)
            with pytest.raises(ValueError, match="boom"):
                future.result()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            WorkerPool(mode="fibers")

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)


class TestLiveScheduling:
    def test_thread_and_inline_are_live(self):
        assert WorkerPool(mode="inline").live_scheduling
        pool = WorkerPool(mode="thread")
        assert pool.live_scheduling
        pool.shutdown()

    def test_process_is_replayed(self):
        pool = WorkerPool(mode="process")
        assert not pool.live_scheduling
        pool.shutdown()


class TestInlineFuture:
    def test_callbacks_fire_immediately(self):
        pool = WorkerPool(mode="inline")
        future = pool.submit(square, 3)
        fired = []
        future.add_done_callback(fired.append)
        assert fired == [future]
        assert future.done()
        assert future.cancel() is False
