"""JobSpec/JobOutcome schema, solve keys, and the worker entry point."""

from __future__ import annotations

import pytest

from repro.annealer import AnnealerDevice
from repro.resilience import ResilientDevice
from repro.service import JobOutcome, JobSpec, build_device, run_job

SAT_DIMACS = "p cnf 3 2\n1 2 3 0\n-1 2 3 0\n"
#: Same clauses, different clause order and literal order.
SAT_DIMACS_SHUFFLED = "p cnf 3 2\n3 2 -1 0\n2 1 3 0\n"


class TestJobSpecValidation:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            JobSpec(job_id="a")
        with pytest.raises(ValueError):
            JobSpec(job_id="a", path="x.cnf", dimacs=SAT_DIMACS)

    def test_rejects_unknown_priority(self):
        with pytest.raises(ValueError, match="priority"):
            JobSpec(job_id="a", dimacs=SAT_DIMACS, priority="urgent")

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            JobSpec(job_id="a", dimacs=SAT_DIMACS, deadline_s=0.0)

    def test_validates_fault_spec_eagerly(self):
        with pytest.raises(ValueError):
            JobSpec(job_id="a", dimacs=SAT_DIMACS, qa_faults="bogus=0.5")
        JobSpec(job_id="a", dimacs=SAT_DIMACS, qa_faults="timeout=0.5")

    def test_priority_rank_orders_classes(self):
        ranks = [
            JobSpec(job_id=p, dimacs=SAT_DIMACS, priority=p).priority_rank
            for p in ("interactive", "batch", "background")
        ]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == 3


class TestJobSpecJson:
    def test_round_trip_omits_defaults(self):
        spec = JobSpec(job_id="a", dimacs=SAT_DIMACS)
        line = spec.to_json()
        assert "qa_retries" not in line  # default, omitted
        assert JobSpec.from_json(line) == spec

    def test_round_trip_keeps_non_defaults(self):
        spec = JobSpec(
            job_id="a",
            path="x.cnf",
            seed=9,
            priority="interactive",
            qa_faults="timeout=0.5",
            qa_budget_us=100.0,
        )
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            JobSpec.from_json('{"id": "a", "path": "x", "bogus": 1}')

    def test_rejects_missing_id(self):
        with pytest.raises(ValueError, match="id"):
            JobSpec.from_json('{"path": "x"}')


class TestSolveKey:
    def test_clause_order_invariant(self):
        a = JobSpec(job_id="a", dimacs=SAT_DIMACS)
        b = JobSpec(job_id="b", dimacs=SAT_DIMACS_SHUFFLED)
        assert a.solve_key() == b.solve_key()

    def test_options_change_the_key(self):
        base = JobSpec(job_id="a", dimacs=SAT_DIMACS)
        for other in (
            JobSpec(job_id="b", dimacs=SAT_DIMACS, seed=1),
            JobSpec(job_id="b", dimacs=SAT_DIMACS, noise=True),
            JobSpec(job_id="b", dimacs=SAT_DIMACS, qa_faults="0.2"),
            JobSpec(job_id="b", dimacs=SAT_DIMACS, qa_budget_us=5.0),
            JobSpec(job_id="b", dimacs=SAT_DIMACS, no_resilience=True),
        ):
            assert base.solve_key() != other.solve_key()

    def test_key_is_stable_text(self):
        # hashlib-based, so stable across processes (unlike hash()).
        key = JobSpec(job_id="a", dimacs=SAT_DIMACS).solve_key()
        assert key == JobSpec(job_id="z", dimacs=SAT_DIMACS).solve_key()
        assert ":" in key


class TestJobOutcome:
    def test_json_round_trip(self):
        outcome = JobOutcome(
            job_id="a",
            status="sat",
            model=[1, -2, 3],
            iterations=5,
            conflicts=2,
            qa_calls=3,
            qpu_time_us=420.0,
        )
        again = JobOutcome.from_json(outcome.to_json())
        assert again == outcome

    def test_as_dedup_of_copies_solver_fields(self):
        primary = JobOutcome(
            job_id="p", status="sat", model=[1], iterations=7, qa_calls=2
        )
        twin = JobOutcome(job_id="d", wait_seconds=0.5).as_dedup_of(
            primary, "d"
        )
        assert twin.state == "deduped"
        assert twin.dedup_of == "p"
        assert twin.job_id == "d"
        assert twin.status == "sat"
        assert twin.model == [1]
        assert twin.iterations == 7
        assert twin.wait_seconds == 0.5
        assert twin.run_seconds == 0.0


class TestBuildDevice:
    def test_default_stack_is_resilient(self):
        device = build_device(JobSpec(job_id="a", dimacs=SAT_DIMACS))
        assert isinstance(device, ResilientDevice)

    def test_no_resilience_is_bare(self):
        device = build_device(
            JobSpec(job_id="a", dimacs=SAT_DIMACS, no_resilience=True)
        )
        assert isinstance(device, AnnealerDevice)


class TestRunJob:
    def test_solves_inline_dimacs(self):
        outcome = run_job(JobSpec(job_id="a", dimacs=SAT_DIMACS))
        assert outcome.state == "done"
        assert outcome.status == "sat"
        assert outcome.model is not None
        assert outcome.run_seconds > 0

    def test_classic_job(self):
        outcome = run_job(JobSpec(job_id="a", dimacs=SAT_DIMACS, classic=True))
        assert outcome.state == "done"
        assert outcome.status == "sat"
        assert outcome.qa_calls == 0

    def test_never_raises_on_bad_instance(self):
        outcome = run_job(JobSpec(job_id="a", path="/nonexistent.cnf"))
        assert outcome.state == "failed"
        assert outcome.error
        assert outcome.status is None

    def test_deterministic_per_spec(self):
        spec = JobSpec(job_id="a", dimacs=SAT_DIMACS, seed=3)
        first, second = run_job(spec), run_job(spec)
        assert first.model == second.model
        assert first.iterations == second.iterations
        assert first.qa_calls == second.qa_calls
