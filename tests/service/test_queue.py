"""JobQueue: priority order, deadlines, admission control, cancel."""

from __future__ import annotations

import pytest

from repro.service import AdmissionError, JobQueue, JobSpec

DIMACS = "p cnf 1 1\n1 0\n"


def spec(job_id: str, **kwargs) -> JobSpec:
    return JobSpec(job_id=job_id, dimacs=DIMACS, **kwargs)


def drain_ids(queue: JobQueue) -> list:
    ids = []
    while True:
        popped, _, _ = queue.pop(timeout=0)
        if popped is None:
            return ids
        ids.append(popped.job_id)


class TestOrdering:
    def test_strict_priority_between_classes(self):
        queue = JobQueue()
        queue.push(spec("bg", priority="background"))
        queue.push(spec("b", priority="batch"))
        queue.push(spec("i", priority="interactive"))
        assert drain_ids(queue) == ["i", "b", "bg"]

    def test_fifo_within_class(self):
        queue = JobQueue()
        for name in ("first", "second", "third"):
            queue.push(spec(name))
        assert drain_ids(queue) == ["first", "second", "third"]


class TestDeadlines:
    def test_expired_jobs_reported_not_returned(self):
        queue = JobQueue()
        queue.push(spec("dead", deadline_s=1.0), now=0.0)
        queue.push(spec("alive"), now=0.0)
        popped, expired, waited = queue.pop(timeout=0, now=5.0)
        assert popped.job_id == "alive"
        assert [s.job_id for s in expired] == ["dead"]
        assert waited == 5.0
        assert queue.stats.expired == 1

    def test_deadline_not_yet_passed(self):
        queue = JobQueue()
        queue.push(spec("ok", deadline_s=10.0), now=0.0)
        popped, expired, _ = queue.pop(timeout=0, now=5.0)
        assert popped.job_id == "ok"
        assert expired == []


class TestAdmission:
    def test_max_depth_rejects(self):
        queue = JobQueue(max_depth=1)
        queue.push(spec("a"))
        with pytest.raises(AdmissionError, match="full"):
            queue.push(spec("b"))
        assert queue.stats.rejected == 1

    def test_duplicate_id_rejects(self):
        queue = JobQueue()
        queue.push(spec("a"))
        with pytest.raises(AdmissionError, match="duplicate"):
            queue.push(spec("a"))

    def test_closed_queue_rejects(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(AdmissionError, match="closed"):
            queue.push(spec("a"))

    def test_pop_on_empty_closed_returns_none(self):
        queue = JobQueue()
        queue.close()
        assert queue.pop() == (None, [], 0.0)

    def test_pop_timeout_on_empty(self):
        queue = JobQueue()
        assert queue.pop(timeout=0) == (None, [], 0.0)


class TestCancel:
    def test_cancelled_jobs_are_skipped(self):
        queue = JobQueue()
        queue.push(spec("a"))
        queue.push(spec("b"))
        assert queue.cancel("a") is True
        assert len(queue) == 1
        assert drain_ids(queue) == ["b"]
        assert queue.stats.cancelled == 1

    def test_cancel_unknown_is_false(self):
        queue = JobQueue()
        assert queue.cancel("ghost") is False

    def test_cancel_twice_is_false(self):
        queue = JobQueue()
        queue.push(spec("a"))
        assert queue.cancel("a") is True
        assert queue.cancel("a") is False

    def test_cancel_after_pop_is_false(self):
        queue = JobQueue()
        queue.push(spec("a"))
        queue.pop(timeout=0)
        assert queue.cancel("a") is False


class TestInjectedClock:
    class FakeClock:
        """A settable monotonic clock (seconds)."""

        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

        def advance(self, seconds):
            self.now += seconds

    def test_deadline_expiry_on_the_injected_clock(self):
        clock = self.FakeClock()
        queue = JobQueue(clock=clock)
        queue.push(spec("slow", deadline_s=1.0))
        queue.push(spec("fast", deadline_s=10.0))
        clock.advance(5.0)
        popped, expired, waited = queue.pop(timeout=0)
        assert popped.job_id == "fast"
        assert [s.job_id for s in expired] == ["slow"]
        assert waited == 5.0
        assert queue.stats.expired == 1

    def test_no_expiry_before_the_clock_moves(self):
        clock = self.FakeClock()
        queue = JobQueue(clock=clock)
        queue.push(spec("a", deadline_s=0.5))
        popped, expired, waited = queue.pop(timeout=0)
        assert popped.job_id == "a"
        assert expired == []
        assert waited == 0.0
