"""ResultStore: claims, dedup, fulfilment, failure release."""

from __future__ import annotations

from repro.service import JobOutcome, ResultStore


def done(job_id: str) -> JobOutcome:
    return JobOutcome(job_id=job_id, state="done", status="sat", model=[1])


class TestClaims:
    def test_first_claim_is_primary(self):
        store = ResultStore()
        assert store.lookup_or_claim("k", "a") is None
        assert store.lookup_or_claim("k", "b") == "a"
        assert store.dedup_hits == 1

    def test_distinct_keys_do_not_collide(self):
        store = ResultStore()
        assert store.lookup_or_claim("k1", "a") is None
        assert store.lookup_or_claim("k2", "b") is None
        assert store.dedup_hits == 0


class TestFulfil:
    def test_done_outcome_is_cached(self):
        store = ResultStore()
        store.lookup_or_claim("k", "a")
        store.fulfil("k", done("a"))
        assert store.finished("k").job_id == "a"
        # later duplicates still resolve to the primary
        assert store.lookup_or_claim("k", "c") == "a"

    def test_failed_primary_releases_claim(self):
        store = ResultStore()
        store.lookup_or_claim("k", "a")
        store.fulfil("k", JobOutcome(job_id="a", state="failed", error="boom"))
        assert store.finished("k") is None
        # a fresh identical submission gets to retry as primary
        assert store.lookup_or_claim("k", "b") is None

    def test_fulfil_returns_waiters(self):
        store = ResultStore()
        store.lookup_or_claim("k", "a")
        fired = []
        assert store.add_waiter("k", "b", fired.append) is True
        waiters = store.fulfil("k", done("a"))
        assert [job_id for job_id, _ in waiters] == ["b"]

    def test_add_waiter_after_done_declined(self):
        store = ResultStore()
        store.lookup_or_claim("k", "a")
        store.fulfil("k", done("a"))
        assert store.add_waiter("k", "b", lambda _: None) is False


class TestRelease:
    def test_release_returns_orphans(self):
        store = ResultStore()
        store.lookup_or_claim("k", "a")
        store.add_waiter("k", "b", lambda _: None)
        orphans = store.release("k", "a")
        assert [job_id for job_id, _ in orphans] == ["b"]
        # key is free again
        assert store.lookup_or_claim("k", "c") is None

    def test_release_wrong_owner_is_noop(self):
        store = ResultStore()
        store.lookup_or_claim("k", "a")
        assert store.release("k", "not-a") == []
        assert store.lookup_or_claim("k", "b") == "a"


class TestEviction:
    def test_unbounded_store_never_evicts(self):
        store = ResultStore()
        for i in range(10):
            key = f"k{i}"
            store.lookup_or_claim(key, f"j{i}")
            store.fulfil(key, done(f"j{i}"))
        assert store.evictions == 0

    def test_oldest_entry_is_evicted_at_the_cap(self):
        store = ResultStore(max_entries=2)
        for i in range(3):
            key = f"k{i}"
            store.lookup_or_claim(key, f"j{i}")
            store.fulfil(key, done(f"j{i}"))
        assert store.evictions == 1
        assert store.finished("k0") is None
        assert store.finished("k1") is not None
        assert store.finished("k2") is not None
        # The evicted key's claim is released: a resubmission becomes
        # primary and re-solves instead of waiting forever.
        assert store.lookup_or_claim("k0", "fresh") is None

    def test_lookup_marks_entries_recently_used(self):
        store = ResultStore(max_entries=2)
        for i in range(2):
            key = f"k{i}"
            store.lookup_or_claim(key, f"j{i}")
            store.fulfil(key, done(f"j{i}"))
        # Touch k0 so k1 becomes the LRU entry.
        assert store.finished("k0") is not None
        store.lookup_or_claim("k2", "j2")
        store.fulfil("k2", done("j2"))
        assert store.finished("k1") is None
        assert store.finished("k0") is not None

    def test_max_entries_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            ResultStore(max_entries=0)
