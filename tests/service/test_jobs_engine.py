"""Engine threading through the service layer (JobSpec.engine)."""

import pytest

from repro.cdcl.fast import FastCdclSolver
from repro.cdcl.native import native_available
from repro.cdcl.solver import CdclSolver
from repro.service.jobs import JobSpec, build_solver

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernel"
)

DIMACS = "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n"


def spec(**kwargs):
    return JobSpec(job_id="j1", dimacs=DIMACS, **kwargs)


class TestSpec:
    def test_default_engine(self):
        assert spec().engine == "reference"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown CDCL engine"):
            spec(engine="turbo")

    def test_json_roundtrip(self):
        original = spec(engine="fast", classic=True)
        parsed = JobSpec.from_json(original.to_json())
        assert parsed.engine == "fast"
        assert parsed == original

    def test_default_engine_omitted_from_json(self):
        assert '"engine"' not in spec().to_json()

    def test_engine_not_in_dedup_key(self):
        """Engines are bit-identical, so either may serve the other's
        cached result — the dedup key must not split on engine."""
        assert spec(engine="fast").solve_key() == spec().solve_key()


class TestBuildSolver:
    def test_classic_reference(self):
        solver = build_solver(spec(classic=True))
        assert isinstance(solver, CdclSolver)

    @needs_native
    def test_classic_fast(self):
        solver = build_solver(spec(classic=True, engine="fast"))
        assert isinstance(solver, FastCdclSolver)

    @needs_native
    def test_hybrid_engine_threaded_to_config(self):
        solver = build_solver(spec(engine="fast"))
        assert solver.config.engine == "fast"

    @needs_native
    def test_classic_engines_bit_identical_through_service(self):
        results = {}
        for engine in ("reference", "fast"):
            result = build_solver(spec(classic=True, engine=engine)).solve()
            results[engine] = result
        ref, fast = results["reference"], results["fast"]
        assert ref.status == fast.status
        assert ref.stats.as_dict() == fast.stats.as_dict()
        if ref.model is not None:
            assert ref.model.frozen() == fast.model.frozen()
