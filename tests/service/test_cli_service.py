"""CLI surface of the service: submit/serve/batch, the batch↔solve
bit-identity acceptance check, suite --jobs, and Ctrl-C handling."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.observability import read_trace
from repro.service import JobOutcome


def read_results(path) -> dict:
    outcomes = [
        JobOutcome.from_json(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    return {o.job_id: o for o in outcomes}


def parse_solve_output(out: str) -> dict:
    """The solver fields a solo ``hyqsat solve`` prints."""
    fields = {"status": re.search(r"^s (\S+)", out, re.M).group(1).lower()}
    model = re.search(r"^v (.+) 0$", out, re.M)
    fields["model"] = (
        [int(v) for v in model.group(1).split()] if model else None
    )
    for name in ("iterations", "conflicts", "qa_calls"):
        fields[name] = int(re.search(rf"{name}=(\d+)", out).group(1))
    fields["qpu_time_us"] = float(
        re.search(r"qpu_time_us=([\d.]+)", out).group(1)
    )
    return fields


class TestBatchBitIdentity:
    """Acceptance: ``hyqsat batch --jobs 4`` over ≥ 8 mixed SAT/UNSAT
    instances is bit-identical, per fixed job seed, to serial
    ``hyqsat solve`` runs."""

    def test_batch_matches_serial_solve(self, cnf_dir, tmp_path, capsys):
        results_path = tmp_path / "results.jsonl"
        assert (
            main(
                [
                    "batch",
                    str(cnf_dir),
                    "--jobs",
                    "4",
                    "-o",
                    str(results_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        results = read_results(results_path)
        assert len(results) == 8
        assert {o.status for o in results.values()} == {"sat", "unsat"}

        paths = sorted(cnf_dir.glob("*.cnf"))
        for index, path in enumerate(paths):
            assert main(["solve", str(path), "--seed", str(index)]) in (0, 1)
            solo = parse_solve_output(capsys.readouterr().out)
            got = results[path.stem]
            assert got.state == "done"
            assert got.seed == index
            for name, want in solo.items():
                assert getattr(got, name) == want, (path.stem, name)


class TestSubmitServe:
    def test_submit_then_serve_with_dedup(self, cnf_dir, tmp_path, capsys):
        jobs_path = tmp_path / "jobs.jsonl"
        inst = str(cnf_dir / "inst0.cnf")
        assert main(["submit", inst, "--queue", str(jobs_path), "--seed", "7"]) == 0
        assert (
            main(
                [
                    "submit",
                    inst,
                    "--id",
                    "twin",
                    "--queue",
                    str(jobs_path),
                    "--seed",
                    "7",
                    "--priority",
                    "background",
                ]
            )
            == 0
        )
        capsys.readouterr()

        results_path = tmp_path / "results.jsonl"
        assert (
            main(
                [
                    "serve",
                    str(jobs_path),
                    "--jobs",
                    "2",
                    "-o",
                    str(results_path),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "dedup_hits=1" in err
        results = read_results(results_path)
        assert results["inst0-s7"].state == "done"
        assert results["twin"].state == "deduped"
        assert results["twin"].dedup_of == "inst0-s7"
        assert results["twin"].model == results["inst0-s7"].model

    def test_submit_writes_relative_paths_resolved_by_serve(
        self, cnf_dir, capsys
    ):
        # job file next to the instances, instance referenced by name
        jobs_path = cnf_dir / "jobs.jsonl"
        jobs_path.write_text('{"id": "rel", "path": "inst0.cnf"}\n')
        assert main(["serve", str(jobs_path)]) == 0
        captured = capsys.readouterr()
        line = json.loads(captured.out.splitlines()[0])
        assert line["state"] == "done"
        jobs_path.unlink()

    def test_serve_rejects_malformed_job_line(self, tmp_path, capsys):
        jobs_path = tmp_path / "jobs.jsonl"
        jobs_path.write_text('{"id": "a", "path": "x", "bogus": 1}\n')
        with pytest.raises(SystemExit, match="bogus"):
            main(["serve", str(jobs_path)])

    def test_serve_empty_source(self, tmp_path, capsys):
        jobs_path = tmp_path / "jobs.jsonl"
        jobs_path.write_text("# comment only\n")
        assert main(["serve", str(jobs_path)]) == 0
        assert "no jobs" in capsys.readouterr().err

    def test_batch_trace_has_service_spans(self, cnf_dir, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        results_path = tmp_path / "results.jsonl"
        assert (
            main(
                [
                    "batch",
                    str(cnf_dir),
                    "--jobs",
                    "2",
                    "-o",
                    str(results_path),
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        names = {
            r["name"]
            for r in read_trace(str(trace_path))
            if r.get("type") == "span"
        }
        assert names == {"service.batch", "service.job"}

    def test_batch_no_cnfs_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no \\*.cnf"):
            main(["batch", str(tmp_path)])


class TestSuiteJobs:
    """``hyqsat suite --jobs N`` must print the identical table."""

    def test_parallel_suite_equals_serial(self, capsys):
        argv = ["suite", "--benchmarks", "GC1", "--problems", "2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "Iteration reduction" in serial


class TestKeyboardInterrupt:
    """Ctrl-C prints partial stats and flushes telemetry, no traceback."""

    def test_solve_interrupt_flushes_trace(
        self, cnf_dir, tmp_path, capsys, monkeypatch
    ):
        from repro.core.hyqsat import HyQSatSolver

        def explode(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(HyQSatSolver, "solve", explode)
        trace_path = tmp_path / "trace.jsonl"
        rc = main(
            ["solve", str(cnf_dir / "inst0.cnf"), "--trace", str(trace_path)]
        )
        assert rc == 130
        out = capsys.readouterr().out
        assert "c interrupted" in out
        assert "c partial qa_calls=" in out
        assert f"c trace={trace_path}" in out
        # the flushed trace is a valid (if empty) trace file
        read_trace(str(trace_path))

    def test_solve_interrupt_flushes_metrics(
        self, cnf_dir, tmp_path, capsys, monkeypatch
    ):
        from repro.core.hyqsat import HyQSatSolver

        monkeypatch.setattr(
            HyQSatSolver,
            "solve",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        metrics_path = tmp_path / "out.prom"
        rc = main(
            [
                "solve",
                str(cnf_dir / "inst0.cnf"),
                "--metrics",
                str(metrics_path),
            ]
        )
        assert rc == 130
        assert metrics_path.exists()
        assert "hyqsat_qa_calls_total" in metrics_path.read_text()

    def test_suite_interrupt_prints_partial_table(self, capsys, monkeypatch):
        import repro.cli as cli

        real_cell = cli._suite_cell
        calls = []

        def flaky_cell(benchmark, index, seed):
            if len(calls) >= 1:
                raise KeyboardInterrupt
            calls.append((benchmark, index))
            return real_cell(benchmark, index, seed)

        monkeypatch.setattr(cli, "_suite_cell", flaky_cell)
        rc = main(["suite", "--benchmarks", "GC1", "--problems", "2"])
        assert rc == 130
        out = capsys.readouterr().out
        assert "c interrupted after 1/2 problems" in out
        assert "Iteration reduction" in out  # the partial table
