"""QpuScheduler: fair share, coalescing, shared budget, makespan model."""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.resilience import QaUnavailable
from repro.service import QpuScheduler, ScheduledDevice, simulate_makespan

KEY_A = ("devA", 1, 1, 1.0, ((), ()))
KEY_B = ("devB", 1, 1, 1.0, ((), ()))
KEY_C = ("devC", 1, 1, 1.0, ((), ()))


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.001)


class TestLease:
    def test_idle_acquire_grants_immediately(self):
        sched = QpuScheduler()
        token = sched.acquire("a", KEY_A, 100.0)
        sched.release(token, 140.0)
        assert sched.stats.grants == 1
        assert sched.stats.busy_us == 140.0
        assert sched.stats.spent_by_job == {"a": 140.0}

    def test_release_without_grant_raises(self):
        sched = QpuScheduler()
        bogus = SimpleNamespace(job_id="x", key=KEY_A)
        with pytest.raises(RuntimeError):
            sched.release(bogus, 0.0)


class TestFairShare:
    def test_least_spent_job_granted_first(self):
        sched = QpuScheduler()
        sched.replay("rich", 1, 1000.0)  # bias: rich has spent a lot
        holder = sched.acquire("holder", KEY_C, 0.0)

        order = []

        def worker(job_id, key):
            token = sched.acquire(job_id, key, 0.0)
            order.append(job_id)
            sched.release(token, 0.0)

        # rich queues FIRST (lower seq) but poor must still win.
        rich = threading.Thread(target=worker, args=("rich", KEY_A))
        rich.start()
        wait_for(lambda: len(sched._waiters) == 1)
        poor = threading.Thread(target=worker, args=("poor", KEY_B))
        poor.start()
        wait_for(lambda: len(sched._waiters) == 2)

        sched.release(holder, 0.0)
        rich.join(timeout=5)
        poor.join(timeout=5)
        assert order == ["poor", "rich"]


class TestCoalescing:
    def test_identical_requests_share_one_window(self):
        sched = QpuScheduler()
        holder = sched.acquire("holder", KEY_C, 0.0)

        done = []

        def worker(job_id):
            token = sched.acquire(job_id, KEY_A, 100.0)
            sched.release(token, 140.0)
            done.append(job_id)

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        wait_for(lambda: len(sched._waiters) == 2)
        sched.release(holder, 0.0)
        for t in threads:
            t.join(timeout=5)

        assert sorted(done) == ["a", "b"]
        # holder + ONE coalesced window, not three grants
        assert sched.stats.grants == 2
        assert sched.stats.coalesced == 1
        # the shared window is billed once to the timeline...
        assert sched.stats.busy_us == 140.0
        # ...but each member individually for fair share
        assert sched.stats.spent_by_job["a"] == 140.0
        assert sched.stats.spent_by_job["b"] == 140.0

    def test_different_keys_do_not_coalesce(self):
        sched = QpuScheduler()
        token = sched.acquire("a", KEY_A, 0.0)
        sched.release(token, 10.0)
        token = sched.acquire("b", KEY_B, 0.0)
        sched.release(token, 10.0)
        assert sched.stats.grants == 2
        assert sched.stats.coalesced == 0
        assert sched.stats.busy_us == 20.0


class TestSharedBudget:
    def test_over_budget_acquire_is_refused(self):
        sched = QpuScheduler(budget_us=100.0)
        with pytest.raises(QaUnavailable) as excinfo:
            sched.acquire("a", KEY_A, 200.0)
        assert excinfo.value.reason == "budget_exhausted"
        assert excinfo.value.persistent
        assert sched.stats.budget_denied == 1

    def test_budget_tracks_billed_time(self):
        sched = QpuScheduler(budget_us=100.0)
        token = sched.acquire("a", KEY_A, 50.0)
        sched.release(token, 60.0)
        assert sched.budget_remaining_us() == pytest.approx(40.0)
        with pytest.raises(QaUnavailable):
            sched.acquire("a", KEY_B, 50.0)

    def test_unlimited_budget(self):
        sched = QpuScheduler()
        assert sched.budget_remaining_us() == float("inf")


class TestReplay:
    def test_replay_folds_into_ledger(self):
        sched = QpuScheduler()
        sched.replay("a", 3, 420.0)
        sched.replay("a", 2, 280.0)
        assert sched.stats.grants == 5
        assert sched.stats.busy_us == 700.0
        assert sched.stats.spent_by_job == {"a": 700.0}


class _FakeTiming:
    def total_us(self, reads):
        return 100.0


class _FakeDevice:
    def __init__(self, fail=False):
        self.seed = 7
        self._call_count = 0
        self.timing = _FakeTiming()
        self.total_modelled_us = 0.0
        self.fail = fail

    def run(self, request):
        self._call_count += 1
        self.total_modelled_us += 140.0
        if self.fail:
            raise RuntimeError("device exploded")
        return "samples"


def _request():
    return SimpleNamespace(
        objective=SimpleNamespace(offset=0.0, linear={}, quadratic={}),
        num_reads=1,
        energy_scale=1.0,
    )


class TestScheduledDevice:
    def test_run_goes_through_the_scheduler(self):
        sched = QpuScheduler()
        device = ScheduledDevice(_FakeDevice(), sched, "job")
        assert device.run(_request()) == "samples"
        assert sched.stats.grants == 1
        assert sched.stats.busy_us == 140.0
        assert sched.stats.spent_by_job == {"job": 140.0}

    def test_attribute_delegation(self):
        device = ScheduledDevice(_FakeDevice(), QpuScheduler(), "job")
        assert device.seed == 7

    def test_release_happens_even_on_device_fault(self):
        sched = QpuScheduler()
        device = ScheduledDevice(_FakeDevice(fail=True), sched, "job")
        with pytest.raises(RuntimeError):
            device.run(_request())
        # billed (hardware charges faulted calls) and the lease is free
        assert sched.stats.busy_us == 140.0
        token = sched.acquire("other", KEY_B, 0.0)
        sched.release(token, 0.0)


class TestSimulateMakespan:
    def test_cpu_bound_jobs_scale_with_workers(self):
        profiles = [(1.0, 0, 0.0)] * 4
        assert simulate_makespan(profiles, 1) == pytest.approx(4.0)
        assert simulate_makespan(profiles, 4) == pytest.approx(1.0)

    def test_qpu_bound_jobs_serialise(self):
        profiles = [(0.0, 1, 1e6)] * 2  # 1 modelled second each, pure QPU
        assert simulate_makespan(profiles, 2) == pytest.approx(2.0)

    def test_mixed_jobs_overlap_cpu_with_qpu(self):
        profiles = [(1.0, 1, 1e5)] * 2
        serial = simulate_makespan(profiles, 1)
        parallel = simulate_makespan(profiles, 2)
        assert parallel < serial
        # QPU lane still serialises its 0.1s segments
        assert parallel >= 1.0 + 0.1

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            simulate_makespan([], 0)
