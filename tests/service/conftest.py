"""Shared fixtures for the solver-service tests.

Eight uf20-91 instances (near the SAT/UNSAT threshold, so the set is
mixed) and the solo ``run_job`` outcomes every bit-identity test
compares against — computed once per session, since a solo run *is*
the reference semantics (same construction path as ``hyqsat solve``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.sat import to_dimacs
from repro.service import JobSpec, run_job

#: The outcome fields that must be bit-identical between a service run
#: and a solo solve of the same spec.
SOLVER_FIELDS = (
    "status",
    "model",
    "iterations",
    "conflicts",
    "qa_calls",
    "qpu_time_us",
    "qa_retries",
    "qa_failures",
    "breaker_state",
    "qa_budget_spent_us",
    "degraded",
)


def solver_view(outcome) -> dict:
    """The bit-identity-relevant slice of a JobOutcome."""
    return {name: getattr(outcome, name) for name in SOLVER_FIELDS}


@pytest.fixture(scope="session")
def instance_texts():
    """Eight deterministic uf20-91 instances as DIMACS text."""
    return [
        to_dimacs(random_3sat(20, 91, np.random.default_rng(100 + i)))
        for i in range(8)
    ]


@pytest.fixture(scope="session")
def mixed_specs(instance_texts):
    """One job per instance, seeded by index."""
    return [
        JobSpec(job_id=f"j{i}", dimacs=text, seed=i)
        for i, text in enumerate(instance_texts)
    ]


@pytest.fixture(scope="session")
def solo_outcomes(mixed_specs):
    """Reference outcomes: each spec run solo, no scheduler."""
    return {spec.job_id: run_job(spec) for spec in mixed_specs}


@pytest.fixture(scope="session")
def cnf_dir(tmp_path_factory, instance_texts):
    """The instances as a *.cnf directory (the ``hyqsat batch`` input)."""
    root = tmp_path_factory.mktemp("instances")
    for i, text in enumerate(instance_texts):
        (root / f"inst{i}.cnf").write_text(text)
    return root
