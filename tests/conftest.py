"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.sat.cnf import CNF, Clause
from repro.topology.chimera import ChimeraGraph


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_hardware() -> ChimeraGraph:
    """A 4x4 Chimera lattice (128 qubits) for fast embedding tests."""
    return ChimeraGraph(4, 4, 4)


@pytest.fixture(scope="session")
def c16_hardware() -> ChimeraGraph:
    """The D-Wave 2000Q-sized lattice."""
    return ChimeraGraph(16, 16, 4)


@pytest.fixture
def tiny_sat_formula() -> CNF:
    """A small satisfiable 3-SAT formula (the paper's Figure 2 example)."""
    return CNF(
        [Clause([1, 2, 3]), Clause([2, -3, 4])],
        num_vars=4,
    )


@pytest.fixture
def tiny_unsat_formula() -> CNF:
    """The smallest interesting unsatisfiable formula."""
    return CNF(
        [
            Clause([1, 2]),
            Clause([1, -2]),
            Clause([-1, 2]),
            Clause([-1, -2]),
        ],
        num_vars=2,
    )


def make_random_3sat(num_vars: int, num_clauses: int, seed: int) -> CNF:
    """Deterministic random instance helper for parametrised tests."""
    return random_3sat(num_vars, num_clauses, np.random.default_rng(seed))
