"""Service-level cache integration: bit-identical replay through
run_batch, subsumption certificates, warm starts, and the
no-double-billing guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.sat import to_dimacs
from repro.service import JobSpec
from repro.service.service import run_batch

from tests.service.conftest import solver_view


@pytest.fixture(scope="module")
def specs():
    """Four deterministic uf20-91 instances (mixed sat/unsat)."""
    return [
        JobSpec(
            job_id=f"j{i}",
            dimacs=to_dimacs(random_3sat(20, 91, np.random.default_rng(100 + i))),
            seed=i,
        )
        for i in range(4)
    ]


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "cache.sqlite")


class TestExactReplayThroughService:
    def test_second_batch_is_bit_identical_and_all_cached(
        self, specs, db_path
    ):
        fresh, fresh_stats = run_batch(specs, cache_path=db_path)
        cached, cached_stats = run_batch(specs, cache_path=db_path)

        assert fresh_stats.cache_hits == 0
        assert fresh_stats.cache_misses == len(specs)
        assert cached_stats.cache_hits == len(specs)
        assert cached_stats.cache_misses == 0

        for a, b in zip(fresh, cached):
            assert solver_view(a) == solver_view(b)
            assert b.cached is True and b.cache_kind == "exact"
            assert not a.cached

    def test_hits_never_bill_modelled_qpu_time(self, specs, db_path):
        _, fresh_stats = run_batch(
            specs, cache_path=db_path, qpu_budget_us=10_000_000.0
        )
        _, cached_stats = run_batch(
            specs, cache_path=db_path, qpu_budget_us=10_000_000.0
        )
        assert fresh_stats.qpu_grants > 0
        assert cached_stats.qpu_grants == 0
        assert cached_stats.qpu_busy_us == 0.0

    def test_cache_survives_across_batches_with_process_pool(
        self, specs, db_path
    ):
        fresh, _ = run_batch(specs, cache_path=db_path)
        cached, stats = run_batch(
            specs, workers=2, pool_mode="process", cache_path=db_path
        )
        assert stats.cache_hits == len(specs)
        for a, b in zip(fresh, cached):
            assert solver_view(a) == solver_view(b)

    def test_no_cache_means_no_counters(self, specs):
        _, stats = run_batch(specs[:1])
        assert stats.cache_hits == 0 and stats.cache_misses == 0

    def test_learned_clauses_never_leak_into_outcomes(self, specs, db_path):
        fresh, _ = run_batch(specs, cache_path=db_path)
        assert all(o.learned is None for o in fresh)


class TestSubsumptionThroughService:
    def test_option_change_gets_certificate(self, specs, db_path):
        fresh, _ = run_batch(specs, cache_path=db_path)
        reseeded = [
            JobSpec(job_id=s.job_id, dimacs=s.dimacs, seed=s.seed + 50)
            for s in specs
        ]
        certs, stats = run_batch(reseeded, cache_path=db_path)
        assert stats.cache_subsumption_hits == len(specs)
        for a, b in zip(fresh, certs):
            assert a.status == b.status
            assert b.cached and b.cache_kind in ("model", "unsat")
            assert b.iterations == 0 and b.conflicts == 0
            assert b.qa_calls == 0 and b.qpu_time_us == 0.0

    def test_superset_of_unsat_served_free(self, specs, db_path):
        fresh, _ = run_batch(specs, cache_path=db_path)
        unsat = [
            (spec, outcome)
            for spec, outcome in zip(specs, fresh)
            if outcome.status == "unsat"
        ]
        assert unsat, "fixture set must mix sat and unsat"
        spec, _ = unsat[0]
        extended = spec.dimacs.replace(
            "p cnf 20 91", "p cnf 20 92"
        ) + "1 2 3 0\n"
        certs, stats = run_batch(
            [JobSpec(job_id="super", dimacs=extended, seed=9)],
            cache_path=db_path,
        )
        assert certs[0].status == "unsat"
        assert certs[0].cached and certs[0].cache_kind == "unsat"
        assert stats.cache_subsumption_hits == 1


class TestWarmStartThroughService:
    def test_near_miss_is_warm_started(self, specs, db_path):
        fresh, _ = run_batch(specs, cache_path=db_path)
        sat = [
            (spec, outcome)
            for spec, outcome in zip(specs, fresh)
            if outcome.status == "sat"
        ]
        assert sat, "fixture set must mix sat and unsat"
        spec, _ = sat[0]
        # A strict superset the subsumption layer cannot certify: add
        # a clause the cached model leaves unsatisfied but that the
        # formula may still satisfy another way.
        base_lines = spec.dimacs.strip().splitlines()
        model = [o for o in fresh if o.job_id == spec.job_id][0].model
        blocker = " ".join(str(-lit) for lit in model[:3]) + " 0"
        extended = "\n".join(
            ["p cnf 20 92"] + base_lines[1:] + [blocker]
        ) + "\n"
        outcomes, stats = run_batch(
            [JobSpec(job_id="near", dimacs=extended, seed=3)],
            cache_path=db_path,
        )
        outcome = outcomes[0]
        assert outcome.state == "done"
        assert not outcome.cached
        assert outcome.warm_clauses and outcome.warm_clauses > 0
        assert stats.cache_warm_starts == 1

    def test_warm_started_answer_matches_cold_solve_status(
        self, specs, db_path
    ):
        fresh, _ = run_batch(specs, cache_path=db_path)
        spec = specs[0]
        extended = spec.dimacs.replace(
            "p cnf 20 91", "p cnf 20 92"
        ) + "1 -2 3 0\n"
        near = JobSpec(job_id="near", dimacs=extended, seed=5)
        warm, _ = run_batch([near], cache_path=db_path)
        cold, _ = run_batch([near])
        assert warm[0].status == cold[0].status
        if warm[0].status == "sat":
            from repro.cache import model_satisfies

            assert model_satisfies(near.load_formula(), warm[0].model)
