"""CLI surface of the persistent cache: --cache-db on batch, the
--no-cache opt-out, --store-cap defaulting, and the ``hyqsat cache``
maintenance subcommands."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.cli import build_parser, main
from repro.sat import to_dimacs
from repro.service import JobOutcome
from repro.service.service import DEFAULT_STORE_CAP

#: Outcome fields that must replay bit-identically from the cache.
SOLVER_FIELDS = (
    "status", "model", "iterations", "conflicts",
    "qa_calls", "qpu_time_us", "seed",
)


@pytest.fixture
def cnf_dir(tmp_path):
    root = tmp_path / "instances"
    root.mkdir()
    for i in range(3):
        text = to_dimacs(random_3sat(20, 91, np.random.default_rng(100 + i)))
        (root / f"inst{i}.cnf").write_text(text)
    return root


def run_batch_cli(cnf_dir, tmp_path, capsys, name, *extra):
    out_path = tmp_path / f"{name}.jsonl"
    assert main(["batch", str(cnf_dir), "-o", str(out_path), *extra]) == 0
    console = capsys.readouterr()
    outcomes = [
        JobOutcome.from_json(line)
        for line in out_path.read_text().splitlines()
        if line.strip()
    ]
    return {o.job_id: o for o in outcomes}, console.out + console.err


class TestBatchFlags:
    def test_store_cap_defaults_from_service_config(self):
        args = build_parser().parse_args(["batch", "dir"])
        assert args.store_cap == DEFAULT_STORE_CAP
        serve_args = build_parser().parse_args(["serve", "queue"])
        assert serve_args.store_cap == DEFAULT_STORE_CAP

    def test_cache_round_trip_is_bit_identical(
        self, cnf_dir, tmp_path, capsys
    ):
        db = str(tmp_path / "cache.sqlite")
        fresh, out1 = run_batch_cli(
            cnf_dir, tmp_path, capsys, "fresh", "--cache-db", db
        )
        cached, out2 = run_batch_cli(
            cnf_dir, tmp_path, capsys, "cached", "--cache-db", db
        )
        assert "cache_misses=3" in out1 and "cache_hits=0" in out1
        assert "cache_hits=3" in out2 and "cache_misses=0" in out2
        for job_id, outcome in fresh.items():
            replay = cached[job_id]
            assert replay.cached is True
            for name in SOLVER_FIELDS:
                assert getattr(replay, name) == getattr(outcome, name)

    def test_no_cache_ignores_cache_db(self, cnf_dir, tmp_path, capsys):
        db = str(tmp_path / "cache.sqlite")
        _, out = run_batch_cli(
            cnf_dir, tmp_path, capsys, "off",
            "--cache-db", db, "--no-cache",
        )
        assert "cache_hits=" not in out

    def test_no_cache_summary_absent_without_cache_db(
        self, cnf_dir, tmp_path, capsys
    ):
        _, out = run_batch_cli(cnf_dir, tmp_path, capsys, "plain")
        assert "cache_hits=" not in out


class TestCacheSubcommands:
    @pytest.fixture
    def populated_db(self, cnf_dir, tmp_path, capsys):
        db = str(tmp_path / "cache.sqlite")
        run_batch_cli(cnf_dir, tmp_path, capsys, "seed", "--cache-db", db)
        return db

    def test_stats(self, populated_db, capsys):
        assert main(["cache", "stats", populated_db]) == 0
        out = capsys.readouterr().out
        assert "c results=3" in out
        assert "c instances=3" in out

    def test_stats_json(self, populated_db, capsys):
        assert main(["cache", "stats", populated_db, "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["results"] == 3
        assert info["path"] == populated_db

    def test_gc_applies_cap(self, populated_db, capsys):
        assert main(["cache", "gc", populated_db, "--cap", "1"]) == 0
        out = capsys.readouterr().out
        assert "c evicted=" in out and "remaining=1" in out

    def test_export_jsonl(self, populated_db, tmp_path, capsys):
        out_path = tmp_path / "dump.jsonl"
        assert (
            main(["cache", "export", populated_db, "-o", str(out_path)])
            == 0
        )
        rows = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
            if line.strip()
        ]
        assert len(rows) == 3
        assert all("solve_key" in row and "outcome" in row for row in rows)

    def test_missing_db_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "stats", str(tmp_path / "absent.sqlite")])
