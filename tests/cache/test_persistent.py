"""PersistentResultStore unit tests: exact replay, eviction policy,
restart survival, and the maintenance/introspection surface."""

from __future__ import annotations

import pytest

from repro.cache import CacheStats, PersistentResultStore
from repro.service import JobSpec

from tests.cache.conftest import (
    SAT_DIMACS,
    UNSAT_DIMACS,
    done_outcome,
    record_solve,
    spec_for,
)


class TestExactReplay:
    def test_round_trip_is_bit_identical(self, store):
        spec, key, original = record_solve(
            store, SAT_DIMACS, "sat", model=[1, 2, 3]
        )
        hit = store.lookup(key, spec, spec.load_formula())
        assert hit is not None
        assert hit.cached is True and hit.cache_kind == "exact"
        for name in ("status", "model", "iterations", "conflicts", "seed"):
            assert getattr(hit, name) == getattr(original, name)
        assert hit.run_seconds == 0.0
        assert store.stats.hits == 1 and store.stats.misses == 0

    def test_hit_takes_requesting_job_id(self, store):
        _, key, _ = record_solve(store, SAT_DIMACS, "sat", model=[1, 2, 3])
        other = spec_for(SAT_DIMACS, job_id="someone-else")
        hit = store.lookup(key, other, other.load_formula())
        assert hit.job_id == "someone-else"
        assert hit.dedup_of is None

    def test_unknown_key_is_a_miss(self, store):
        spec = spec_for(SAT_DIMACS)
        assert store.lookup("nope", spec, spec.load_formula()) is None
        assert store.stats.misses == 1

    def test_unfinished_outcomes_are_not_recorded(self, store):
        spec = spec_for(SAT_DIMACS)
        formula = spec.load_formula()
        key = spec.solve_key(formula)
        failed = done_outcome(spec)
        failed.state = "failed"
        store.record(key, formula, failed)
        assert store.entry_count() == 0

    def test_cached_outcomes_are_never_re_recorded(self, store):
        spec = spec_for(SAT_DIMACS)
        formula = spec.load_formula()
        key = spec.solve_key(formula)
        replay = done_outcome(spec, model=[1, 2, 3])
        replay.cached = True
        store.record(key, formula, replay)
        assert store.entry_count() == 0

    def test_warm_started_outcome_skips_results_table(self, store):
        """A warm-started solve has foreign clauses in its counters,
        so its outcome must not be replayed as an exact hit — but its
        sat/unsat answer still feeds the instance index."""
        spec = spec_for(SAT_DIMACS)
        formula = spec.load_formula()
        key = spec.solve_key(formula)
        outcome = done_outcome(
            spec, status="sat", model=[1, 2, 3], warm_clauses=4
        )
        store.record(key, formula, outcome)
        assert store.entry_count() == 0
        assert store.describe()["instances"] == 1


class TestEviction:
    def test_lru_cap(self, tmp_path):
        with PersistentResultStore(
            str(tmp_path / "c.sqlite"), max_entries=2
        ) as store:
            for index, dimacs in enumerate(
                (SAT_DIMACS, UNSAT_DIMACS, "p cnf 2 1\n1 2 0\n")
            ):
                spec = spec_for(dimacs, seed=index)
                formula = spec.load_formula()
                store.record(
                    spec.solve_key(formula), formula, done_outcome(spec)
                )
            assert store.entry_count() == 2
            assert store.stats.evictions == 1
            # The first-recorded (least recently hit) entry went.
            first = spec_for(SAT_DIMACS, seed=0)
            formula = first.load_formula()
            assert (
                store.lookup(first.solve_key(formula), first, formula)
                is None
            )

    def test_ttl_expiry(self, tmp_path):
        with PersistentResultStore(
            str(tmp_path / "c.sqlite"), ttl_s=60.0
        ) as store:
            spec, key, _ = record_solve(
                store, SAT_DIMACS, "sat", model=[1, 2, 3]
            )
            # Rewind the entry's clock past the TTL.
            with store._db:
                store._db.execute(
                    "UPDATE results SET last_hit_s = last_hit_s - 3600"
                )
            hit = store.lookup(key, spec, spec.load_formula())
            assert store.stats.evictions == 1
            assert store.entry_count() == 0
            # The replayable result is gone; the instance certificate
            # is timeless and may still answer via subsumption.
            assert hit is None or hit.cache_kind != "exact"

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PersistentResultStore(str(tmp_path / "a.sqlite"), max_entries=0)
        with pytest.raises(ValueError):
            PersistentResultStore(str(tmp_path / "b.sqlite"), ttl_s=0.0)


class TestRestartSurvival:
    def test_hit_after_reopen(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        with PersistentResultStore(path) as store:
            spec, key, original = record_solve(
                store, SAT_DIMACS, "sat", model=[1, 2, 3]
            )
        with PersistentResultStore(path) as reopened:
            hit = reopened.lookup(key, spec, spec.load_formula())
            assert hit is not None and hit.cached
            assert hit.model == original.model
            assert hit.iterations == original.iterations

    def test_stats_are_per_instance(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        with PersistentResultStore(path) as store:
            spec, key, _ = record_solve(
                store, SAT_DIMACS, "sat", model=[1, 2, 3]
            )
            store.lookup(key, spec, spec.load_formula())
            assert store.stats.hits == 1
        with PersistentResultStore(path) as reopened:
            assert reopened.stats == CacheStats()
            # ...but lifetime hit counts live in the DB.
            assert reopened.describe()["lifetime_hits"] == 1


class TestMaintenance:
    def test_describe_shape(self, store):
        record_solve(store, SAT_DIMACS, "sat", model=[1, 2, 3])
        info = store.describe()
        assert info["results"] == 1
        assert info["instances"] == 1
        assert info["clause_banks"] == 0
        assert info["db_bytes"] > 0
        assert info["path"] == store.path

    def test_export_rows(self, store):
        _, key, _ = record_solve(store, SAT_DIMACS, "sat", model=[1, 2, 3])
        rows = list(store.export_rows())
        assert len(rows) == 1
        assert rows[0]["solve_key"] == key
        assert rows[0]["outcome"]["model"] == [1, 2, 3]
        assert rows[0]["hits"] == 0

    def test_gc_applies_overrides_and_drops_orphans(self, store):
        for index, (dimacs, status, model) in enumerate(
            ((SAT_DIMACS, "sat", [1, 2, 3]), (UNSAT_DIMACS, "unsat", None))
        ):
            spec = spec_for(dimacs, seed=index)
            formula = spec.load_formula()
            store.record(
                spec.solve_key(formula),
                formula,
                done_outcome(spec, status=status, model=model),
            )
        dropped = store.gc(max_entries=1)
        assert dropped >= 1
        assert store.entry_count() == 1
        info = store.describe()
        # Orphaned instance rows went with their results row.
        assert info["instances"] == 1

    def test_learned_clauses_never_stored_in_results_payload(self, store):
        spec = spec_for(SAT_DIMACS)
        formula = spec.load_formula()
        key = spec.solve_key(formula)
        outcome = done_outcome(
            spec, status="sat", model=[1, 2, 3], learned=[[1, 2], [2, 3]]
        )
        store.record(key, formula, outcome)
        rows = list(store.export_rows())
        assert rows[0]["outcome"].get("learned") is None
        assert store.describe()["clause_banks"] == 1
