"""Crash survival: a cache populated by a process that dies on
SIGKILL — no close(), no WAL checkpoint — must serve exact hits to the
next process without re-solving."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np

from repro.benchgen.random_ksat import random_3sat
from repro.sat import to_dimacs
from repro.service import JobSpec
from repro.service.service import run_batch

from tests.service.conftest import solver_view

#: The populator solves, reports, then hangs until SIGKILL.
POPULATE_SCRIPT = textwrap.dedent(
    """
    import json, sys, time
    from repro.service import JobSpec
    from repro.service.service import run_batch

    cnf_dir, db_path = sys.argv[1], sys.argv[2]
    from pathlib import Path
    specs = [
        JobSpec(job_id=path.stem, path=str(path), seed=index)
        for index, path in enumerate(sorted(Path(cnf_dir).glob("*.cnf")))
    ]
    outcomes, stats = run_batch(specs, cache_path=db_path)
    print(json.dumps({o.job_id: o.as_dict() for o in outcomes}), flush=True)
    time.sleep(600)  # hold the connection open until SIGKILL
    """
)


def test_hit_after_sigkill(tmp_path):
    cnf_dir = tmp_path / "instances"
    cnf_dir.mkdir()
    for i in range(3):
        text = to_dimacs(random_3sat(20, 91, np.random.default_rng(100 + i)))
        (cnf_dir / f"inst{i}.cnf").write_text(text)
    db_path = tmp_path / "cache.sqlite"

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", POPULATE_SCRIPT, str(cnf_dir), str(db_path)],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        fresh = json.loads(line)
        assert set(fresh) == {"inst0", "inst1", "inst2"}
        # The populator is still alive: its SQLite connection was
        # never closed, the WAL never checkpointed.
        assert proc.poll() is None
        proc.send_signal(signal.SIGKILL)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(30)

    # A fresh process (this one) must get exact hits, not re-solves.
    specs = [
        JobSpec(job_id=f"inst{i}", path=str(cnf_dir / f"inst{i}.cnf"), seed=i)
        for i in range(3)
    ]
    start = time.perf_counter()
    cached, stats = run_batch(specs, cache_path=str(db_path))
    elapsed = time.perf_counter() - start
    assert stats.cache_hits == 3 and stats.cache_misses == 0
    for outcome in cached:
        assert outcome.cached is True and outcome.cache_kind == "exact"
        before = fresh[outcome.job_id]
        for name, value in solver_view(outcome).items():
            assert value == before.get(name), name
    # Sanity: serving 3 uf20-91 hits is far faster than solving them.
    assert elapsed < 30.0
