"""Subsumption-layer tests: certificate transfer across solve options,
subset/superset serving, soundness of every served answer, and the
clause-bank warm-start donor selection."""

from __future__ import annotations

import numpy as np

from repro.benchgen.random_ksat import random_3sat
from repro.cache import (
    PersistentResultStore,
    clause_signatures,
    model_completed,
    model_satisfies,
    signature_mask,
    sigs_subset,
)
from repro.sat import to_dimacs

from tests.cache.conftest import (
    SAT_DIMACS,
    SAT_SUBSET_DIMACS,
    SAT_SUPERSET_DIMACS,
    UNSAT_DIMACS,
    UNSAT_SUPERSET_DIMACS,
    done_outcome,
    record_solve,
    spec_for,
)


def lookup(store, dimacs, **spec_kwargs):
    spec = spec_for(dimacs, **spec_kwargs)
    formula = spec.load_formula()
    return store.lookup(spec.solve_key(formula), spec, formula), formula


class TestSignatures:
    def test_signatures_ignore_clause_and_literal_order(self):
        spec_a = spec_for("p cnf 3 2\n1 2 0\n2 3 0\n")
        spec_b = spec_for("p cnf 3 2\n3 2 0\n2 1 0\n")
        assert clause_signatures(spec_a.load_formula()) == clause_signatures(
            spec_b.load_formula()
        )

    def test_subset_relation(self):
        small = clause_signatures(
            spec_for(SAT_SUBSET_DIMACS).load_formula()
        )
        big = clause_signatures(spec_for(SAT_DIMACS).load_formula())
        assert sigs_subset(small, big)
        assert not sigs_subset(big, small)

    def test_mask_is_a_sound_prefilter(self):
        small = clause_signatures(
            spec_for(SAT_SUBSET_DIMACS).load_formula()
        )
        big = clause_signatures(spec_for(SAT_DIMACS).load_formula())
        small_mask, big_mask = signature_mask(small), signature_mask(big)
        assert (small_mask & big_mask) == small_mask
        # Fits SQLite's signed 64-bit INTEGER.
        assert 0 <= big_mask < (1 << 63)

    def test_model_completion_and_check(self):
        formula = spec_for(SAT_DIMACS).load_formula()
        model = model_completed([-1, 2], formula.num_vars)
        assert len(model) == formula.num_vars
        assert model_satisfies(formula, model)
        assert not model_satisfies(formula, [-1, -2, -3])


class TestCertificateTransfer:
    def test_same_formula_different_options(self, store):
        record_solve(store, SAT_DIMACS, "sat", model=[1, 2, 3])
        hit, _ = lookup(store, SAT_DIMACS, seed=99)
        assert hit is not None
        assert hit.cache_kind == "model" and hit.status == "sat"
        assert hit.iterations == 0 and hit.conflicts == 0
        assert store.stats.subsumption_hits == {"model": 1}

    def test_unsat_transfers_across_options(self, store):
        record_solve(store, UNSAT_DIMACS, "unsat")
        hit, _ = lookup(store, UNSAT_DIMACS, seed=7)
        assert hit is not None and hit.status == "unsat"
        assert hit.cache_kind == "unsat" and hit.model is None


class TestSubsetSuperset:
    def test_subset_of_sat_served_from_model(self, store):
        record_solve(store, SAT_DIMACS, "sat", model=[1, 2, 3])
        hit, formula = lookup(store, SAT_SUBSET_DIMACS)
        assert hit is not None and hit.status == "sat"
        assert hit.cache_kind == "model"
        assert model_satisfies(formula, hit.model)

    def test_superset_of_unsat_is_unsat(self, store):
        record_solve(store, UNSAT_DIMACS, "unsat")
        hit, _ = lookup(store, UNSAT_SUPERSET_DIMACS)
        assert hit is not None and hit.status == "unsat"
        assert hit.cache_kind == "unsat"

    def test_superset_of_sat_revalidates_model(self, store):
        record_solve(store, SAT_DIMACS, "sat", model=[1, 2, 3])
        hit, formula = lookup(store, SAT_SUPERSET_DIMACS)
        assert hit is not None and hit.status == "sat"
        assert model_satisfies(formula, hit.model)

    def test_superset_whose_extra_clause_kills_the_model_misses(
        self, store
    ):
        """[1, 2, 3] satisfies the base formula but not ``-3 0``; the
        cache must re-solve, not guess."""
        record_solve(store, SAT_DIMACS, "sat", model=[1, 2, 3])
        killer = "p cnf 3 4\n1 2 0\n2 3 0\n-1 3 0\n-3 0\n"
        hit, _ = lookup(store, killer)
        assert hit is None
        assert store.stats.misses == 1

    def test_subset_of_unsat_gives_nothing(self, store):
        """A subset of an UNSAT instance can be SAT — no certificate
        may transfer in that direction."""
        record_solve(store, UNSAT_SUPERSET_DIMACS, "unsat")
        hit, _ = lookup(store, "p cnf 2 2\n1 0\n2 0\n")
        assert hit is None

    def test_subsume_flag_disables_the_layer(self, tmp_path):
        with PersistentResultStore(
            str(tmp_path / "c.sqlite"), subsume=False
        ) as store:
            record_solve(store, SAT_DIMACS, "sat", model=[1, 2, 3])
            hit, _ = lookup(store, SAT_SUBSET_DIMACS)
            assert hit is None

    def test_corrupted_model_is_never_served(self, store):
        """Hash-defence: even an exact-fingerprint instance row is
        re-validated against the actual formula before serving."""
        record_solve(store, SAT_DIMACS, "sat", model=[-1, -2, -3])
        hit, _ = lookup(store, SAT_DIMACS, seed=5)
        assert hit is None


class TestWarmClauses:
    def test_largest_subset_donor_wins(self, store):
        record_solve(
            store,
            SAT_SUBSET_DIMACS,
            "sat",
            model=[1, 2, 3],
            learned=[[1, 3]],
            conflicts=11,
        )
        record_solve(
            store,
            SAT_DIMACS,
            "sat",
            model=[1, 2, 3],
            learned=[[2, 3], [1, 3]],
            conflicts=29,
        )
        warm = store.warm_clauses(
            spec_for(SAT_SUPERSET_DIMACS).load_formula()
        )
        assert warm is not None
        assert warm.clauses == [[2, 3], [1, 3]]
        assert warm.donor_conflicts == 29

    def test_non_subset_donates_nothing(self, store):
        record_solve(
            store, SAT_DIMACS, "sat", model=[1, 2, 3], learned=[[1, 3]]
        )
        warm = store.warm_clauses(
            spec_for("p cnf 2 1\n1 2 0\n").load_formula()
        )
        assert warm is None

    def test_out_of_range_literals_filtered(self, store):
        """A donor that declared more variables may have banked
        clauses over variables the acceptor does not have."""
        record_solve(
            store,
            "p cnf 4 2\n1 2 0\n2 3 0\n",
            "sat",
            model=[1, 2, 3, 4],
            learned=[[1, 3], [2, 4]],
        )
        warm = store.warm_clauses(
            spec_for("p cnf 3 3\n1 2 0\n2 3 0\n-1 3 0\n").load_formula()
        )
        assert warm is not None
        assert warm.clauses == [[1, 3]]

    def test_warm_start_flag_disables_donation(self, tmp_path):
        with PersistentResultStore(
            str(tmp_path / "c.sqlite"), warm_start=False
        ) as store:
            record_solve(
                store, SAT_SUBSET_DIMACS, "sat", model=[1, 2, 3],
                learned=[[1, 3]],
            )
            assert (
                store.warm_clauses(spec_for(SAT_DIMACS).load_formula())
                is None
            )

    def test_note_warm_start_counts_savings(self, store):
        store.note_warm_start(donor_conflicts=40, conflicts=10)
        store.note_warm_start(donor_conflicts=5, conflicts=10)
        assert store.stats.warm_starts == 2
        assert store.stats.warm_start_conflicts_saved == 30


class TestSweepSoundness:
    def test_served_certificates_match_fresh_answers(self, store):
        """Populate with a seeded sweep, then query subsets and
        supersets; every served certificate must be sound."""
        from repro.cdcl import minisat_solver

        rng = np.random.default_rng(4242)
        for index in range(12):
            num_vars = int(rng.integers(8, 14))
            num_clauses = int(num_vars * 4.3)
            formula = random_3sat(
                num_vars, num_clauses, np.random.default_rng(7000 + index)
            )
            result = minisat_solver(formula).solve()
            spec = spec_for(to_dimacs(formula), job_id=f"s{index}")
            loaded = spec.load_formula()
            store.record(
                spec.solve_key(loaded),
                loaded,
                done_outcome(
                    spec,
                    status=result.status.value,
                    model=(
                        [lit.value for lit in result.model.as_literals()]
                        if result.model is not None
                        else None
                    ),
                ),
            )
            # Query a strict subset (drop the last clause).
            subset = to_dimacs(
                type(formula)(
                    formula.clauses[:-1], num_vars=formula.num_vars
                )
            )
            hit, sub_formula = lookup(store, subset, job_id=f"q{index}")
            if hit is not None and hit.status == "sat":
                assert model_satisfies(sub_formula, hit.model)
            if hit is not None and hit.status == "unsat":
                assert (
                    minisat_solver(sub_formula).solve().status.value == "unsat"
                )
