"""Shared fixtures for the persistent result-cache tests.

Tiny hand-written formulas with known answers drive the unit tests
(the store's behaviour is independent of how hard the instance was);
the service-level tests solve real uf20-91 instances.
"""

from __future__ import annotations

import pytest

from repro.cache import PersistentResultStore
from repro.service import JobSpec
from repro.service.jobs import JobOutcome

#: A 3-var SAT formula; [1, 2, 3] is a model.
SAT_DIMACS = "p cnf 3 3\n1 2 0\n2 3 0\n-1 3 0\n"

#: The same formula minus its last clause (a strict subset).
SAT_SUBSET_DIMACS = "p cnf 3 2\n1 2 0\n2 3 0\n"

#: The same formula plus -2 3 0 (a strict superset; still SAT).
SAT_SUPERSET_DIMACS = "p cnf 3 4\n1 2 0\n2 3 0\n-1 3 0\n-2 3 0\n"

#: A 1-var UNSAT core.
UNSAT_DIMACS = "p cnf 1 2\n1 0\n-1 0\n"

#: The UNSAT core plus an unrelated clause (superset, still UNSAT).
UNSAT_SUPERSET_DIMACS = "p cnf 2 3\n1 0\n-1 0\n2 0\n"


def spec_for(dimacs: str, job_id: str = "job", **kwargs) -> JobSpec:
    return JobSpec(job_id=job_id, dimacs=dimacs, **kwargs)


def done_outcome(
    spec: JobSpec,
    status: str = "sat",
    model=None,
    iterations: int = 7,
    conflicts: int = 3,
    **kwargs,
) -> JobOutcome:
    """A synthetic finished solve for store unit tests."""
    return JobOutcome(
        job_id=spec.job_id,
        state="done",
        status=status,
        model=model,
        iterations=iterations,
        conflicts=conflicts,
        seed=spec.seed,
        run_seconds=0.25,
        **kwargs,
    )


def record_solve(
    store: PersistentResultStore, dimacs: str, status: str, model=None, **kwargs
):
    """Record one synthetic solve; returns (spec, key, outcome)."""
    spec = spec_for(dimacs)
    formula = spec.load_formula()
    key = spec.solve_key(formula)
    outcome = done_outcome(spec, status=status, model=model, **kwargs)
    store.record(key, formula, outcome)
    return spec, key, outcome


@pytest.fixture
def store(tmp_path):
    with PersistentResultStore(str(tmp_path / "cache.sqlite")) as s:
        yield s
