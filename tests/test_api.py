"""Public API surface checks."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_quickstart_flow():
    """The README quickstart must actually work."""
    import numpy as np

    formula = repro.random_3sat(12, 40, np.random.default_rng(0))
    result = repro.HyQSatSolver(
        formula, device=repro.AnnealerDevice(repro.ChimeraGraph(4, 4, 4))
    ).solve()
    assert result.status.value in ("sat", "unsat")


def test_classic_baselines_exported():
    import numpy as np

    formula = repro.random_3sat(10, 30, np.random.default_rng(1))
    assert repro.minisat_solver(formula).solve().status is not None
    assert repro.kissat_solver(formula).solve().status is not None
