"""Cross-package integration tests.

End-to-end flows that cross several subsystem boundaries: benchmark
generation -> DIMACS round trip -> classic and hybrid solving ->
model verification, plus solver-vs-solver agreement on every cheap
benchmark family.
"""

import numpy as np
import pytest

from repro import (
    AnnealerDevice,
    BENCHMARKS,
    ChimeraGraph,
    HyQSatConfig,
    HyQSatSolver,
    kissat_solver,
    minisat_solver,
    read_dimacs,
    write_dimacs,
)

CHEAP_BENCHMARKS = ["GC1", "CFA", "BP", "II", "IF1", "CRY", "AI1"]


@pytest.fixture(scope="module")
def device():
    return AnnealerDevice(ChimeraGraph(8, 8, 4), seed=0)


@pytest.mark.parametrize("name", CHEAP_BENCHMARKS)
def test_all_solvers_agree_on_benchmark(name, device):
    formula = BENCHMARKS[name].generate(0, seed=2)
    mini = minisat_solver(formula, seed=0).solve()
    kis = kissat_solver(formula, seed=0).solve()
    hyq = HyQSatSolver(formula, device=device, config=HyQSatConfig(seed=0)).solve()
    assert mini.is_sat == kis.is_sat == hyq.is_sat, name
    for result in (mini, kis, hyq):
        if result.is_sat:
            assert result.model.satisfies(formula), name


@pytest.mark.parametrize("name", ["GC1", "AI1"])
def test_dimacs_roundtrip_preserves_solving(name, tmp_path, device):
    formula = BENCHMARKS[name].generate(1, seed=3)
    path = tmp_path / f"{name}.cnf"
    write_dimacs(formula, path, comments=[f"{name} integration test"])
    reloaded = read_dimacs(path)
    assert reloaded == formula
    result = HyQSatSolver(
        reloaded, device=device, config=HyQSatConfig(seed=1)
    ).solve()
    assert result.is_sat  # both families are satisfiable by construction
    assert result.model.satisfies(formula)


def test_hybrid_solver_stats_consistency(device):
    formula = BENCHMARKS["AI1"].generate(2, seed=4)
    solver = HyQSatSolver(formula, device=device, config=HyQSatConfig(seed=2))
    result = solver.solve()
    hybrid = result.hybrid
    # Accounting invariants that must hold for any solve.
    assert result.stats.iterations >= result.stats.conflicts
    assert hybrid.qa_calls == sum(hybrid.strategy_counts.values())
    assert hybrid.qa_calls == len(hybrid.energies)
    assert all(np.isfinite(e) for e in hybrid.energies)
    breakdown = result.time_breakdown(1e-5)
    assert breakdown.total_s > 0


def test_device_reuse_across_solves(device):
    """One device instance can serve many solver instances."""
    for index in range(3):
        formula = BENCHMARKS["AI1"].generate(index, seed=5)
        result = HyQSatSolver(
            formula, device=device, config=HyQSatConfig(seed=index)
        ).solve()
        assert result.is_sat
