"""Tests for the HyQSAT linear-time embedder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embedding.hyqsat_embed import HyQSatEmbedder, clause_edges
from repro.embedding.base import verify_embedding
from repro.qubo.encoding import encode_formula
from repro.sat.cnf import Clause
from repro.topology.chimera import ChimeraGraph


def _random_clauses(n, m, rng):
    clauses = []
    while len(clauses) < m:
        width = int(rng.integers(1, min(3, n) + 1))
        vs = rng.choice(np.arange(1, n + 1), size=width, replace=False)
        clauses.append(Clause([int(v) if rng.integers(0, 2) else -int(v) for v in vs]))
    return clauses


def _verify_result(result, encoding, hardware):
    edges = []
    for k in result.embedded_clauses:
        edges.extend(clause_edges(encoding, k))
    return verify_embedding(result.embedding, hardware, edges)


class TestClauseEdges:
    def test_three_clause_edges(self):
        enc = encode_formula([Clause([1, 2, 3])], 3)
        assert set(clause_edges(enc, 0)) == {(1, 2), (1, 4), (2, 4), (3, 4)}

    def test_two_clause_edge(self):
        enc = encode_formula([Clause([1, -2])], 2)
        assert clause_edges(enc, 0) == [(1, 2)]

    def test_unit_clause_no_edges(self):
        enc = encode_formula([Clause([1])], 1)
        assert clause_edges(enc, 0) == []


class TestSingleClause:
    def test_one_three_clause_embeds(self, small_hardware):
        enc = encode_formula([Clause([1, 2, 3])], 3)
        result = HyQSatEmbedder(small_hardware).embed(enc)
        assert result.success
        assert result.embedded_clauses == (0,)
        assert _verify_result(result, enc, small_hardware) == []

    def test_unit_clause_embeds(self, small_hardware):
        enc = encode_formula([Clause([2])], 2)
        result = HyQSatEmbedder(small_hardware).embed(enc)
        assert result.success
        assert 2 in result.embedding

    def test_paper_figure2_formula(self, small_hardware, tiny_sat_formula):
        enc = encode_formula(list(tiny_sat_formula.clauses), 4)
        result = HyQSatEmbedder(small_hardware).embed(enc)
        assert result.success
        assert _verify_result(result, enc, small_hardware) == []


class TestCapacity:
    def test_queue_order_respected_at_capacity(self):
        hardware = ChimeraGraph(2, 2, 2)  # only 4 vertical lines
        clauses = [Clause([1, 2, 3]), Clause([4, 5, 6]), Clause([1, 2])]
        enc = encode_formula(clauses, 6)
        result = HyQSatEmbedder(hardware).embed(enc)
        # Clause 1 needs 3 fresh lines but only 1 remains after clause 0:
        # embedding stops there in queue order.
        assert 0 in result.embedded_clauses
        assert 1 not in result.embedded_clauses
        assert not result.success

    def test_unembedded_clause_aux_not_in_embedding(self):
        hardware = ChimeraGraph(2, 2, 2)
        clauses = [Clause([1, 2, 3]), Clause([4, 5, 6])]
        enc = encode_formula(clauses, 6)
        result = HyQSatEmbedder(hardware).embed(enc)
        dropped_aux = enc.aux_of_clause[1]
        assert dropped_aux not in result.embedding

    def test_num_embedded_property(self, small_hardware, rng):
        clauses = _random_clauses(8, 10, rng)
        enc = encode_formula(clauses, 8)
        result = HyQSatEmbedder(small_hardware).embed(enc)
        assert result.num_embedded == len(result.embedded_clauses)
        assert set(result.embedded_clauses).isdisjoint(result.unembedded_clauses)
        assert len(result.embedded_clauses) + len(result.unembedded_clauses) == len(
            enc.clauses
        )


class TestValidityFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_queues_produce_valid_embeddings(self, seed, c16_hardware):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 40))
        m = int(rng.integers(1, 60))
        clauses = _random_clauses(n, m, rng)
        enc = encode_formula(clauses, n)
        result = HyQSatEmbedder(c16_hardware).embed(enc)
        assert _verify_result(result, enc, c16_hardware) == []

    @pytest.mark.parametrize("seed", range(6))
    def test_small_hardware_partial_embeddings_valid(self, seed, small_hardware):
        rng = np.random.default_rng(100 + seed)
        clauses = _random_clauses(20, 30, rng)
        enc = encode_formula(clauses, 20)
        result = HyQSatEmbedder(small_hardware).embed(enc)
        assert _verify_result(result, enc, small_hardware) == []


class TestScaling:
    def test_linear_time_shape(self, c16_hardware):
        """Embedding time grows ~linearly in clauses (no blow-up)."""
        import time

        rng = np.random.default_rng(0)
        times = []
        for m in (20, 40, 80):
            clauses = _random_clauses(30, m, rng)
            enc = encode_formula(clauses, 30)
            start = time.perf_counter()
            HyQSatEmbedder(c16_hardware).embed(enc)
            times.append(time.perf_counter() - start)
        # 4x the clauses should cost well under 40x the time.
        assert times[2] < 40 * max(times[0], 1e-4)

    def test_larger_grid_embeds_more(self):
        rng = np.random.default_rng(1)
        clauses = _random_clauses(100, 150, rng)
        enc = encode_formula(clauses, 100)
        small = HyQSatEmbedder(ChimeraGraph(8, 8, 4)).embed(enc)
        large = HyQSatEmbedder(ChimeraGraph(24, 24, 4)).embed(enc)
        assert large.num_embedded >= small.num_embedded
