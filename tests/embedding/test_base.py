"""Tests for the embedding data model and verifier."""

import pytest

from repro.embedding.base import (
    Embedding,
    EmbeddingResult,
    chain_length_stats,
    find_edge_couplers,
    verify_embedding,
)
from repro.topology.chimera import QubitCoord


class TestEmbedding:
    def test_set_and_get_chain(self):
        e = Embedding()
        e.set_chain(1, [5, 3, 5])
        assert e.chain_of(1) == (3, 5)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            Embedding().set_chain(1, [])

    def test_counts(self):
        e = Embedding({1: [0, 1], 2: [2]})
        assert len(e) == 2
        assert e.num_qubits_used() == 3
        assert e.all_qubits() == {0, 1, 2}
        assert e.variables == [1, 2]

    def test_qubit_owner(self):
        e = Embedding({1: [0], 2: [1, 2]})
        assert e.qubit_owner() == {0: 1, 1: 2, 2: 2}

    def test_restricted_to(self):
        e = Embedding({1: [0], 2: [1]})
        r = e.restricted_to([2])
        assert 1 not in r and 2 in r

    def test_contains_and_iter(self):
        e = Embedding({7: [0]})
        assert 7 in e
        assert list(e) == [7]


class TestVerifier:
    def test_valid_single_qubit_chains(self, small_hardware):
        vq = small_hardware.qubit_id(QubitCoord(0, 0, 0, 0))
        hq = small_hardware.qubit_id(QubitCoord(0, 0, 1, 0))
        e = Embedding({1: [vq], 2: [hq]})
        assert verify_embedding(e, small_hardware, [(1, 2)]) == []

    def test_detects_overlap(self, small_hardware):
        e = Embedding({1: [0], 2: [0]})
        problems = verify_embedding(e, small_hardware, [])
        assert any("shared" in p for p in problems)

    def test_detects_disconnected_chain(self, small_hardware):
        q1 = small_hardware.qubit_id(QubitCoord(0, 0, 0, 0))
        q2 = small_hardware.qubit_id(QubitCoord(3, 3, 0, 0))
        e = Embedding({1: [q1, q2]})
        problems = verify_embedding(e, small_hardware, [])
        assert any("disconnected" in p for p in problems)

    def test_detects_unrealised_edge(self, small_hardware):
        q1 = small_hardware.qubit_id(QubitCoord(0, 0, 0, 0))
        q2 = small_hardware.qubit_id(QubitCoord(3, 3, 0, 0))
        e = Embedding({1: [q1], 2: [q2]})
        problems = verify_embedding(e, small_hardware, [(1, 2)])
        assert any("no hardware coupler" in p for p in problems)

    def test_detects_broken_qubit_use(self, small_hardware):
        from repro.topology.chimera import ChimeraGraph

        hw = ChimeraGraph(4, 4, 4, broken_qubits=[0])
        e = Embedding({1: [0]})
        problems = verify_embedding(e, hw, [])
        assert any("non-working" in p for p in problems)

    def test_connected_two_qubit_chain_ok(self, small_hardware):
        vq = small_hardware.qubit_id(QubitCoord(0, 0, 0, 0))
        hq = small_hardware.qubit_id(QubitCoord(0, 0, 1, 0))
        e = Embedding({1: [vq, hq]})
        assert verify_embedding(e, small_hardware, []) == []


class TestEdgeCouplers:
    def test_finds_all_couplers(self, small_hardware):
        vq = small_hardware.qubit_id(QubitCoord(0, 0, 0, 0))
        hq = small_hardware.qubit_id(QubitCoord(0, 0, 1, 0))
        e = Embedding({1: [vq], 2: [hq]})
        couplers = find_edge_couplers(e, small_hardware, [(2, 1)])
        assert couplers[(1, 2)] in (((vq, hq),), ((hq, vq),))

    def test_unembedded_variable_gives_empty(self, small_hardware):
        e = Embedding({1: [0]})
        couplers = find_edge_couplers(e, small_hardware, [(1, 9)])
        assert couplers[(1, 9)] == ()


class TestStats:
    def test_chain_length_stats(self):
        e = Embedding({1: [0], 2: [1, 2, 3]})
        stats = chain_length_stats(e)
        assert stats == {"mean": 2.0, "max": 3.0, "median": 2.0}

    def test_empty_stats(self):
        assert chain_length_stats(Embedding())["mean"] == 0.0

    def test_result_properties(self):
        r = EmbeddingResult(Embedding({1: [0, 1]}), True, 0.1)
        assert r.max_chain_length == 2
        assert r.avg_chain_length == 2.0
        empty = EmbeddingResult(Embedding(), False, 0.0)
        assert empty.max_chain_length == 0
        assert empty.avg_chain_length == 0.0
