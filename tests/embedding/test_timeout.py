"""Regression tests for the typed EmbeddingTimeout."""

import pytest

from repro.core.frontend import Frontend
from repro.embedding import (
    EmbeddingTimeout,
    MinorminerLikeEmbedder,
    PlaceAndRouteEmbedder,
)
from repro.qubo.encoding import encode_formula
from repro.sat.cnf import CNF, Clause


def _edges(num_clauses=6):
    clauses = [
        Clause([i + 1, i + 2, i + 3]) for i in range(num_clauses)
    ]
    encoding = encode_formula(clauses, num_clauses + 3)
    return (
        list(encoding.objective.quadratic.keys()),
        encoding.objective.variables,
    )


def test_minorminer_raises_typed_timeout(small_hardware):
    edges, variables = _edges()
    embedder = MinorminerLikeEmbedder(
        small_hardware, max_passes=10, timeout_seconds=0.0, seed=0
    )
    with pytest.raises(EmbeddingTimeout) as info:
        embedder.embed(edges, variables)
    timeout = info.value
    assert isinstance(timeout, TimeoutError)
    assert timeout.passes >= 0
    assert timeout.elapsed_seconds > 0.0
    assert "budget" in str(timeout)


def test_place_route_raises_typed_timeout(small_hardware):
    edges, variables = _edges()
    embedder = PlaceAndRouteEmbedder(
        small_hardware, timeout_seconds=0.0, seed=0
    )
    with pytest.raises(EmbeddingTimeout) as info:
        embedder.embed(edges, variables)
    assert info.value.passes == 0
    assert info.value.elapsed_seconds > 0.0


def test_generous_budget_does_not_raise(small_hardware):
    edges, variables = _edges(3)
    result = MinorminerLikeEmbedder(
        small_hardware, max_passes=10, timeout_seconds=60.0, seed=0
    ).embed(edges, variables)
    assert result.success


def test_frontend_skips_timed_out_queue(small_hardware):
    formula = CNF(
        [Clause([1, 2, 3]), Clause([2, -3, 4])], num_vars=4
    )
    frontend = Frontend(formula, small_hardware, cache_size=0)

    class TimingOutEmbedder:
        def embed(self, encoding):
            raise EmbeddingTimeout(
                "over budget", passes=1, elapsed_seconds=0.5
            )

    frontend._embedder = TimingOutEmbedder()
    # A timed-out embed forfeits this QA call instead of crashing.
    assert frontend.prepare([0, 1]) is None
