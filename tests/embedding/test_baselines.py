"""Tests for the Minorminer-like and P&R baseline embedders."""

import numpy as np
import pytest

from repro.embedding.base import verify_embedding
from repro.embedding.minorminer_like import MinorminerLikeEmbedder
from repro.embedding.place_route import PlaceAndRouteEmbedder
from repro.qubo.encoding import encode_formula
from repro.sat.cnf import Clause


def _triangle_edges():
    return [(1, 2), (2, 3), (1, 3)]


def _clause_graph(n, m, seed):
    rng = np.random.default_rng(seed)
    clauses = []
    while len(clauses) < m:
        vs = rng.choice(np.arange(1, n + 1), size=3, replace=False)
        clauses.append(Clause([int(v) for v in vs]))
    enc = encode_formula(clauses, n)
    return list(enc.objective.quadratic.keys()), enc.objective.variables


class TestMinorminerLike:
    def test_triangle(self, small_hardware):
        result = MinorminerLikeEmbedder(small_hardware, seed=0).embed(_triangle_edges())
        assert result.success
        assert verify_embedding(result.embedding, small_hardware, _triangle_edges()) == []

    def test_k5_needs_chains(self, small_hardware):
        edges = [(u, v) for u in range(1, 6) for v in range(u + 1, 6)]
        result = MinorminerLikeEmbedder(small_hardware, max_passes=30, seed=1).embed(edges)
        assert result.success
        assert verify_embedding(result.embedding, small_hardware, edges) == []
        # K5 on Chimera requires at least one multi-qubit chain.
        assert result.max_chain_length >= 2

    def test_small_clause_graph(self, c16_hardware):
        edges, variables = _clause_graph(8, 14, seed=2)
        result = MinorminerLikeEmbedder(c16_hardware, max_passes=25, seed=2).embed(
            edges, variables
        )
        assert result.success
        assert verify_embedding(result.embedding, c16_hardware, edges) == []

    def test_empty_graph(self, small_hardware):
        result = MinorminerLikeEmbedder(small_hardware).embed([])
        assert result.success

    def test_isolated_variables_placed(self, small_hardware):
        result = MinorminerLikeEmbedder(small_hardware).embed([], variables=[1, 2, 3])
        assert result.success
        assert set(result.embedding.variables) == {1, 2, 3}

    def test_failure_reported_not_raised(self):
        from repro.topology.chimera import ChimeraGraph

        tiny = ChimeraGraph(1, 1, 2)  # 4 qubits: K9 cannot fit
        edges = [(u, v) for u in range(1, 10) for v in range(u + 1, 10)]
        result = MinorminerLikeEmbedder(tiny, max_passes=3, timeout_seconds=5).embed(edges)
        assert not result.success

    def test_deterministic_for_seed(self, small_hardware):
        edges, variables = _clause_graph(5, 8, seed=3)
        r1 = MinorminerLikeEmbedder(small_hardware, seed=7).embed(edges, variables)
        r2 = MinorminerLikeEmbedder(small_hardware, seed=7).embed(edges, variables)
        assert r1.embedding.chains == r2.embedding.chains


class TestPlaceAndRoute:
    def test_triangle(self, small_hardware):
        result = PlaceAndRouteEmbedder(small_hardware, seed=0).embed(_triangle_edges())
        assert result.success
        assert verify_embedding(result.embedding, small_hardware, _triangle_edges()) == []

    def test_small_clause_graph(self, c16_hardware):
        edges, variables = _clause_graph(6, 10, seed=4)
        result = PlaceAndRouteEmbedder(c16_hardware, seed=4).embed(edges, variables)
        assert result.success
        assert verify_embedding(result.embedding, c16_hardware, edges) == []

    def test_empty_graph(self, small_hardware):
        assert PlaceAndRouteEmbedder(small_hardware).embed([]).success

    def test_failure_reported_not_raised(self):
        from repro.topology.chimera import ChimeraGraph

        tiny = ChimeraGraph(1, 1, 2)
        edges = [(u, v) for u in range(1, 10) for v in range(u + 1, 10)]
        result = PlaceAndRouteEmbedder(tiny, max_rounds=2, timeout_seconds=5).embed(edges)
        assert not result.success

    def test_exclusive_chains(self, c16_hardware):
        edges, variables = _clause_graph(6, 10, seed=5)
        result = PlaceAndRouteEmbedder(c16_hardware, seed=5).embed(edges, variables)
        if result.success:
            owners = result.embedding.qubit_owner()
            assert len(owners) == result.embedding.num_qubits_used()
