"""Tests for the connection requirement list."""

import pytest

from repro.embedding.crl import ConnectionRequirementList


def test_requirements_accumulate_per_owner():
    crl = ConnectionRequirementList()
    crl.add(1, 2, clause_index=0)
    crl.add(1, 5, clause_index=1)
    assert crl.targets_of(1) == [2, 5]
    assert crl.owners() == [1]


def test_owner_order_is_first_appearance():
    crl = ConnectionRequirementList()
    crl.add(3, 1, 0)
    crl.add(1, 2, 1)
    crl.add(3, 4, 2)
    assert crl.owners() == [3, 1]


def test_duplicate_target_not_repeated():
    crl = ConnectionRequirementList()
    crl.add(1, 2, 0)
    crl.add(1, 2, 3)
    assert crl.targets_of(1) == [2]
    assert crl.clauses_needing(1, 2) == {0, 3}


def test_self_connection_rejected():
    with pytest.raises(ValueError):
        ConnectionRequirementList().add(1, 1, 0)


def test_pairs_and_len():
    crl = ConnectionRequirementList()
    crl.add(1, 2, 0)
    crl.add(9, 3, 0)
    crl.add(9, 4, 1)
    assert list(crl.pairs()) == [(1, 2), (9, 3), (9, 4)]
    assert len(crl) == 3


def test_contains_and_missing_owner():
    crl = ConnectionRequirementList()
    crl.add(1, 2, 0)
    assert 1 in crl
    assert 2 not in crl
    assert crl.targets_of(42) == []
    assert crl.clauses_needing(4, 5) == set()


def test_repr_shows_paper_notation():
    crl = ConnectionRequirementList()
    crl.add(1, 2, 0)
    crl.add(1, 5, 1)
    assert "1:{2, 5}" in repr(crl)
