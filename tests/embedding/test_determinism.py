"""Determinism guarantees across the embedding stack.

Reproducibility is a stated design rule (DESIGN.md): the same seed and
input must give bit-identical embeddings, chains, and couplers.
"""

import numpy as np
import pytest

from repro.embedding import (
    HyQSatEmbedder,
    MinorminerLikeEmbedder,
    PlaceAndRouteEmbedder,
)
from repro.qubo import encode_formula
from repro.sat.cnf import Clause


def _encoding(seed, n=12, m=18):
    rng = np.random.default_rng(seed)
    clauses = []
    while len(clauses) < m:
        vs = rng.choice(np.arange(1, n + 1), size=3, replace=False)
        clauses.append(Clause([int(v) if rng.integers(0, 2) else -int(v) for v in vs]))
    return encode_formula(clauses, n)


def test_hyqsat_embedder_is_deterministic(c16_hardware):
    enc = _encoding(0)
    a = HyQSatEmbedder(c16_hardware).embed(enc)
    b = HyQSatEmbedder(c16_hardware).embed(enc)
    assert a.embedding.chains == b.embedding.chains
    assert a.edge_couplers == b.edge_couplers
    assert a.embedded_clauses == b.embedded_clauses


def test_minorminer_like_deterministic_per_seed(small_hardware):
    enc = _encoding(1, n=6, m=8)
    edges = list(enc.objective.quadratic.keys())
    variables = enc.objective.variables
    a = MinorminerLikeEmbedder(small_hardware, seed=3).embed(edges, variables)
    b = MinorminerLikeEmbedder(small_hardware, seed=3).embed(edges, variables)
    assert a.embedding.chains == b.embedding.chains


def test_place_route_deterministic_per_seed(c16_hardware):
    enc = _encoding(2, n=6, m=8)
    edges = list(enc.objective.quadratic.keys())
    variables = enc.objective.variables
    a = PlaceAndRouteEmbedder(c16_hardware, seed=5).embed(edges, variables)
    b = PlaceAndRouteEmbedder(c16_hardware, seed=5).embed(edges, variables)
    assert a.success == b.success
    if a.success:
        assert a.embedding.chains == b.embedding.chains


def test_queue_order_changes_embedding(c16_hardware):
    """The HyQSAT scheme is queue-order sensitive by design (vertical
    lines are assigned in pop order)."""
    enc = _encoding(3)
    reversed_enc = encode_formula(list(reversed(enc.clauses)), 12)
    a = HyQSatEmbedder(c16_hardware).embed(enc)
    b = HyQSatEmbedder(c16_hardware).embed(reversed_enc)
    assert a.embedding.chains != b.embedding.chains
