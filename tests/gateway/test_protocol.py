"""Wire protocol: framing, validation, constructors."""

from __future__ import annotations

import json

import pytest

from repro.gateway import protocol
from repro.gateway.protocol import (
    CLIENT_MESSAGE_TYPES,
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    SERVER_MESSAGE_TYPES,
    STREAM_EVENTS,
    ProtocolError,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message, from_client",
        [
            (protocol.hello(), True),
            (protocol.hello(api_key="team-a"), True),
            (protocol.submit({"id": "j1", "dimacs": "p cnf 1 1\n1 0\n"}), True),
            (protocol.cancel("j1"), True),
            (protocol.ping(nonce=3), True),
            (protocol.bye(), True),
            (protocol.welcome([{"device": "chimera16"}], {"burst": 40}), False),
            (protocol.ack("j1", queue_depth=2), False),
            (protocol.reject("backpressure", "full", job_id="j1", retry_after_s=0.5), False),
            (protocol.event("j1", "routed", device="chimera16"), False),
            (protocol.event("j1", "started"), False),
            (protocol.result("j1", {"state": "done"}), False),
            (protocol.pong(nonce=3), False),
            (protocol.error("bad_message", "nope"), False),
            (protocol.goodbye(served=4), False),
        ],
    )
    def test_encode_parse_identity(self, message, from_client):
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert protocol.parse_line(line, from_client=from_client) == message

    def test_encode_is_one_json_line(self):
        line = protocol.encode(protocol.hello())
        assert line.count(b"\n") == 1
        json.loads(line.decode("utf-8"))


class TestParseValidation:
    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.parse_line(b"not json\n", from_client=True)
        assert exc.value.code == "bad_message"

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.parse_line(b"[1, 2]\n", from_client=True)

    def test_rejects_unknown_type(self):
        with pytest.raises(ProtocolError):
            protocol.parse_line(b'{"type": "warp"}\n', from_client=True)

    def test_direction_matters(self):
        ack = protocol.encode(protocol.ack("j", 0))
        assert protocol.parse_line(ack, from_client=False)["type"] == "ack"
        with pytest.raises(ProtocolError):
            protocol.parse_line(ack, from_client=True)
        hello = protocol.encode(protocol.hello())
        with pytest.raises(ProtocolError):
            protocol.parse_line(hello, from_client=False)

    def test_rejects_oversized_line(self):
        blob = b'{"type": "ping", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError) as exc:
            protocol.parse_line(blob, from_client=True)
        assert "bytes" in exc.value.reason


class TestRegistries:
    def test_version_string(self):
        assert PROTOCOL_VERSION == "hyqsat-gateway/1"

    def test_no_type_overlap(self):
        assert not set(CLIENT_MESSAGE_TYPES) & set(SERVER_MESSAGE_TYPES)

    def test_stream_events_are_not_message_types(self):
        assert not set(STREAM_EVENTS) & (
            set(CLIENT_MESSAGE_TYPES) | set(SERVER_MESSAGE_TYPES)
        )

    def test_constructors_validate_codes_and_events(self):
        with pytest.raises(ValueError):
            protocol.reject("made_up_code", "no")
        with pytest.raises(ValueError):
            protocol.error("made_up_code", "no")
        with pytest.raises(ValueError):
            protocol.event("j1", "made_up_event")
        with pytest.raises(ValueError):
            ProtocolError("made_up_code", "no")
        for code in ERROR_CODES:
            assert protocol.reject(code, "r")["code"] == code
