"""Tenant limits: token bucket and QA-quota ledger on a fake clock."""

from __future__ import annotations

import pytest

from repro.gateway.limits import TenantLedger, TenantPolicy, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_denial(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=3, clock=clock)
        for _ in range(3):
            ok, retry = bucket.try_acquire()
            assert ok and retry == 0.0
        ok, retry = bucket.try_acquire()
        assert not ok
        assert retry == pytest.approx(0.1)

    def test_continuous_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=1, clock=clock)
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        clock.advance(0.5)  # exactly one token at 2/s
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=5, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == pytest.approx(5.0)

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=4.0, burst=1, clock=clock)
        bucket.try_acquire()
        _, retry = bucket.try_acquire()
        clock.advance(retry)
        assert bucket.try_acquire()[0]


class TestTenantPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_per_s": 0.0},
            {"rate_per_s": -1.0},
            {"burst": 0},
            {"qa_budget_us": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TenantPolicy(**kwargs)


class TestTenantLedger:
    def test_tenants_get_independent_buckets(self):
        clock = FakeClock()
        ledger = TenantLedger(TenantPolicy(rate_per_s=1.0, burst=1), clock=clock)
        assert ledger.admit("a") == (None, 0.0)
        denial, retry = ledger.admit("a")
        assert denial == "rate_limited" and retry > 0
        assert ledger.admit("b") == (None, 0.0)  # b's bucket untouched

    def test_anonymous_traffic_shares_one_bucket(self):
        clock = FakeClock()
        ledger = TenantLedger(TenantPolicy(rate_per_s=1.0, burst=1), clock=clock)
        assert ledger.admit(None)[0] is None
        assert ledger.admit(None)[0] == "rate_limited"

    def test_quota_checked_before_rate(self):
        clock = FakeClock()
        ledger = TenantLedger(
            TenantPolicy(rate_per_s=100.0, burst=100, qa_budget_us=50.0),
            clock=clock,
        )
        assert ledger.admit("a")[0] is None
        ledger.charge("a", 50.0)
        assert ledger.admit("a")[0] == "quota_exhausted"
        assert ledger.remaining_us("a") == 0.0
        # The other tenant still has its full budget.
        assert ledger.admit("b")[0] is None
        assert ledger.remaining_us("b") == 50.0

    def test_charge_accumulates_and_ignores_zero(self):
        ledger = TenantLedger(TenantPolicy(), clock=FakeClock())
        ledger.charge("a", 10.0)
        ledger.charge("a", 0.0)
        ledger.charge("a", 5.0)
        assert ledger.spent_us("a") == pytest.approx(15.0)
        assert ledger.remaining_us("a") is None  # unmetered policy
