"""Fleet DES: drift speed factors and the k x m makespan model."""

from __future__ import annotations

import pytest

from repro.annealer.faults import FaultModel
from repro.gateway.des import (
    DRIFT_RECAL_PENALTY,
    QpuLane,
    drift_speed_factors,
    simulate_fleet_makespan,
)
from repro.service.scheduler import simulate_makespan

UNIT = [QpuLane("qpu0")]


class TestDriftSpeedFactors:
    def test_nominal_fleet_is_unit_speed(self):
        assert drift_speed_factors(3) == [1.0, 1.0, 1.0]
        assert drift_speed_factors(2, FaultModel()) == [1.0, 1.0]

    def test_deterministic_per_seed(self):
        faults = FaultModel(drift_onset_prob=0.3)
        assert drift_speed_factors(4, faults, seed=7) == drift_speed_factors(
            4, faults, seed=7
        )
        assert drift_speed_factors(4, faults, seed=7) != drift_speed_factors(
            4, faults, seed=8
        )

    def test_factors_bounded_by_recal_penalty(self):
        faults = FaultModel(drift_onset_prob=0.9, drift_bias_step=1.0)
        factors = drift_speed_factors(8, faults)
        assert all(1.0 <= f <= 1.0 + DRIFT_RECAL_PENALTY for f in factors)
        # A drift step past the fail threshold saturates immediately.
        assert max(factors) == pytest.approx(1.0 + DRIFT_RECAL_PENALTY)

    def test_devices_spread(self):
        faults = FaultModel(drift_onset_prob=0.3)
        factors = drift_speed_factors(8, faults)
        assert len(set(factors)) > 1  # heterogeneous calibration

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            drift_speed_factors(0)


class TestFleetMakespan:
    PROFILES = [
        (0.4, 3, 900.0),
        (0.2, 5, 1500.0),
        (0.6, 2, 400.0),
        (0.3, 4, 1200.0),
        (0.5, 0, 0.0),
    ]

    def test_reduces_to_simulate_makespan_on_one_unit_lane(self):
        for workers in (1, 2, 3, 8):
            assert simulate_fleet_makespan(
                self.PROFILES, workers, UNIT
            ) == pytest.approx(simulate_makespan(self.PROFILES, workers))

    def test_more_lanes_never_slower(self):
        one = simulate_fleet_makespan(self.PROFILES, 4, UNIT)
        two = simulate_fleet_makespan(
            self.PROFILES, 4, [QpuLane("a"), QpuLane("b")]
        )
        four = simulate_fleet_makespan(
            self.PROFILES, 4, [QpuLane(f"q{i}") for i in range(4)]
        )
        assert two <= one
        assert four <= two

    def test_qpu_bound_jobs_scale_with_lanes(self):
        # All-QPU jobs on ample workers: the device is the bottleneck,
        # so m lanes cut makespan by ~m.
        profiles = [(1e-9, 1, 1_000_000.0)] * 8
        one = simulate_fleet_makespan(profiles, 8, UNIT)
        four = simulate_fleet_makespan(
            profiles, 8, [QpuLane(f"q{i}") for i in range(4)]
        )
        assert one / four == pytest.approx(4.0, rel=0.01)

    def test_slow_lane_stretches_pinned_jobs(self):
        lanes = [QpuLane("good"), QpuLane("drifted", speed=1.25)]
        pinned_good = [(0.1, 2, 500_000.0, 0)]
        pinned_bad = [(0.1, 2, 500_000.0, 1)]
        assert simulate_fleet_makespan(
            pinned_bad, 1, lanes
        ) > simulate_fleet_makespan(pinned_good, 1, lanes)

    def test_unpinned_jobs_avoid_the_slow_lane(self):
        lanes = [QpuLane("good"), QpuLane("drifted", speed=100.0)]
        free = simulate_fleet_makespan([(0.1, 2, 500_000.0)], 1, lanes)
        forced = simulate_fleet_makespan([(0.1, 2, 500_000.0, 1)], 1, lanes)
        assert free < forced

    def test_deterministic(self):
        lanes = [QpuLane("a"), QpuLane("b", speed=1.1)]
        runs = {
            simulate_fleet_makespan(self.PROFILES, 3, lanes) for _ in range(5)
        }
        assert len(runs) == 1

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            simulate_fleet_makespan(self.PROFILES, 0, UNIT)
        with pytest.raises(ValueError):
            simulate_fleet_makespan(self.PROFILES, 1, [])
        with pytest.raises(ValueError):
            simulate_fleet_makespan([(0.1, 1, 100.0, 5)], 1, UNIT)
        with pytest.raises(ValueError):
            QpuLane("bad", speed=0.0)

    def test_empty_job_set(self):
        assert simulate_fleet_makespan([], 2, UNIT) == 0.0
