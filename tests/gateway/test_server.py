"""Gateway server over a real socket, plus deterministic admission
mapping driven without the network.

The socket tests run a real :class:`GatewayServer` on an ephemeral
port inside a background event loop and talk to it with the blocking
:class:`GatewayClient` — the same pairing ``hyqsat gateway`` /
``hyqsat connect`` ships.  Timing-sensitive admission outcomes
(backpressure, duplicates, draining) are driven directly against the
submit handler with a stub connection so they cannot race the
dispatcher.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.gateway import protocol
from repro.gateway.client import GatewayClient, GatewayError, GatewayReject
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.service.jobs import JobSpec, run_job
from repro.sat.dimacs import to_dimacs

DIMACS = to_dimacs(random_3sat(8, 24, np.random.default_rng(2)))


@pytest.fixture
def gateway_factory():
    """Start real gateways on ephemeral ports; drain them at teardown."""
    created = []

    def factory(**kwargs) -> GatewayServer:
        kwargs.setdefault("port", 0)
        kwargs.setdefault("fleet", "chimera:4,chimera:8")
        kwargs.setdefault("drain_grace_s", 30.0)
        config = GatewayConfig(**kwargs)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()

        async def make() -> GatewayServer:
            server = GatewayServer(config)
            await server.start()
            return server

        server = asyncio.run_coroutine_threadsafe(make(), loop).result(10)
        created.append((server, loop, thread))
        return server

    yield factory
    for server, loop, thread in created:
        asyncio.run_coroutine_threadsafe(server.shutdown(), loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(5)
        loop.close()


class TestHandshake:
    def test_welcome_describes_fleet_and_limits(self, gateway_factory):
        server = gateway_factory(rate_per_s=5.0, burst=7)
        with GatewayClient(port=server.port) as client:
            assert client.welcome["protocol"] == protocol.PROTOCOL_VERSION
            assert [d["device"] for d in client.welcome["fleet"]] == [
                "chimera4",
                "chimera8",
            ]
            assert client.welcome["limits"] == {
                "rate_per_s": 5.0,
                "burst": 7,
                "qa_budget_us": None,
            }

    def test_wrong_protocol_version_is_fatal(self, gateway_factory):
        server = gateway_factory()
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as raw:
            raw.sendall(b'{"type": "hello", "protocol": "hyqsat-gateway/999"}\n')
            reply = protocol.parse_line(
                raw.makefile("rb").readline(), from_client=False
            )
        assert reply["type"] == "error"
        assert reply["code"] == "unsupported_protocol"

    def test_first_message_must_be_hello(self, gateway_factory):
        server = gateway_factory()
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as raw:
            raw.sendall(protocol.encode(protocol.ping()))
            reply = protocol.parse_line(
                raw.makefile("rb").readline(), from_client=False
            )
        assert reply["type"] == "error"
        assert reply["code"] == "bad_message"

    def test_api_keys_enforced(self, gateway_factory):
        server = gateway_factory(api_keys=("team-a",))
        with pytest.raises(GatewayError) as exc:
            GatewayClient(port=server.port, api_key="wrong")
        assert exc.value.code == "unauthorized"
        with pytest.raises(GatewayError):
            GatewayClient(port=server.port)  # key required, none given
        with GatewayClient(port=server.port, api_key="team-a") as client:
            assert client.welcome["type"] == "welcome"


class TestSolveRoundTrip:
    def test_submit_streams_events_then_result(self, gateway_factory):
        server = gateway_factory()
        with GatewayClient(port=server.port) as client:
            ack = client.submit({"id": "j1", "dimacs": DIMACS, "seed": 5})
            assert ack["id"] == "j1"
            seen = []
            results = client.drain(["j1"], on_message=seen.append)
        kinds = [m["event"] for m in seen if m["type"] == "event"]
        assert kinds == ["routed", "started", "done"]
        routed = next(m for m in seen if m.get("event") == "routed")
        assert routed["attrs"]["device"] in {"chimera4", "chimera8"}
        assert routed["attrs"]["fits"] in (True, False)
        done = next(m for m in seen if m.get("event") == "done")
        assert done["attrs"]["state"] == "done"
        assert done["attrs"]["cached"] is False
        outcome = results["j1"]
        assert outcome["state"] == "done"
        assert outcome["status"] in ("sat", "unsat")
        assert server.stats.jobs == {"done": 1}

    def test_gateway_solve_bit_identical_to_solo_replay(self, gateway_factory):
        server = gateway_factory()
        with GatewayClient(port=server.port) as client:
            client.submit({"id": "bit", "dimacs": DIMACS, "seed": 9})
            seen = []
            outcome = client.drain(["bit"], on_message=seen.append)["bit"]
        routed = next(m for m in seen if m.get("event") == "routed")
        solo = run_job(
            JobSpec(
                job_id="solo",
                dimacs=DIMACS,
                seed=9,
                topology=routed["attrs"]["topology"],
                grid=routed["attrs"]["grid"],
            )
        )
        for field in ("status", "iterations", "conflicts", "qa_calls", "seed"):
            assert outcome.get(field) == getattr(solo, field), field
        assert outcome.get("model") == solo.model
        assert outcome.get("qpu_time_us") == pytest.approx(solo.qpu_time_us)

    def test_pinned_placement_skips_routing(self, gateway_factory):
        server = gateway_factory()
        with GatewayClient(port=server.port) as client:
            client.submit(
                {"id": "pin", "dimacs": DIMACS, "seed": 5, "topology": "chimera", "grid": 8}
            )
            seen = []
            outcome = client.drain(["pin"], on_message=seen.append)["pin"]
        kinds = [m["event"] for m in seen if m["type"] == "event"]
        assert kinds == ["started", "done"]  # no routed event for a pinned job
        assert outcome["state"] == "done"

    def test_multiple_jobs_one_connection(self, gateway_factory):
        server = gateway_factory(workers=2)
        ids = [f"m{i}" for i in range(3)]
        with GatewayClient(port=server.port) as client:
            for index, job_id in enumerate(ids):
                client.submit({"id": job_id, "dimacs": DIMACS, "seed": index})
            results = client.drain(ids)
        assert set(results) == set(ids)
        assert all(r["state"] == "done" for r in results.values())
        assert server.stats.jobs == {"done": 3}

    def test_ping_and_clean_goodbye(self, gateway_factory):
        server = gateway_factory()
        client = GatewayClient(port=server.port)
        assert client.ping(nonce=42)["nonce"] == 42
        goodbye = client.close()
        assert goodbye is not None and goodbye["type"] == "goodbye"

    def test_rate_limit_rejects_with_retry_after(self, gateway_factory):
        server = gateway_factory(rate_per_s=0.001, burst=1)
        with GatewayClient(port=server.port) as client:
            client.submit({"id": "ok", "dimacs": DIMACS, "seed": 1})
            with pytest.raises(GatewayReject) as exc:
                client.submit({"id": "denied", "dimacs": DIMACS, "seed": 2})
            assert exc.value.code == "rate_limited"
            assert exc.value.retry_after_s > 0
            client.drain(["ok"])
        assert server.stats.rate_limited == 1

    def test_cancel_unknown_job_rejects(self, gateway_factory):
        server = gateway_factory()
        with GatewayClient(port=server.port) as client:
            with pytest.raises(GatewayReject) as exc:
                client.cancel("never-submitted")
            assert exc.value.code == "unknown_job"


class TestResultCache:
    def test_second_submit_served_from_cache(self, gateway_factory, tmp_path):
        server = gateway_factory(cache_db=str(tmp_path / "gw.sqlite"))
        with GatewayClient(port=server.port) as client:
            client.submit({"id": "c1", "dimacs": DIMACS, "seed": 5})
            first = client.drain(["c1"])["c1"]
            client.submit({"id": "c2", "dimacs": DIMACS, "seed": 5})
            seen = []
            second = client.drain(["c2"], on_message=seen.append)["c2"]
        done = next(m for m in seen if m.get("event") == "done")
        assert done["attrs"]["cached"] is True
        assert second["cached"] is True and second["cache_kind"] == "exact"
        for field in (
            "status", "model", "iterations", "conflicts",
            "qa_calls", "qpu_time_us",
        ):
            assert second.get(field) == first.get(field), field
        assert server.cache.stats.hits == 1

    def test_cache_hits_never_charge_the_ledger(
        self, gateway_factory, tmp_path
    ):
        server = gateway_factory(cache_db=str(tmp_path / "gw.sqlite"))
        with GatewayClient(port=server.port) as client:
            client.submit({"id": "b1", "dimacs": DIMACS, "seed": 5})
            client.drain(["b1"])
            spent_after_first = server.ledger.spent_us(None)
            assert spent_after_first > 0
            client.submit({"id": "b2", "dimacs": DIMACS, "seed": 5})
            client.drain(["b2"])
        assert server.ledger.spent_us(None) == spent_after_first


class StubConnection:
    """Duck-typed _Connection capturing sends, no socket underneath."""

    def __init__(self, tenant=None):
        self.tenant = tenant
        self.job_ids = set()
        self.sent = []
        self.closed = False

    async def send(self, message):
        self.sent.append(message)


class TestAdmissionMapping:
    """AdmissionError -> wire code mapping, raced against nothing:
    the dispatcher is never started, so queue state is exactly what
    the submits left behind."""

    def make_server(self, **kwargs) -> GatewayServer:
        kwargs.setdefault("fleet", "chimera:8")
        return GatewayServer(GatewayConfig(port=0, **kwargs))

    def submit(self, server, conn, job_id, **extra):
        payload = protocol.submit({"id": job_id, "dimacs": DIMACS, **extra})
        asyncio.run(server._handle_submit(conn, payload))
        return conn.sent[-1]

    def test_full_queue_maps_to_backpressure(self):
        server = self.make_server(max_depth=1, retry_after_s=2.5)
        conn = StubConnection()
        assert self.submit(server, conn, "a")["type"] == "ack"
        reply = self.submit(server, conn, "b")
        assert reply["type"] == "reject"
        assert reply["code"] == "backpressure"
        assert reply["retry_after_s"] == 2.5
        assert server.stats.backpressure_rejects == 1

    def test_adaptive_retry_after_scales_with_depth(self):
        server = self.make_server(max_depth=2, workers=2)
        conn = StubConnection()
        self.submit(server, conn, "a")
        self.submit(server, conn, "b")
        reply = self.submit(server, conn, "c")
        assert reply["code"] == "backpressure"
        # (depth 2 + 1) * 1.0s initial EWMA / 2 workers
        assert reply["retry_after_s"] == pytest.approx(1.5)

    def test_duplicate_id_maps_to_duplicate(self):
        server = self.make_server()
        conn = StubConnection()
        self.submit(server, conn, "same")
        reply = self.submit(server, conn, "same")
        assert reply["type"] == "reject"
        assert reply["code"] == "duplicate_id"

    def test_draining_rejects_new_work(self):
        server = self.make_server()
        server._draining = True
        reply = self.submit(server, StubConnection(), "late")
        assert reply["code"] == "shutting_down"

    def test_quota_exhaustion_rejects(self):
        server = self.make_server(tenant_budget_us=10.0)
        conn = StubConnection(tenant="team-a")
        server.ledger.charge("team-a", 10.0)
        reply = self.submit(server, conn, "over")
        assert reply["code"] == "quota_exhausted"
        assert server.stats.quota_denied == 1

    def test_malformed_job_rejects_without_crashing(self):
        server = self.make_server()
        conn = StubConnection()
        asyncio.run(server._handle_submit(conn, {"type": "submit", "job": "nope"}))
        assert conn.sent[-1]["code"] == "bad_message"
        asyncio.run(
            server._handle_submit(conn, protocol.submit({"id": "x"}))
        )  # neither file nor dimacs
        assert conn.sent[-1]["type"] == "reject"

    def test_cancel_queued_job_streams_cancelled_result(self):
        server = self.make_server()
        conn = StubConnection()
        self.submit(server, conn, "doomed")
        asyncio.run(server._handle_cancel(conn, protocol.cancel("doomed")))
        result = conn.sent[-1]
        assert result["type"] == "result"
        assert result["outcome"]["state"] == "cancelled"
        assert server.stats.jobs == {"cancelled": 1}
