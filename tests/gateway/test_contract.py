"""docs/GATEWAY.md contract: the doc must cover the whole protocol.

The protocol module is the in-code twin of docs/GATEWAY.md the way
``observability.schema`` twins docs/TELEMETRY.md: every message type,
stream event, error code, and the protocol version string declared in
:mod:`repro.gateway.protocol` must appear (backtick-quoted) in the
doc, and every ``hyqsat gateway`` / ``hyqsat connect`` flag must be
mentioned — so neither the wire surface nor the CLI can grow
undocumented.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.gateway.protocol import (
    CLIENT_MESSAGE_TYPES,
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    SERVER_MESSAGE_TYPES,
    STREAM_EVENTS,
)
from repro.gateway.server import GatewayConfig

REPO_ROOT = Path(__file__).resolve().parents[2]
GATEWAY_DOC = REPO_ROOT / "docs" / "GATEWAY.md"


@pytest.fixture(scope="module")
def doc_text() -> str:
    return GATEWAY_DOC.read_text(encoding="utf-8")


def _subcommand_flags(name: str):
    parser = build_parser()
    for action in parser._actions:
        choices = getattr(action, "choices", None)
        if choices and name in choices:
            return sorted(
                flag
                for sub_action in choices[name]._actions
                for flag in sub_action.option_strings
                if flag.startswith("--") and flag != "--help"
            )
    raise AssertionError(f"no {name!r} subcommand")


class TestProtocolCoverage:
    def test_doc_exists(self):
        assert GATEWAY_DOC.exists()

    def test_version_string_documented(self, doc_text):
        assert PROTOCOL_VERSION in doc_text

    @pytest.mark.parametrize("kind", CLIENT_MESSAGE_TYPES)
    def test_client_message_types_documented(self, doc_text, kind):
        assert f"`{kind}`" in doc_text, f"client message {kind!r} undocumented"

    @pytest.mark.parametrize("kind", SERVER_MESSAGE_TYPES)
    def test_server_message_types_documented(self, doc_text, kind):
        assert f"`{kind}`" in doc_text, f"server message {kind!r} undocumented"

    @pytest.mark.parametrize("name", STREAM_EVENTS)
    def test_stream_events_documented(self, doc_text, name):
        assert f"`{name}`" in doc_text, f"stream event {name!r} undocumented"

    @pytest.mark.parametrize("code", ERROR_CODES)
    def test_error_codes_documented(self, doc_text, code):
        assert f"`{code}`" in doc_text, f"error code {code!r} undocumented"

    def test_line_cap_documented(self, doc_text):
        assert f"{MAX_LINE_BYTES // (1024 * 1024)} MiB" in doc_text


class TestCliCoverage:
    def test_every_gateway_flag_documented(self, doc_text):
        missing = [f for f in _subcommand_flags("gateway") if f not in doc_text]
        assert not missing, f"gateway flags undocumented in GATEWAY.md: {missing}"

    def test_every_connect_flag_documented(self, doc_text):
        missing = [f for f in _subcommand_flags("connect") if f not in doc_text]
        assert not missing, f"connect flags undocumented in GATEWAY.md: {missing}"

    def test_gateway_flags_cover_config_knobs(self):
        """Each GatewayConfig field is reachable from the CLI."""
        flags = set(_subcommand_flags("gateway"))
        expected = {
            "host": "--host",
            "port": "--port",
            "workers": "--jobs",
            "max_depth": "--max-depth",
            "fleet": "--fleet",
            "rate_per_s": "--rate-per-s",
            "burst": "--burst",
            "tenant_budget_us": "--tenant-budget-us",
            "api_keys": "--api-keys",
            "retry_after_s": "--retry-after-s",
            "drain_grace_s": "--drain-grace-s",
            "qpu_budget_us": "--qpu-budget-us",
            "cache_db": "--cache-db",
            "cache_cap": "--cache-cap",
        }
        assert set(expected) == set(GatewayConfig.__dataclass_fields__)
        missing = [flag for flag in expected.values() if flag not in flags]
        assert not missing, f"config knobs without CLI flags: {missing}"
