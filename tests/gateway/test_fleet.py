"""Fleet spec parsing and topology-aware routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.gateway.fleet import FleetRouter, GatewayQpu, parse_fleet_spec
from repro.service.scheduler import QpuScheduler


class TestParseFleetSpec:
    def test_single_atom_with_default_grid(self):
        (qpu,) = parse_fleet_spec("chimera")
        assert qpu == GatewayQpu(name="chimera16", topology="chimera", grid=16)
        assert qpu.num_qubits == 2048

    def test_mixed_fleet(self):
        names = [q.name for q in parse_fleet_spec("chimera:8,pegasus:8,chimera:16")]
        assert names == ["chimera8", "pegasus8", "chimera16"]

    def test_repeats_get_suffixes(self):
        names = [q.name for q in parse_fleet_spec("chimera:8,chimera:8,chimera:8")]
        assert names == ["chimera8", "chimera8-2", "chimera8-3"]

    @pytest.mark.parametrize("spec", ["zephyr:8", "chimera:zero", "chimera:0", "", ","])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_fleet_spec(spec)

    def test_describe_matches_welcome_shape(self):
        (qpu,) = parse_fleet_spec("pegasus:4")
        assert qpu.describe() == {
            "device": "pegasus4",
            "topology": "pegasus",
            "grid": 4,
            "qubits": 128,
        }


@pytest.fixture(scope="module")
def router():
    return FleetRouter(parse_fleet_spec("chimera:4,pegasus:4,chimera:8"))


class TestRouting:
    def test_small_formula_lands_on_smallest_device(self, router):
        formula = random_3sat(6, 12, np.random.default_rng(1))
        decision = router.route(formula)
        assert decision.fits
        # pegasus4 and chimera4 tie on qubit count; the denser lattice
        # is probed first and fits, so the job must not reach chimera8.
        assert decision.qpu.grid == 4

    def test_medium_formula_escalates_to_larger_device(self, router):
        formula = random_3sat(10, 30, np.random.default_rng(1))
        decision = router.route(formula)
        assert decision.fits
        assert decision.qpu.name == "chimera8"
        assert decision.embedded_clauses == decision.total_clauses == 30

    def test_oversized_formula_falls_back_to_best_partial(self, router):
        formula = random_3sat(30, 129, np.random.default_rng(1))
        decision = router.route(formula)
        assert not decision.fits
        assert 0 < decision.embedded_clauses < decision.total_clauses
        assert decision.qpu.name == "chimera8"  # most clauses placed
        assert router.stats.fallbacks >= 1

    def test_probe_cache_hits_on_identical_formula(self, router):
        formula = random_3sat(6, 12, np.random.default_rng(1))
        before = dict(router._probe_cache)
        first = router.route(formula)
        second = router.route(formula)
        assert first == second
        assert router._probe_cache.keys() >= before.keys()
        # Second route added no probes: every (fingerprint, device)
        # pair was already memoised.
        assert len(router._probe_cache) == len(before) or router.stats.routed

    def test_routing_counts_accumulate(self, router):
        total = sum(router.stats.routed.values())
        assert total >= 3

    def test_each_device_owns_a_scheduler(self, router):
        schedulers = {id(router.scheduler_for(q)) for q in router.qpus}
        assert len(schedulers) == len(router.qpus)
        assert all(
            isinstance(router.scheduler_for(q), QpuScheduler) for q in router.qpus
        )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetRouter([])
