"""Tests for the ResilientDevice proxy (retry/backoff/deadline/budget)."""

import pytest

from repro.annealer.device import AnnealerDevice, AnnealRequest
from repro.annealer.faults import FaultModel
from repro.core.config import BreakerPolicy, ResilienceConfig, RetryPolicy
from repro.embedding.hyqsat_embed import HyQSatEmbedder
from repro.qubo.encoding import encode_formula
from repro.qubo.normalization import normalize
from repro.resilience import QaUnavailable, ResilientDevice
from repro.sat.cnf import Clause


def _request(clauses, n, hardware, num_reads=1):
    enc = encode_formula(clauses, n)
    norm_obj, d = normalize(enc.objective)
    emb = HyQSatEmbedder(hardware).embed(enc)
    assert emb.success
    return AnnealRequest(
        objective=norm_obj,
        embedding=emb.embedding,
        edge_couplers=emb.edge_couplers,
        energy_scale=d,
        num_reads=num_reads,
    )


def _faulty(hardware, model, fault_seed=0, **device_kwargs):
    return AnnealerDevice(
        hardware, faults=model, fault_seed=fault_seed, **device_kwargs
    )


class TestDelegation:
    def test_passive_attributes_delegate(self, small_hardware):
        inner = AnnealerDevice(small_hardware, chain_strength=2.5)
        proxy = ResilientDevice(inner)
        assert proxy.hardware is inner.hardware
        assert proxy.timing is inner.timing
        assert proxy.chain_strength == 2.5
        assert proxy.sampler_config is inner.sampler_config  # __getattr__

    def test_fault_free_call_passes_through(self, small_hardware):
        proxy = ResilientDevice(AnnealerDevice(small_hardware, seed=0))
        result = proxy.run(_request([Clause([1, 2])], 2, small_hardware))
        assert result.best.energy == pytest.approx(0.0, abs=1e-9)
        assert proxy.stats.calls == 1
        assert proxy.stats.successes == 1
        assert proxy.stats.retries == 0
        assert proxy.stats.retry_trace == [(1, 1, "success", 0.0)]
        assert proxy.stats.budget_spent_us == result.qpu_time_us


class TestRetry:
    def test_transient_faults_are_retried(self, small_hardware):
        # ~50% programming failures: with 4 attempts nearly every call
        # eventually lands; retries must be counted.
        inner = _faulty(
            small_hardware, FaultModel(programming_fail_prob=0.5), fault_seed=2
        )
        proxy = ResilientDevice(inner, ResilienceConfig(seed=0))
        request = _request([Clause([1, 2])], 2, small_hardware)
        served = 0
        for _ in range(20):
            try:
                proxy.run(request)
                served += 1
            except QaUnavailable:
                pass
        assert served >= 18
        assert proxy.stats.retries > 0
        assert proxy.stats.fault_counts.get("programming_error", 0) > 0

    def test_retries_exhausted_is_transient(self, small_hardware):
        inner = _faulty(
            small_hardware, FaultModel(programming_fail_prob=1.0)
        )
        proxy = ResilientDevice(
            inner,
            ResilienceConfig(
                retry=RetryPolicy(max_attempts=2),
                breaker=BreakerPolicy(failure_threshold=10),
            ),
        )
        with pytest.raises(QaUnavailable) as info:
            proxy.run(_request([Clause([1, 2])], 2, small_hardware))
        assert info.value.reason == "retries_exhausted"
        assert not info.value.persistent
        assert proxy.stats.attempts == 2
        assert proxy.stats.retries == 1

    def test_backoff_charged_to_budget(self, small_hardware):
        inner = _faulty(
            small_hardware, FaultModel(programming_fail_prob=1.0)
        )
        proxy = ResilientDevice(
            inner,
            ResilienceConfig(
                retry=RetryPolicy(
                    max_attempts=3, base_backoff_us=50.0, max_backoff_us=500.0
                ),
                breaker=BreakerPolicy(failure_threshold=10),
            ),
        )
        with pytest.raises(QaUnavailable):
            proxy.run(_request([Clause([1, 2])], 2, small_hardware))
        assert proxy.stats.backoff_us > 0
        # Budget = 2 programming charges... plus the backoffs; the
        # final attempt also charges programming time.
        expected = 3 * proxy.timing.programming_us + proxy.stats.backoff_us
        assert proxy.stats.budget_spent_us == pytest.approx(expected)

    def test_retry_trace_is_deterministic(self, small_hardware):
        model = FaultModel.uniform(0.3)
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=4)

        def trace():
            proxy = ResilientDevice(
                _faulty(small_hardware, model, fault_seed=5),
                ResilienceConfig(seed=11),
            )
            for _ in range(15):
                try:
                    proxy.run(request)
                except QaUnavailable:
                    pass
            return proxy.stats.retry_trace

        assert trace() == trace()


class TestPartialReads:
    def test_partial_reads_salvaged(self, small_hardware):
        inner = _faulty(
            small_hardware,
            FaultModel(readout_timeout_prob=1.0),
            fault_seed=3,
        )
        proxy = ResilientDevice(inner, ResilienceConfig())
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=8)
        # Find a call whose timeout leaves at least one read.
        for _ in range(10):
            try:
                result = proxy.run(request)
                break
            except QaUnavailable:
                continue
        else:
            pytest.fail("no partial read was ever salvaged")
        assert 1 <= len(result.samples) < 8
        assert result.dropped_reads == 8 - len(result.samples)
        assert proxy.stats.partial_accepted >= 1

    def test_partial_reads_rejected_when_disabled(self, small_hardware):
        inner = _faulty(
            small_hardware,
            FaultModel(readout_timeout_prob=1.0),
            fault_seed=3,
        )
        proxy = ResilientDevice(
            inner,
            ResilienceConfig(
                accept_partial_reads=False,
                retry=RetryPolicy(max_attempts=2),
                breaker=BreakerPolicy(failure_threshold=100),
            ),
        )
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=8)
        with pytest.raises(QaUnavailable):
            proxy.run(request)
        assert proxy.stats.partial_accepted == 0


class TestCalibrationDrift:
    def test_recalibrates_and_retries(self, small_hardware):
        # Drift accumulates 0.06 per call: the second call crosses the
        # 0.1 threshold, the proxy recalibrates, and the retry (drift
        # back down to 0.06) succeeds.
        inner = _faulty(
            small_hardware,
            FaultModel(
                drift_onset_prob=1.0,
                drift_bias_step=0.06,
                drift_fail_threshold=0.1,
            ),
        )
        proxy = ResilientDevice(inner, ResilienceConfig())
        request = _request([Clause([1, 2])], 2, small_hardware)
        proxy.run(request)  # in calibration
        result = proxy.run(request)  # drift -> recalibrate -> retry -> ok
        assert result.samples
        assert proxy.stats.recalibrations >= 1
        assert proxy.stats.fault_counts.get("calibration_drift", 0) >= 1

    def test_drift_persistent_when_recalibration_disabled(self, small_hardware):
        inner = _faulty(
            small_hardware,
            FaultModel(
                drift_onset_prob=1.0,
                drift_bias_step=0.2,
                drift_fail_threshold=0.1,
            ),
        )
        proxy = ResilientDevice(
            inner, ResilienceConfig(recalibrate_on_drift=False)
        )
        with pytest.raises(QaUnavailable) as info:
            proxy.run(_request([Clause([1, 2])], 2, small_hardware))
        assert info.value.reason == "calibration_drift"
        assert info.value.persistent


class TestDeadline:
    def test_deadline_truncates_reads(self, small_hardware):
        proxy = ResilientDevice(
            AnnealerDevice(small_hardware, seed=0),
            # programming 10 + (anneal 20 + readout 110) per read,
            # +20 inter-sample between reads: 3 reads fit in 460us.
            ResilienceConfig(call_deadline_us=460.0),
        )
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=10)
        result = proxy.run(request)
        assert len(result.samples) == 3
        assert proxy.stats.truncated_calls == 1
        assert result.qpu_time_us <= 460.0

    def test_deadline_that_fits_nothing_is_persistent(self, small_hardware):
        proxy = ResilientDevice(
            AnnealerDevice(small_hardware, seed=0),
            ResilienceConfig(call_deadline_us=50.0),
        )
        with pytest.raises(QaUnavailable) as info:
            proxy.run(_request([Clause([1, 2])], 2, small_hardware))
        assert info.value.reason == "deadline"
        assert info.value.persistent

    def test_generous_deadline_leaves_request_alone(self, small_hardware):
        proxy = ResilientDevice(
            AnnealerDevice(small_hardware, seed=0),
            ResilienceConfig(call_deadline_us=1e6),
        )
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=4)
        result = proxy.run(request)
        assert len(result.samples) == 4
        assert proxy.stats.truncated_calls == 0


class TestBudget:
    def test_budget_exhaustion_is_persistent(self, small_hardware):
        proxy = ResilientDevice(
            AnnealerDevice(small_hardware, seed=0),
            ResilienceConfig(qa_budget_us=500.0),
        )
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=2)
        proxy.run(request)  # 10 + 2*130 + 1*20 = 290us
        with pytest.raises(QaUnavailable) as info:
            proxy.run(request)  # another 290us does not fit in 500
        assert info.value.reason == "budget_exhausted"
        assert info.value.persistent
        assert proxy.budget_remaining_us() == pytest.approx(210.0)

    def test_unlimited_budget_by_default(self, small_hardware):
        proxy = ResilientDevice(AnnealerDevice(small_hardware, seed=0))
        assert proxy.budget_remaining_us() == float("inf")


class TestBreakerIntegration:
    def test_consecutive_failures_open_the_breaker(self, small_hardware):
        inner = _faulty(
            small_hardware, FaultModel(programming_fail_prob=1.0)
        )
        proxy = ResilientDevice(
            inner,
            ResilienceConfig(
                retry=RetryPolicy(max_attempts=1),
                breaker=BreakerPolicy(failure_threshold=3),
            ),
        )
        request = _request([Clause([1, 2])], 2, small_hardware)
        reasons = []
        for _ in range(5):
            with pytest.raises(QaUnavailable) as info:
                proxy.run(request)
            reasons.append(info.value.reason)
        assert reasons == [
            "retries_exhausted",
            "retries_exhausted",
            "breaker_open",  # third failure opens it...
            "breaker_open",  # ...and later calls are refused outright
            "breaker_open",
        ]
        # Refused calls never reach the inner device.
        assert proxy.stats.attempts == 3
        assert proxy.breaker_state == "open"

    def test_force_degraded_refuses_everything(self, small_hardware):
        proxy = ResilientDevice(AnnealerDevice(small_hardware, seed=0))
        proxy.force_degraded()
        with pytest.raises(QaUnavailable) as info:
            proxy.run(_request([Clause([1, 2])], 2, small_hardware))
        assert info.value.reason == "breaker_open"
        assert proxy.stats.attempts == 0
