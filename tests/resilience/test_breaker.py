"""Tests for the circuit breaker state machine."""

from repro.core.config import BreakerPolicy
from repro.resilience.breaker import BreakerState, CircuitBreaker


class FakeClock:
    """A settable modelled-microseconds clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, us):
        self.now += us


def _breaker(threshold=3, cooldown=100.0, probes=1):
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerPolicy(
            failure_threshold=threshold,
            cooldown_us=cooldown,
            half_open_probes=probes,
        ),
        clock=clock,
    )
    return breaker, clock


def test_starts_closed_and_allows():
    breaker, _ = _breaker()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()
    assert not breaker.is_open


def test_opens_after_consecutive_failures():
    breaker, _ = _breaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()


def test_success_resets_the_consecutive_count():
    breaker, _ = _breaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_half_open_after_cooldown_then_closes_on_success():
    breaker, clock = _breaker(threshold=1, cooldown=100.0)
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    clock.advance(99.0)
    assert not breaker.allow()
    clock.advance(1.0)
    assert breaker.allow()  # the probe call
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


def test_half_open_failure_reopens_and_restarts_cooldown():
    breaker, clock = _breaker(threshold=1, cooldown=100.0)
    breaker.record_failure()
    clock.advance(100.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    # The cooldown restarts from the reopen instant.
    clock.advance(99.0)
    assert not breaker.allow()
    clock.advance(1.0)
    assert breaker.allow()


def test_multiple_probes_required_to_close():
    breaker, clock = _breaker(threshold=1, cooldown=10.0, probes=2)
    breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


def test_force_open_never_recovers():
    breaker, clock = _breaker(threshold=5, cooldown=1.0)
    breaker.force_open()
    assert breaker.is_open
    clock.advance(1e9)
    assert not breaker.allow()
    breaker.record_success()
    assert breaker.is_open


def test_transitions_recorded_with_clock_stamps():
    breaker, clock = _breaker(threshold=1, cooldown=50.0)
    clock.advance(7.0)
    breaker.record_failure()
    clock.advance(50.0)
    breaker.allow()
    breaker.record_success()
    assert breaker.transitions == [
        (7.0, BreakerState.CLOSED, BreakerState.OPEN),
        (57.0, BreakerState.OPEN, BreakerState.HALF_OPEN),
        (57.0, BreakerState.HALF_OPEN, BreakerState.CLOSED),
    ]
