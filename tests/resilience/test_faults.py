"""Tests for the fault model, the injector, and the faulty device."""

import numpy as np
import pytest

from repro.annealer.device import AnnealerDevice, AnnealRequest
from repro.annealer.faults import (
    CalibrationDrift,
    DeviceFault,
    FaultInjector,
    FaultModel,
    ProgrammingError,
    ReadoutTimeout,
    fault_channel,
)
from repro.embedding.hyqsat_embed import HyQSatEmbedder
from repro.qubo.encoding import encode_formula
from repro.qubo.normalization import normalize
from repro.sat.cnf import Clause


def _request(clauses, n, hardware, num_reads=1):
    enc = encode_formula(clauses, n)
    norm_obj, d = normalize(enc.objective)
    emb = HyQSatEmbedder(hardware).embed(enc)
    assert emb.success
    return AnnealRequest(
        objective=norm_obj,
        embedding=emb.embedding,
        edge_couplers=emb.edge_couplers,
        energy_scale=d,
        num_reads=num_reads,
    )


class TestFaultModel:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultModel(programming_fail_prob=1.5)
        with pytest.raises(ValueError):
            FaultModel(read_dropout_prob=-0.1)
        with pytest.raises(ValueError):
            FaultModel(drift_fail_threshold=0.0)

    def test_none_is_faultless(self):
        assert FaultModel.none().is_faultless
        assert not FaultModel.uniform(0.1).is_faultless

    def test_uniform_sets_every_channel(self):
        model = FaultModel.uniform(0.25)
        assert model.programming_fail_prob == 0.25
        assert model.readout_timeout_prob == 0.25
        assert model.read_dropout_prob == 0.25
        assert model.drift_onset_prob == 0.25

    def test_fault_channel_names(self):
        assert fault_channel(ProgrammingError("x")) == "programming_error"
        assert fault_channel(ReadoutTimeout("x")) == "readout_timeout"
        assert fault_channel(CalibrationDrift("x")) == "calibration_drift"
        assert fault_channel(DeviceFault("x")) == "device_fault"


class TestFaultInjector:
    def test_identical_seed_replays_identical_decisions(self):
        model = FaultModel.uniform(0.3)
        a = FaultInjector(model, seed=7)
        b = FaultInjector(model, seed=7)
        for _ in range(50):
            assert a.begin_call(8) == b.begin_call(8)

    def test_different_seeds_diverge(self):
        model = FaultModel.uniform(0.3)
        a = FaultInjector(model, seed=1)
        b = FaultInjector(model, seed=2)
        decisions_a = [a.begin_call(8) for _ in range(50)]
        decisions_b = [b.begin_call(8) for _ in range(50)]
        assert decisions_a != decisions_b

    def test_drift_persists_until_recalibration(self):
        model = FaultModel(drift_onset_prob=1.0, drift_bias_step=0.05)
        injector = FaultInjector(model, seed=0)
        first = injector.begin_call(1)
        second = injector.begin_call(1)
        assert abs(first.drift) == pytest.approx(0.05)
        assert abs(second.drift) == pytest.approx(0.10)
        # Direction is drawn once and held.
        assert np.sign(second.drift) == np.sign(first.drift)
        injector.recalibrate()
        assert injector.drift == 0.0
        assert not injector.drifted_out

    def test_drifted_out_crosses_threshold(self):
        model = FaultModel(
            drift_onset_prob=1.0, drift_bias_step=0.06, drift_fail_threshold=0.1
        )
        injector = FaultInjector(model, seed=0)
        injector.begin_call(1)
        assert not injector.drifted_out
        injector.begin_call(1)
        assert injector.drifted_out


class TestFaultyDevice:
    def test_faultless_model_disables_injection(self, small_hardware):
        device = AnnealerDevice(small_hardware, faults=FaultModel.none())
        assert device.fault_injector is None

    def test_programming_error_raised(self, small_hardware):
        device = AnnealerDevice(
            small_hardware,
            faults=FaultModel(programming_fail_prob=1.0),
            fault_seed=0,
        )
        with pytest.raises(ProgrammingError):
            device.run(_request([Clause([1, 2])], 2, small_hardware))

    def test_readout_timeout_carries_partial_reads(self, small_hardware):
        device = AnnealerDevice(
            small_hardware,
            faults=FaultModel(readout_timeout_prob=1.0),
            fault_seed=3,
        )
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=6)
        with pytest.raises(ReadoutTimeout) as info:
            device.run(request)
        fault = info.value
        assert 0 <= len(fault.partial) < 6
        assert fault.elapsed_us == device.timing.total_us(6)

    def test_calibration_drift_persists_until_recalibrate(self, small_hardware):
        device = AnnealerDevice(
            small_hardware,
            faults=FaultModel(
                drift_onset_prob=1.0,
                drift_bias_step=0.06,
                drift_fail_threshold=0.1,
            ),
            fault_seed=0,
        )
        request = _request([Clause([1, 2])], 2, small_hardware)
        device.run(request)  # first call drifts but stays in range
        with pytest.raises(CalibrationDrift):
            device.run(request)
        with pytest.raises(CalibrationDrift):
            device.run(request)  # persists across calls
        device.recalibrate()
        device.run(request)  # back in calibration

    def test_dropped_reads_counted(self, small_hardware):
        device = AnnealerDevice(
            small_hardware,
            faults=FaultModel(read_dropout_prob=0.5),
            fault_seed=1,
        )
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=12)
        result = device.run(request)
        assert result.dropped_reads > 0
        assert len(result.samples) + result.dropped_reads == 12
        # Time is billed for the dropped reads too.
        assert result.qpu_time_us == device.timing.total_us(12)

    def test_same_fault_seed_same_fault_sequence(self, small_hardware):
        model = FaultModel.uniform(0.4)
        request = _request([Clause([1, 2])], 2, small_hardware, num_reads=4)

        def trace(seed):
            device = AnnealerDevice(
                small_hardware, faults=model, fault_seed=seed
            )
            out = []
            for _ in range(20):
                try:
                    result = device.run(request)
                    out.append(("ok", len(result.samples)))
                except DeviceFault as fault:
                    out.append((fault_channel(fault), None))
            return out

        assert trace(9) == trace(9)


class TestRequestValidationHardening:
    def test_non_finite_energy_scale_rejected(self, small_hardware):
        req = _request([Clause([1, 2])], 2, small_hardware)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                AnnealRequest(
                    req.objective, req.embedding, req.edge_couplers, bad
                )

    def test_zero_variable_objective_rejected(self, small_hardware):
        from repro.qubo.ising import QuadraticObjective

        req = _request([Clause([1, 2])], 2, small_hardware)
        with pytest.raises(ValueError, match="no variables"):
            AnnealRequest(
                QuadraticObjective(), req.embedding, req.edge_couplers, 1.0
            )

    def test_empty_embedding_rejected(self, small_hardware):
        from repro.embedding.base import Embedding

        req = _request([Clause([1, 2])], 2, small_hardware)
        with pytest.raises(ValueError, match="empty"):
            AnnealRequest(req.objective, Embedding({}), req.edge_couplers, 1.0)

    def test_missing_chain_rejected(self, small_hardware):
        from repro.embedding.base import Embedding

        req = _request([Clause([1, 2])], 2, small_hardware)
        some_var = sorted(req.objective.variables)[0]
        chains = {
            v: req.embedding.chain_of(v)
            for v in req.embedding
            if v != some_var
        }
        with pytest.raises(ValueError, match="without a chain"):
            AnnealRequest(
                req.objective, Embedding(chains), req.edge_couplers, 1.0
            )

    def test_empty_chain_rejected(self, small_hardware):
        from repro.embedding.base import Embedding

        req = _request([Clause([1, 2])], 2, small_hardware)
        broken = Embedding(req.embedding.chains)
        # Embedding.set_chain refuses empty chains, so corrupt the
        # internal map directly to exercise the request-level guard.
        broken._chains[sorted(req.objective.variables)[0]] = ()
        with pytest.raises(ValueError, match="empty chains"):
            AnnealRequest(
                req.objective, broken, req.edge_couplers, 1.0
            )
