"""End-to-end robustness: the hybrid solver under injected faults.

The acceptance bar of the resilience layer: with every fault channel
firing, ``HyQSatSolver.solve`` never raises, always returns the same
SAT/UNSAT verdict as classic CDCL, and with the breaker forced open it
is *bit-identical* to classic CDCL.
"""

import dataclasses

import numpy as np
import pytest

from repro.annealer.device import AnnealerDevice
from repro.annealer.faults import FaultModel
from repro.benchgen.random_ksat import random_3sat
from repro.cdcl.solver import CdclSolver, SolverConfig
from repro.core.config import (
    BreakerPolicy,
    HyQSatConfig,
    ResilienceConfig,
    RetryPolicy,
)
from repro.core.hyqsat import HyQSatSolver
from repro.resilience import ResilientDevice
from repro.topology.chimera import ChimeraGraph

HARDWARE = ChimeraGraph(8, 8, 4)

CHANNELS = {
    "programming": FaultModel(programming_fail_prob=0.2),
    "timeout": FaultModel(readout_timeout_prob=0.2),
    "dropout": FaultModel(read_dropout_prob=0.2),
    "drift": FaultModel(drift_onset_prob=0.2),
    "combined": FaultModel.uniform(0.1),
}


def _formula(seed):
    return random_3sat(20, 85, np.random.default_rng(seed))


def _hybrid(formula, model, fault_seed=0, config=None, resilience=None):
    device = ResilientDevice(
        AnnealerDevice(
            HARDWARE, seed=0, faults=model, fault_seed=fault_seed
        ),
        resilience or ResilienceConfig(seed=fault_seed),
    )
    return HyQSatSolver(
        formula,
        device=device,
        config=config or HyQSatConfig(num_reads=3),
    )


@pytest.mark.parametrize("channel", sorted(CHANNELS))
@pytest.mark.parametrize("formula_seed", [0, 1])
def test_soak_verdict_matches_cdcl(channel, formula_seed):
    formula = _formula(formula_seed)
    truth = CdclSolver(formula, config=SolverConfig()).solve()

    solver = _hybrid(formula, CHANNELS[channel], fault_seed=formula_seed)
    result = solver.solve()  # must never raise

    assert result.status is truth.status
    if result.model is not None:
        assert all(
            result.model.satisfies_clause(c) for c in formula.clauses
        )
    hybrid = result.hybrid
    # Invariants must hold with failed calls excluded from qa_calls.
    assert hybrid.qa_calls == sum(hybrid.strategy_counts.values())
    assert hybrid.qa_calls == len(hybrid.energies)
    assert hybrid.qa_failures >= 0
    assert 0.0 <= hybrid.qa_availability <= 1.0


def test_soak_unsat_verdict_survives_faults(tiny_unsat_formula):
    solver = _hybrid(tiny_unsat_formula, FaultModel.uniform(0.2))
    result = solver.solve()
    assert result.is_unsat if hasattr(result, "is_unsat") else True
    assert result.status.name == "UNSAT"


def test_counters_reach_hybrid_stats():
    formula = _formula(3)
    solver = _hybrid(formula, FaultModel.uniform(0.25), fault_seed=4)
    hybrid = solver.solve().hybrid
    attempted = hybrid.qa_calls + hybrid.qa_failures
    assert attempted > 0
    assert hybrid.qa_budget_spent_us > 0
    assert hybrid.breaker_state in {"closed", "open", "half_open"}
    if hybrid.qa_failures:
        assert hybrid.qa_fault_counts or hybrid.qa_unavailable
    # The analysis summary consumes the same counters.
    from repro.analysis import resilience_summary

    summary = resilience_summary(hybrid)
    assert summary["qa_attempted"] == attempted
    assert summary["availability"] == hybrid.qa_availability


def test_breaker_forced_open_is_bit_identical_to_pure_cdcl():
    formula = _formula(5)
    solver = _hybrid(formula, FaultModel.none())
    solver.device.force_degraded()
    hybrid = solver.solve()

    pure = CdclSolver(formula, config=SolverConfig()).solve()
    assert hybrid.status is pure.status
    assert hybrid.model == pure.model
    assert hybrid.stats.iterations == pure.stats.iterations
    assert hybrid.stats.conflicts == pure.stats.conflicts
    assert hybrid.stats.decisions == pure.stats.decisions
    assert hybrid.stats.propagations == pure.stats.propagations
    assert hybrid.hybrid.qa_calls == 0
    assert hybrid.hybrid.degraded
    assert hybrid.hybrid.degraded_reason == "breaker_open"
    assert hybrid.hybrid.breaker_state == "open"


def test_budget_exhaustion_degrades_mid_run_without_losing_progress():
    formula = _formula(6)
    solver = _hybrid(
        formula,
        FaultModel.none(),
        resilience=ResilienceConfig(qa_budget_us=2_000.0, seed=0),
        config=HyQSatConfig(num_reads=3),
    )
    result = solver.solve()
    truth = CdclSolver(formula, config=SolverConfig()).solve()
    assert result.status is truth.status
    hybrid = result.hybrid
    if hybrid.degraded:
        assert hybrid.degraded_reason == "budget_exhausted"
        assert hybrid.qa_budget_spent_us <= 2_000.0


def test_identical_seeds_replay_identically():
    formula = _formula(7)
    model = FaultModel.uniform(0.15)

    def run():
        solver = _hybrid(
            formula,
            model,
            fault_seed=9,
            resilience=ResilienceConfig(
                seed=9,
                retry=RetryPolicy(max_attempts=3),
                breaker=BreakerPolicy(failure_threshold=4),
            ),
        )
        result = solver.solve()
        device = solver.device
        return (
            result.status,
            result.model,
            result.stats.iterations,
            result.stats.conflicts,
            tuple(device.stats.retry_trace),
            tuple(device.breaker.transitions),
            result.hybrid.qa_calls,
            result.hybrid.qa_failures,
            result.hybrid.qa_retries,
            result.hybrid.qa_budget_spent_us,
        )

    assert run() == run()


def test_different_fault_seeds_change_the_trace():
    formula = _formula(8)
    model = FaultModel.uniform(0.3)

    def trace(fault_seed):
        solver = _hybrid(formula, model, fault_seed=fault_seed)
        solver.solve()
        return tuple(solver.device.stats.retry_trace)

    # Same verdict either way, but the fault/retry sequence differs.
    assert trace(1) != trace(2)
