"""Fleet failover under chaos: quarantine, probation probes, breaker
HALF_OPEN races, and the all-quarantined cooldown wait."""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealer import parse_fault_spec
from repro.annealer.device import AnnealerDevice
from repro.benchgen.random_ksat import random_3sat
from repro.core.config import BreakerPolicy, ResilienceConfig, RetryPolicy
from repro.resilience import BreakerState, CircuitBreaker, ResilientDevice
from repro.resilience.device import QaUnavailable
from repro.sat import to_dimacs
from repro.service import FleetDevice, FleetPolicy, JobSpec
from repro.service.jobs import run_job

from tests.chaos.conftest import det_view


@pytest.fixture(scope="module")
def storm_formula():
    return to_dimacs(random_3sat(20, 86, np.random.default_rng(5)))


class TestFleetVsSolo:
    def test_healthy_fleet_is_bit_identical_to_solo(self, storm_formula):
        solo = run_job(JobSpec(job_id="s", dimacs=storm_formula, seed=3))
        fleet = run_job(
            JobSpec(job_id="f", dimacs=storm_formula, seed=3, fleet=3)
        )
        assert det_view(fleet) == det_view(solo)

    def test_fleet_survives_a_storm_that_degrades_solo(self, storm_formula):
        faults = dict(
            qa_faults="dropout=0.7",
            fault_seed=11,
            qa_retries=1,
            qa_breaker_threshold=3,
        )
        solo = run_job(
            JobSpec(job_id="s", dimacs=storm_formula, seed=3, **faults)
        )
        fleet = run_job(
            JobSpec(
                job_id="f", dimacs=storm_formula, seed=3, fleet=3, **faults
            )
        )
        assert solo.degraded, "storm should take out the solo device"
        assert not fleet.degraded, "failover should absorb the storm"
        assert fleet.qa_calls > solo.qa_calls
        assert fleet.status == solo.status

    def test_storm_outcomes_are_deterministic(self, storm_formula):
        spec = JobSpec(
            job_id="d",
            dimacs=storm_formula,
            seed=3,
            fleet=3,
            qa_faults="dropout=0.7",
            fault_seed=11,
            qa_retries=1,
            qa_breaker_threshold=3,
        )
        assert det_view(run_job(spec)) == det_view(run_job(spec))


def _member(hardware, fault_spec=None, fault_seed=1, rng_seed=1):
    device = AnnealerDevice(
        hardware,
        seed=0,
        faults=parse_fault_spec(fault_spec) if fault_spec else None,
        fault_seed=fault_seed,
    )
    return ResilientDevice(
        device,
        ResilienceConfig(retry=RetryPolicy(max_attempts=1), seed=rng_seed),
    )


class TestProbeRaces:
    """Direct FleetDevice scenarios around probation and HALF_OPEN."""

    def test_half_open_probe_race_reopens_then_closes_on_heal(
        self, small_hardware, tiny_request
    ):
        bad = _member(small_hardware, "dropout=1.0", fault_seed=1, rng_seed=1)
        good = _member(small_hardware, rng_seed=2)
        fleet = FleetDevice(
            [bad, good],
            FleetPolicy(quarantine_threshold=0.8, cooldown_us=500.0),
        )
        # An outage-style breaker: its cooldown runs on the fleet
        # clock, which keeps advancing while the healthy member
        # serves, so the breaker and the fleet probation window race.
        bad.breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_us=300.0),
            clock=fleet._now_us,
        )
        for _ in range(6):
            fleet.run(tiny_request)
        # The probe raced the HALF_OPEN window, lost (still faulty),
        # reopened the breaker, and re-quarantined the member.
        transitions = [
            (a.value, b.value) for _, a, b in bad.breaker.transitions
        ]
        assert ("closed", "open") in transitions
        assert ("open", "half_open") in transitions
        assert ("half_open", "open") in transitions
        assert fleet._state[0] == "quarantined"
        assert fleet.fleet_stats.probes >= 1
        assert fleet.fleet_stats.quarantines >= 2

        # Heal the member: the next probe's HALF_OPEN attempt succeeds,
        # the breaker closes, and the member reactivates.
        bad.inner.fault_injector = None
        for _ in range(8):
            fleet.run(tiny_request)
        assert bad.breaker.state is BreakerState.CLOSED
        assert fleet._state[0] == "active"
        assert ("half_open", "closed") in [
            (a.value, b.value) for _, a, b in bad.breaker.transitions
        ]

    def test_probe_failure_falls_over_without_losing_the_call(
        self, small_hardware, tiny_request
    ):
        bad = _member(small_hardware, "dropout=1.0", fault_seed=1, rng_seed=1)
        good = _member(small_hardware, rng_seed=2)
        fleet = FleetDevice(
            [bad, good],
            FleetPolicy(quarantine_threshold=0.8, cooldown_us=200.0),
        )
        # Every call is served even while the bad member cycles
        # through quarantine → probation → failed probe.
        for _ in range(12):
            assert fleet.run(tiny_request) is not None
        assert fleet.fleet_stats.probes >= 1
        assert fleet.fleet_stats.quarantines >= 2

    def test_all_quarantined_fleet_waits_out_cooldown_and_recovers(
        self, small_hardware, tiny_request
    ):
        def build():
            bad = _member(
                small_hardware, "dropout=1.0", fault_seed=1, rng_seed=1
            )
            bad.breaker = CircuitBreaker(
                BreakerPolicy(failure_threshold=1, cooldown_us=100.0),
                clock=lambda: bad.stats.budget_spent_us,
            )
            flaky = _member(
                small_hardware, "dropout=0.5", fault_seed=2, rng_seed=2
            )
            return FleetDevice(
                [bad, flaky],
                FleetPolicy(quarantine_threshold=0.8, cooldown_us=500.0),
            )

        def drive(fleet, calls=40):
            served = 0
            for _ in range(calls):
                try:
                    fleet.run(tiny_request)
                except QaUnavailable:
                    continue
                served += 1
            return served

        fleet = build()
        served = drive(fleet)
        # Both members hit quarantine at some point; the modelled
        # clock freezes when nobody attempts, so without the cooldown
        # wait the fleet would refuse every call forever.
        assert fleet.fleet_stats.cooldown_waits >= 1
        assert fleet.fleet_stats.probes >= 1
        assert served >= 5, "the fleet must keep serving through waits"

        rerun = build()
        assert drive(rerun) == served
        assert rerun.fleet_stats == fleet.fleet_stats
        assert rerun.health == fleet.health
