"""Worker-process death: the pool respawns and journaled retries land.

SIGKILLs the live process-pool workers mid-batch and asserts the
service resubmits the in-flight jobs (bounded by
``max_worker_retries``) instead of hanging or failing the batch.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.sat import to_dimacs
from repro.service import JobSpec, read_journal
from repro.service.service import ServiceConfig, SolverService

from tests.chaos.conftest import det_view


def _specs(count=6, num_vars=90):
    return [
        JobSpec(
            job_id=f"j{i}",
            dimacs=to_dimacs(
                random_3sat(
                    num_vars,
                    int(round(num_vars * 4.3)),
                    np.random.default_rng(300 + i),
                )
            ),
            seed=i,
        )
        for i in range(count)
    ]


def _kill_workers(pool, deadline_s=30.0):
    """SIGKILL every live worker process once the pool has spawned."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        processes = dict(getattr(pool._executor, "_processes", {}) or {})
        if processes:
            for pid in processes:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass
            return True
        time.sleep(0.05)
    return False


def test_killed_workers_are_respawned_and_jobs_retried(tmp_path):
    specs = _specs()
    journal = str(tmp_path / "journal.jsonl")
    service = SolverService(
        ServiceConfig(
            workers=2,
            pool_mode="process",
            journal_path=journal,
            max_worker_retries=2,
        )
    )
    outcomes = []
    runner = threading.Thread(
        target=lambda: outcomes.extend(service.run(specs)), daemon=True
    )
    runner.start()
    # Give the coordinator time to dispatch, then murder the workers.
    time.sleep(1.0)
    killed = _kill_workers(service.pool)
    runner.join(timeout=240.0)
    assert not runner.is_alive(), "service hung after worker death"
    assert killed, "no worker processes ever appeared"

    assert [o.job_id for o in outcomes] == [s.job_id for s in specs]
    assert all(o.state == "done" for o in outcomes), [
        (o.job_id, o.state, o.error) for o in outcomes
    ]
    assert service._worker_retries, "the kill landed but nothing retried"
    assert all(
        count <= 2 for count in service._worker_retries.values()
    )
    # Each retry was journaled before resubmission.
    records, _, torn = read_journal(journal)
    assert torn == 0
    retried = [r for r in records if r["k"] == "retry"]
    assert len(retried) == sum(service._worker_retries.values())

    # Retried jobs still produce the canonical deterministic results.
    reference = SolverService(ServiceConfig(workers=2)).run(specs)
    assert [det_view(o) for o in outcomes] == [
        det_view(o) for o in reference
    ]


def test_respawn_is_a_noop_on_a_healthy_pool():
    service = SolverService(ServiceConfig(workers=1, pool_mode="process"))
    try:
        assert service.pool.respawn() is False
    finally:
        service.pool.shutdown()


def test_respawn_refuses_thread_pools():
    service = SolverService(ServiceConfig(workers=1, pool_mode="thread"))
    try:
        assert service.pool.respawn() is False
    finally:
        service.pool.shutdown()
