"""Checkpoint/resume bit-identity on both CDCL engines.

A solve interrupted mid-search (via ``max_conflicts``) leaves a
checkpoint behind; resuming from it must reach the *same* answer with
the *same* cumulative statistics — including the resilience-layer
counters (retries, budget spend, breaker state) that accumulate
before the interruption — as an uninterrupted solve.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.core.config import HyQSatConfig
from repro.core.hyqsat import HyQSatSolver, SolverConfig
from repro.sat import to_dimacs
from repro.service import JobSpec
from repro.service.jobs import build_device

#: Cumulative hybrid counters that must survive a resume exactly.
HYBRID_STATS = (
    "qa_calls",
    "qpu_time_us",
    "qa_retries",
    "qa_failures",
    "qa_budget_spent_us",
    "breaker_state",
    "frontend_cache_hits",
    "frontend_cache_misses",
)

SEED = 0


@pytest.fixture(scope="module")
def formula():
    return random_3sat(90, 387, np.random.default_rng(1))


def _solve(formula, engine, checkpoint_path, max_conflicts=None):
    """One solve on the device stack ``hyqsat solve`` would build,
    with injected faults so the resilience counters are non-trivial."""
    spec = JobSpec(
        job_id="ckpt",
        dimacs=to_dimacs(formula),
        seed=SEED,
        qa_faults="dropout=0.3",
        fault_seed=7,
    )
    solver = HyQSatSolver(
        formula,
        device=build_device(spec),
        config=HyQSatConfig(
            seed=SEED,
            engine=engine,
            checkpoint_every=20,
            checkpoint_path=checkpoint_path,
        ),
        solver_config=(
            SolverConfig(seed=SEED)
            if max_conflicts is None
            else SolverConfig(seed=SEED, max_conflicts=max_conflicts)
        ),
    )
    return solver, solver.solve()


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_resume_is_bit_identical(formula, engine, tmp_path):
    _, reference = _solve(formula, engine, str(tmp_path / "ref.ckpt"))
    # An uninterrupted terminal solve discards its checkpoint.
    assert not os.path.exists(str(tmp_path / "ref.ckpt"))

    # Interrupt mid-search: cut well below the reference conflict
    # count so the run ends UNKNOWN with a live checkpoint on disk.
    path = str(tmp_path / "cut.ckpt")
    cut = max(40, reference.stats.conflicts // 2)
    _, partial = _solve(formula, engine, path, max_conflicts=cut)
    assert partial.status.value == "unknown"
    assert os.path.exists(path)

    resumed_solver, resumed = _solve(formula, engine, path)
    assert resumed_solver._resumed_from_checkpoint
    assert resumed.status == reference.status
    assert resumed.stats.conflicts == reference.stats.conflicts
    assert resumed.stats.iterations == reference.stats.iterations
    for name in HYBRID_STATS:
        assert getattr(resumed.hybrid, name) == getattr(
            reference.hybrid, name
        ), f"{name} diverged across resume"
    # A completed resume cleans up after itself.
    assert not os.path.exists(path)


def test_corrupt_checkpoint_falls_back_to_fresh_solve(formula, tmp_path):
    _, reference = _solve(formula, "reference", str(tmp_path / "ref.ckpt"))

    path = str(tmp_path / "bad.ckpt")
    cut = max(40, reference.stats.conflicts // 2)
    _solve(formula, "reference", path, max_conflicts=cut)
    with open(path, "r+b") as handle:
        handle.seek(10)
        handle.write(b"\xff\xff\xff")

    solver, result = _solve(formula, "reference", path)
    # Corruption is never fatal: the solve starts from scratch and
    # still reaches the reference answer.
    assert not solver._resumed_from_checkpoint
    assert result.status == reference.status
    assert result.stats.conflicts == reference.stats.conflicts
