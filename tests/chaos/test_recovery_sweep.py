"""Randomized journal-corruption recovery sweep.

Simulates a crash at an arbitrary byte of the journal — truncation
(torn final write) on even seeds, a bit-flip (disk corruption) on odd
seeds — then re-runs the same batch against the damaged journal and
checks every recovery invariant.  One reference batch anchors all
trials, so the sweep costs one solve per damaged replay, not two.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.service import run_batch

from tests.chaos.conftest import det_view, tiny_specs

SWEEP_SEEDS = 50


@pytest.fixture(scope="module")
def pristine_batch(tmp_path_factory):
    """One uninterrupted batch + the journal bytes it wrote."""
    tmp = tmp_path_factory.mktemp("sweep")
    journal = str(tmp / "journal.jsonl")
    outcomes, _ = run_batch(tiny_specs(), journal_path=journal)
    with open(journal, "rb") as handle:
        raw = handle.read()
    return [det_view(o) for o in outcomes], raw, str(tmp)


@pytest.mark.parametrize("sweep_seed", range(SWEEP_SEEDS))
def test_recovery_from_randomized_journal_damage(pristine_batch, sweep_seed):
    ref_views, pristine, tmp = pristine_batch
    rng = np.random.default_rng(9000 + sweep_seed)
    offset = int(rng.integers(0, len(pristine)))
    if sweep_seed % 2 == 0:
        damaged = pristine[:offset]
    else:
        damaged = (
            pristine[:offset]
            + bytes([pristine[offset] ^ 0x5A])
            + pristine[offset + 1:]
        )
    journal = os.path.join(tmp, f"damaged-{sweep_seed}.jsonl")
    with open(journal, "wb") as handle:
        handle.write(damaged)

    outcomes, _ = run_batch(tiny_specs(), journal_path=journal)

    ids = [o.job_id for o in outcomes]
    assert len(ids) == len(set(ids)), "duplicate completion after recovery"
    assert [det_view(o) for o in outcomes] == ref_views, (
        "recovered results diverged from the uninterrupted run"
    )
