"""End-to-end kill -9 crash/recovery demo through the real CLI.

Drives ``tools/chaos.py crash-batch``: an ``hyqsat batch`` subprocess
is SIGKILLed mid-run, then re-run against the same journal; the
harness asserts no acked result is lost or changed, no job completes
twice, results match an uninterrupted run bit-for-bit, and modelled
QPU time is billed exactly once across the crash.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_crash_batch_invariants_hold():
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "chaos.py"),
            "crash-batch",
            "--trials",
            "1",
            "--jobs",
            "2",
            "--vars",
            "90",
            "--count",
            "3",
        ],
        env=dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src")),
        capture_output=True,
        text=True,
        timeout=560,
    )
    assert result.returncode == 0, (
        f"chaos crash-batch reported violations:\n"
        f"{result.stdout}\n{result.stderr}"
    )
    assert "all invariants held" in result.stdout
