"""Unit tests of the crash-safe job journal (repro.service.journal)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.service import JobJournal, JobSpec, read_journal
from repro.service.jobs import JobOutcome


def _spec(job_id="a", seed=0):
    return JobSpec(job_id=job_id, dimacs="p cnf 1 1\n1 0\n", seed=seed)


def _outcome(job_id="a"):
    return JobOutcome(
        job_id=job_id,
        state="done",
        status="sat",
        model=[1],
        iterations=1,
        conflicts=0,
    )


class TestRoundTrip:
    def test_recovery_replays_acked_outcomes(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path) as journal:
            for i in range(3):
                journal.record_submit(_spec(f"j{i}", seed=i))
            journal.record_start("j0")
            journal.record_retry("j1", "worker process died")
            journal.record_done(_outcome("j0"))

        reopened = JobJournal(path)
        report = reopened.recovered
        assert report.has_state
        assert sorted(report.submitted) == ["j0", "j1", "j2"]
        assert report.started == ["j0"]
        assert report.retries == {"j1": 1}
        assert set(report.outcomes) == {"j0"}
        assert report.torn_records == 0
        recovered = reopened.recovered_outcome(_spec("j0", seed=0))
        assert recovered is not None
        assert JobOutcome.from_dict(recovered) == _outcome("j0")
        assert reopened.stats.replayed == 1
        reopened.close()

    def test_missing_journal_is_empty_state(self, tmp_path):
        journal = JobJournal(str(tmp_path / "fresh.jsonl"))
        assert not journal.recovered.has_state
        assert journal.recovered_outcome(_spec()) is None
        journal.close()

    def test_changed_spec_does_not_replay_stale_outcome(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path) as journal:
            journal.record_submit(_spec("a", seed=0))
            journal.record_done(_outcome("a"))
        reopened = JobJournal(path)
        # Same id, different options: the journaled result is stale.
        assert reopened.recovered_outcome(_spec("a", seed=99)) is None
        assert reopened.stats.replayed == 0
        # The original spec still replays.
        assert reopened.recovered_outcome(_spec("a", seed=0)) is not None
        reopened.close()


class TestTornTail:
    def _journal_bytes(self, tmp_path, dones=3):
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path) as journal:
            for i in range(dones):
                journal.record_submit(_spec(f"j{i}", seed=i))
                journal.record_done(_outcome(f"j{i}"))
        with open(path, "rb") as handle:
            return path, handle.read()

    def test_truncated_tail_is_dropped_and_truncated_on_open(self, tmp_path):
        path, pristine = self._journal_bytes(tmp_path)
        with open(path, "wb") as handle:
            handle.write(pristine[: len(pristine) - 7])
        journal = JobJournal(path)
        # The final record was torn; every earlier record survives.
        assert journal.stats.torn_records == 1
        assert len(journal.recovered.outcomes) == 2
        journal.close()
        # Open truncated the torn tail away: the file is valid again.
        records, valid_len, torn = read_journal(path)
        assert torn == 0
        assert len(records) == journal.recovered.valid_records

    def test_bit_flip_invalidates_record_and_suffix(self, tmp_path):
        path, pristine = self._journal_bytes(tmp_path)
        flip_at = len(pristine) // 3
        mutated = (
            pristine[:flip_at]
            + bytes([pristine[flip_at] ^ 0x5A])
            + pristine[flip_at + 1:]
        )
        with open(path, "wb") as handle:
            handle.write(mutated)
        records, valid_len, torn = read_journal(path)
        # Prefix validation: nothing after the flipped record is
        # trusted, and the checksum catches the flip even when the
        # line still parses as JSON.
        assert torn >= 1
        assert valid_len <= flip_at
        assert all(r["k"] in ("submit", "done") for r in records)

    def test_appends_after_recovery_continue_the_valid_prefix(self, tmp_path):
        path, pristine = self._journal_bytes(tmp_path)
        with open(path, "wb") as handle:
            handle.write(pristine[: len(pristine) - 3])
        with JobJournal(path) as journal:
            journal.record_done(_outcome("late"))
        records, _, torn = read_journal(path)
        assert torn == 0
        assert records[-1]["k"] == "done"
        assert records[-1]["outcome"]["job_id"] == "late"


class TestDurability:
    def test_done_records_are_fsynced_immediately(self, tmp_path):
        journal = JobJournal(str(tmp_path / "journal.jsonl"))
        before = journal.stats.fsyncs
        journal.record_done(_outcome("a"))
        assert journal.stats.fsyncs == before + 1
        journal.close()

    def test_submit_records_are_batched(self, tmp_path):
        journal = JobJournal(str(tmp_path / "journal.jsonl"), fsync_every=4)
        for i in range(3):
            journal.record_submit(_spec(f"j{i}", seed=i))
        assert journal.stats.fsyncs == 0
        journal.record_submit(_spec("j3", seed=3))
        assert journal.stats.fsyncs == 1
        journal.close()

    def test_stats_count_records_by_kind(self, tmp_path):
        with JobJournal(str(tmp_path / "journal.jsonl")) as journal:
            journal.record_submit(_spec())
            journal.record_start("a")
            journal.record_retry("a", "chaos")
            journal.record_done(_outcome())
            assert journal.stats.records_by_kind == {
                "submit": 1,
                "start": 1,
                "retry": 1,
                "done": 1,
            }

    def test_fsync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JobJournal(str(tmp_path / "journal.jsonl"), fsync_every=0)
