"""Shared fixtures for the chaos/durability test suite.

These tests deliberately break things — kill workers, tear journal
tails, quarantine whole device fleets — and assert the recovery
invariants documented in ``tools/chaos.py``: no lost acked job, no
duplicate completion, bit-identical results, QPU billed once.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.annealer.device import AnnealRequest
from repro.benchgen.random_ksat import random_3sat
from repro.embedding.hyqsat_embed import HyQSatEmbedder
from repro.qubo.encoding import encode_formula
from repro.qubo.normalization import normalize
from repro.sat import to_dimacs
from repro.service import JobSpec

#: JobOutcome fields that must be bit-identical across recovery
#: (wall-clock fields — run/wait seconds — legitimately differ).
DET_FIELDS = (
    "status",
    "model",
    "iterations",
    "conflicts",
    "qa_calls",
    "qpu_time_us",
    "qa_retries",
    "qa_failures",
    "breaker_state",
    "qa_budget_spent_us",
    "degraded",
)


def det_view(outcome) -> dict:
    """The deterministic slice of a :class:`JobOutcome`."""
    return {name: getattr(outcome, name) for name in DET_FIELDS}


def tiny_specs(count: int = 6, num_vars: int = 12, num_clauses: int = 52):
    """Small, fast hybrid jobs for in-process recovery sweeps."""
    return [
        JobSpec(
            job_id=f"j{i}",
            dimacs=to_dimacs(
                random_3sat(num_vars, num_clauses, np.random.default_rng(40 + i))
            ),
            seed=i,
        )
        for i in range(count)
    ]


@pytest.fixture
def tiny_request(small_hardware):
    """A minimal embedded anneal request for direct device-level tests."""
    from repro.sat.cnf import Clause

    encoded = encode_formula([Clause([1, 2, 3]), Clause([-1, 2, -3])], 3)
    normalized, scale = normalize(encoded.objective)
    embedded = HyQSatEmbedder(small_hardware).embed(encoded)
    return AnnealRequest(
        objective=normalized,
        embedding=embedded.embedding,
        edge_couplers=embedded.edge_couplers,
        energy_scale=scale,
        num_reads=1,
    )
