"""Tests for the confidence-interval partition."""

import numpy as np
import pytest

from repro.ml.intervals import Band, ConfidenceBands, fit_bands


class TestBands:
    def test_paper_defaults(self):
        bands = ConfidenceBands()
        assert bands.t_sat == 4.5
        assert bands.t_unsat == 8.0
        assert bands.uncertain_width == 3.5

    def test_classification_paper_partition(self):
        bands = ConfidenceBands()
        assert bands.classify(0.0) is Band.SATISFIABLE
        assert bands.classify(1e-9) is Band.SATISFIABLE
        assert bands.classify(2.0) is Band.NEAR_SATISFIABLE
        assert bands.classify(4.5) is Band.NEAR_SATISFIABLE
        assert bands.classify(6.0) is Band.UNCERTAIN
        assert bands.classify(8.0) is Band.UNCERTAIN
        assert bands.classify(8.01) is Band.NEAR_UNSATISFIABLE
        assert bands.classify(100.0) is Band.NEAR_UNSATISFIABLE

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceBands(t_sat=-1.0)
        with pytest.raises(ValueError):
            ConfidenceBands(t_sat=5.0, t_unsat=4.0)

    def test_degenerate_bands_allowed(self):
        bands = ConfidenceBands(t_sat=3.0, t_unsat=3.0)
        assert bands.classify(3.0) is Band.NEAR_SATISFIABLE
        assert bands.classify(3.1) is Band.NEAR_UNSATISFIABLE


class TestFitBands:
    def test_well_separated_distributions(self, rng):
        sat = np.abs(rng.normal(1.0, 1.0, 500))
        unsat = rng.normal(12.0, 1.5, 500)
        bands, model = fit_bands(sat, unsat)
        assert 1.0 < bands.t_sat < 9.0
        assert bands.t_sat <= bands.t_unsat <= 14.0
        # The fitted model must separate the classes well.
        X = np.concatenate([sat, unsat])
        y = np.concatenate([np.ones(500, dtype=int), np.zeros(500, dtype=int)])
        assert model.score(X, y) > 0.95

    def test_thresholds_have_claimed_confidence(self, rng):
        sat = np.abs(rng.normal(1.0, 1.0, 800))
        unsat = rng.normal(10.0, 2.0, 800)
        bands, model = fit_bands(sat, unsat, confidence=0.9)
        assert model.posterior_of(1, bands.t_sat) >= 0.9 - 0.02
        assert model.posterior_of(0, bands.t_unsat) >= 0.9 - 0.02

    def test_overlapping_distributions_fall_back(self, rng):
        sat = rng.normal(5.0, 3.0, 200)
        unsat = rng.normal(5.5, 3.0, 200)
        bands, _ = fit_bands(sat, unsat)
        # Fallback to paper constants or a consistent partition.
        assert bands.t_sat <= bands.t_unsat

    def test_swapped_distributions_fall_back_to_paper(self, rng):
        sat = rng.normal(10.0, 1.0, 200)
        unsat = rng.normal(1.0, 1.0, 200)
        bands, _ = fit_bands(sat, unsat)
        assert bands == ConfidenceBands()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            fit_bands([], [1.0])
        with pytest.raises(ValueError):
            fit_bands([1.0], [])
        with pytest.raises(ValueError):
            fit_bands([1.0], [2.0], confidence=0.4)

    def test_higher_confidence_widens_uncertainty(self, rng):
        sat = np.abs(rng.normal(1.0, 1.5, 600))
        unsat = rng.normal(9.0, 2.0, 600)
        loose, _ = fit_bands(sat, unsat, confidence=0.8)
        strict, _ = fit_bands(sat, unsat, confidence=0.99)
        assert strict.uncertain_width >= loose.uncertain_width - 1e-9
