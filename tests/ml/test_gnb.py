"""Tests for the from-scratch Gaussian Naive Bayes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.gnb import GaussianNaiveBayes


def _two_blobs(rng, n=400, mu0=0.0, mu1=8.0, sigma=1.0):
    x0 = rng.normal(mu0, sigma, size=n)
    x1 = rng.normal(mu1, sigma, size=n)
    X = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return X, y


class TestFit:
    def test_learns_means_and_variances(self, rng):
        X, y = _two_blobs(rng)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.theta_[0, 0] == pytest.approx(0.0, abs=0.2)
        assert model.theta_[1, 0] == pytest.approx(8.0, abs=0.2)
        assert model.var_[0, 0] == pytest.approx(1.0, abs=0.3)

    def test_priors_reflect_class_balance(self, rng):
        X = np.concatenate([rng.normal(0, 1, 300), rng.normal(5, 1, 100)])
        y = np.array([0] * 300 + [1] * 100)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.class_prior_[0] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit([], [])
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit([1.0, 2.0], [0, 0])
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit([1.0], [0, 1])
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=-1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict([1.0])


class TestPredict:
    def test_separable_blobs_high_accuracy(self, rng):
        X, y = _two_blobs(rng)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.99

    def test_decision_boundary_between_symmetric_means(self, rng):
        X, y = _two_blobs(rng, mu0=0.0, mu1=10.0)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict([2.0])[0] == 0
        assert model.predict([8.0])[0] == 1

    def test_proba_rows_sum_to_one(self, rng):
        X, y = _two_blobs(rng)
        model = GaussianNaiveBayes().fit(X, y)
        proba = model.predict_proba(np.linspace(-5, 15, 50))
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_posterior_monotone_along_axis(self, rng):
        X, y = _two_blobs(rng)
        model = GaussianNaiveBayes().fit(X, y)
        grid = np.linspace(1.0, 7.0, 30)
        p1 = model.predict_proba(grid)[:, 1]
        assert (np.diff(p1) >= -1e-9).all()

    def test_posterior_of_single_value(self, rng):
        X, y = _two_blobs(rng)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.posterior_of(1, 8.0) > 0.95
        assert model.posterior_of(0, 0.0) > 0.95

    def test_multifeature(self, rng):
        X = rng.normal(0, 1, size=(200, 3))
        X[100:] += 4.0
        y = np.array([0] * 100 + [1] * 100)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_string_labels(self, rng):
        X, y01 = _two_blobs(rng, n=100)
        labels = np.where(y01 == 1, "sat", "unsat")
        model = GaussianNaiveBayes().fit(X, labels)
        assert model.predict([8.0])[0] == "sat"

    def test_constant_feature_survives_smoothing(self):
        X = np.array([1.0, 1.0, 2.0, 2.0])
        y = np.array([0, 0, 1, 1])
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict([1.0])[0] == 0
        assert model.predict([2.0])[0] == 1


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_accuracy_on_well_separated_data(seed):
    rng = np.random.default_rng(seed)
    X, y = _two_blobs(rng, n=150, mu0=0, mu1=12, sigma=1.5)
    model = GaussianNaiveBayes().fit(X, y)
    assert model.score(X, y) > 0.98
