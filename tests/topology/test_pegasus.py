"""Pegasus-style lattice: adjacency invariants and the Table III
chain-length claim.

The densified lattice must stay a strict supergraph of the same-size
Chimera (so every Chimera embedding remains valid) while its extra
couplers give the minorminer-like baseline strictly shorter chains on
the BFS clause queues the frontend really produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen import random_3sat
from repro.core.clause_queue import ClauseQueueGenerator
from repro.embedding import MinorminerLikeEmbedder
from repro.qubo import encode_formula
from repro.topology import ChimeraGraph, PegasusGraph, TOPOLOGIES, build_hardware


@pytest.fixture(scope="module")
def p2():
    return PegasusGraph(2, 2, 4)


class TestGeometry:
    def test_same_qubit_count_as_chimera(self):
        for grid in (2, 4, 8):
            assert (
                PegasusGraph(grid, grid, 4).num_qubits
                == ChimeraGraph(grid, grid, 4).num_qubits
            )

    def test_id_coord_roundtrip(self, p2):
        for qubit in range(p2.num_qubits):
            assert p2.qubit_id(p2.coord(qubit)) == qubit

    @pytest.mark.parametrize("grid", (2, 4, 8))
    def test_chimera_couplers_strict_subset(self, grid):
        chimera = ChimeraGraph(grid, grid, 4)
        pegasus = PegasusGraph(grid, grid, 4)
        for qubit in range(chimera.num_qubits):
            assert set(chimera.neighbors(qubit)) <= set(pegasus.neighbors(qubit))
        assert pegasus.num_couplers > chimera.num_couplers

    def test_odd_couplers_pair_consecutive_units(self, p2):
        from repro.topology.chimera import QubitCoord

        q0 = p2.qubit_id(QubitCoord(0, 0, 0, 0))
        q1 = p2.qubit_id(QubitCoord(0, 0, 0, 1))
        q2 = p2.qubit_id(QubitCoord(0, 0, 0, 2))
        assert p2.has_coupler(q0, q1)  # unit pair 0<->1
        assert not p2.has_coupler(q1, q2)  # 1<->2 spans pairs
        assert p2.has_coupler(q2, p2.qubit_id(QubitCoord(0, 0, 0, 3)))

    def test_cross_cell_internal_couplers(self, p2):
        from repro.topology.chimera import QubitCoord

        vert = p2.qubit_id(QubitCoord(0, 0, 0, 0))
        for unit in range(4):
            below = p2.qubit_id(QubitCoord(1, 0, 1, unit))
            assert p2.has_coupler(vert, below)
        # Bottom-row vertical qubits have no cell below.
        bottom = p2.qubit_id(QubitCoord(1, 0, 0, 0))
        assert all(p2.coord(n).row <= 1 for n in p2.neighbors(bottom))

    def test_interior_degree_is_11(self):
        p4 = PegasusGraph(4, 4, 4)
        from repro.topology.chimera import QubitCoord

        interior = p4.qubit_id(QubitCoord(1, 1, 0, 0))
        # Chimera interior degree 6 (+1 odd, +4 cross-cell) = 11.
        assert len(p4.neighbors(interior)) == 11

    def test_denser_than_chimera(self):
        chimera = ChimeraGraph(8, 8, 4)
        chimera_density = chimera.num_couplers / chimera.num_working_qubits
        assert PegasusGraph(8, 8, 4).density > 1.5 * chimera_density

    def test_broken_qubits_respected(self):
        pegasus = PegasusGraph(2, 2, 4, broken_qubits=[0, 5])
        assert not pegasus.is_working(0)
        for qubit in range(pegasus.num_qubits):
            neighbors = pegasus.neighbors(qubit)
            assert 0 not in neighbors and 5 not in neighbors
        assert not pegasus.has_coupler(0, 1)

    def test_repr_names_class(self, p2):
        assert repr(p2).startswith("PegasusGraph(")


class TestAdjacencyProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 * 2 * 8 - 1), st.integers(0, 2 * 2 * 8 - 1))
    def test_symmetry_and_neighbor_consistency(self, q1, q2):
        pegasus = PegasusGraph(2, 2, 4)
        assert pegasus.has_coupler(q1, q2) == pegasus.has_coupler(q2, q1)
        assert pegasus.has_coupler(q1, q2) == (q2 in pegasus.neighbors(q1))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 * 2 * 8 - 1))
    def test_no_self_loops_and_coords_valid(self, qubit):
        pegasus = PegasusGraph(2, 2, 4)
        assert qubit not in pegasus.neighbors(qubit)
        for neighbor in pegasus.neighbors(qubit):
            coord = pegasus.coord(neighbor)
            assert 0 <= coord.row < 2 and 0 <= coord.col < 2
            assert coord.unit < pegasus.shore


class TestFactory:
    def test_registry_names(self):
        assert set(TOPOLOGIES) == {"chimera", "pegasus"}

    def test_build_hardware_dispatch(self):
        assert isinstance(build_hardware("pegasus", 4), PegasusGraph)
        chimera = build_hardware("chimera", 4)
        assert isinstance(chimera, ChimeraGraph)
        assert not isinstance(chimera, PegasusGraph)
        assert chimera.rows == chimera.cols == 4

    def test_build_hardware_validation(self):
        with pytest.raises(ValueError):
            build_hardware("zephyr", 4)
        with pytest.raises(ValueError):
            build_hardware("chimera", 0)


def _bfs_queue(num_clauses: int, seed: int):
    """A BFS-local clause queue, as the frontend really produces."""
    rng = np.random.default_rng(seed)
    formula = random_3sat(20, 86, rng)
    generator = ClauseQueueGenerator(formula, seed=seed)
    queue = generator.generate([1.0] * formula.num_clauses, num_clauses)
    return encode_formula([formula.clauses[i] for i in queue], formula.num_vars)


class TestChainLengths:
    """Table III's mechanism: denser topology -> shorter chains."""

    @pytest.mark.parametrize("size,seed", [(8, 0), (8, 1), (10, 1), (12, 0)])
    def test_pegasus_chains_strictly_shorter(self, size, seed):
        encoding = _bfs_queue(size, seed=size * 10 + seed)
        edges = list(encoding.objective.quadratic.keys())
        variables = encoding.objective.variables
        results = {}
        for name in ("chimera", "pegasus"):
            embedder = MinorminerLikeEmbedder(
                build_hardware(name, 6), max_passes=20, timeout_seconds=45.0, seed=0
            )
            results[name] = embedder.embed(edges, variables)
        assert results["chimera"].success and results["pegasus"].success
        assert (
            results["pegasus"].avg_chain_length
            < results["chimera"].avg_chain_length
        )
