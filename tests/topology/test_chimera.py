"""Tests for the Chimera hardware graph."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.chimera import ChimeraGraph, HorizontalLine, QubitCoord, VerticalLine


class TestGeometry:
    def test_2000q_size(self, c16_hardware):
        assert c16_hardware.num_qubits == 2048
        assert c16_hardware.num_vertical_lines == 64
        assert c16_hardware.num_horizontal_lines == 64

    def test_coupler_count_c16(self, c16_hardware):
        # Intra-cell: 256 cells * 16; inter-cell vertical: 15*16*4;
        # inter-cell horizontal: 16*15*4.
        expected = 256 * 16 + 15 * 16 * 4 + 16 * 15 * 4
        assert c16_hardware.num_couplers == expected

    def test_id_coord_roundtrip(self, small_hardware):
        for qubit in range(small_hardware.num_qubits):
            coord = small_hardware.coord(qubit)
            assert small_hardware.qubit_id(coord) == qubit

    def test_coord_validation(self, small_hardware):
        with pytest.raises(ValueError):
            small_hardware.qubit_id(QubitCoord(99, 0, 0, 0))
        with pytest.raises(ValueError):
            small_hardware.qubit_id(QubitCoord(0, 0, 0, 9))
        with pytest.raises(ValueError):
            small_hardware.coord(-1)
        with pytest.raises(ValueError):
            QubitCoord(0, 0, 2, 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ChimeraGraph(0)
        with pytest.raises(ValueError):
            ChimeraGraph(2, cols=0)
        with pytest.raises(ValueError):
            ChimeraGraph(2, shore=0)
        with pytest.raises(ValueError):
            ChimeraGraph(2, broken_qubits=[9999])

    def test_rectangular_grid(self):
        hw = ChimeraGraph(2, cols=3, shore=4)
        assert hw.num_qubits == 2 * 3 * 8
        assert hw.num_vertical_lines == 12
        assert hw.num_horizontal_lines == 8


class TestAdjacency:
    def test_intra_cell_k44(self, small_hardware):
        vq = small_hardware.qubit_id(QubitCoord(1, 1, 0, 2))
        horizontals = [
            small_hardware.qubit_id(QubitCoord(1, 1, 1, u)) for u in range(4)
        ]
        neighbors = small_hardware.neighbors(vq)
        assert all(h in neighbors for h in horizontals)

    def test_vertical_qubits_not_coupled_in_cell(self, small_hardware):
        q1 = small_hardware.qubit_id(QubitCoord(0, 0, 0, 0))
        q2 = small_hardware.qubit_id(QubitCoord(0, 0, 0, 1))
        assert not small_hardware.has_coupler(q1, q2)

    def test_inter_cell_vertical(self, small_hardware):
        q1 = small_hardware.qubit_id(QubitCoord(0, 2, 0, 3))
        q2 = small_hardware.qubit_id(QubitCoord(1, 2, 0, 3))
        assert small_hardware.has_coupler(q1, q2)

    def test_inter_cell_horizontal(self, small_hardware):
        q1 = small_hardware.qubit_id(QubitCoord(2, 0, 1, 1))
        q2 = small_hardware.qubit_id(QubitCoord(2, 1, 1, 1))
        assert small_hardware.has_coupler(q1, q2)

    def test_no_diagonal_cell_coupling(self, small_hardware):
        q1 = small_hardware.qubit_id(QubitCoord(0, 0, 0, 0))
        q2 = small_hardware.qubit_id(QubitCoord(1, 1, 0, 0))
        assert not small_hardware.has_coupler(q1, q2)

    def test_adjacency_symmetric(self, small_hardware):
        for qubit in range(small_hardware.num_qubits):
            for other in small_hardware.neighbors(qubit):
                assert qubit in small_hardware.neighbors(other)

    def test_no_self_coupling(self, small_hardware):
        assert not small_hardware.has_coupler(3, 3)

    def test_networkx_agrees(self, small_hardware):
        g = small_hardware.to_networkx()
        assert g.number_of_nodes() == small_hardware.num_qubits
        assert g.number_of_edges() == small_hardware.num_couplers
        assert nx.is_connected(g)

    def test_degree_bounds(self, small_hardware):
        # Chimera degree is at most shore + 2.
        for qubit in range(small_hardware.num_qubits):
            assert len(small_hardware.neighbors(qubit)) <= small_hardware.shore + 2


class TestBrokenQubits:
    def test_broken_qubit_isolated(self):
        hw = ChimeraGraph(2, 2, 4, broken_qubits=[5])
        assert not hw.is_working(5)
        assert hw.neighbors(5) == []
        assert all(5 not in hw.neighbors(q) for q in range(hw.num_qubits))

    def test_working_count(self):
        hw = ChimeraGraph(2, 2, 4, broken_qubits=[0, 1])
        assert hw.num_working_qubits == hw.num_qubits - 2

    def test_couplers_skip_broken(self):
        full = ChimeraGraph(2, 2, 4)
        broken = ChimeraGraph(2, 2, 4, broken_qubits=[0])
        assert broken.num_couplers < full.num_couplers


class TestLines:
    def test_vertical_lines_cover_columns(self, small_hardware):
        lines = small_hardware.vertical_lines()
        assert len(lines) == small_hardware.num_vertical_lines
        assert lines[0] == VerticalLine(0, 0)

    def test_vertical_line_qubits_are_a_chain(self, small_hardware):
        line = VerticalLine(col=2, unit=1)
        qubits = small_hardware.vertical_line_qubits(line)
        assert len(qubits) == small_hardware.rows
        for a, b in zip(qubits, qubits[1:]):
            assert small_hardware.has_coupler(a, b)

    def test_horizontal_line_qubits_are_a_chain(self, small_hardware):
        line = HorizontalLine(row=1, unit=3)
        qubits = small_hardware.horizontal_line_qubits(line)
        assert len(qubits) == small_hardware.cols
        for a, b in zip(qubits, qubits[1:]):
            assert small_hardware.has_coupler(a, b)

    def test_bottom_up_order(self, small_hardware):
        lines = small_hardware.horizontal_lines_bottom_up()
        assert lines[0].row == small_hardware.rows - 1
        assert lines[-1].row == 0

    def test_crossing_qubits_coupled(self, small_hardware):
        vline = VerticalLine(col=1, unit=2)
        hline = HorizontalLine(row=3, unit=0)
        vq, hq = small_hardware.crossing_qubits(vline, hline)
        assert small_hardware.has_coupler(vq, hq)
        assert small_hardware.coord(vq).is_vertical
        assert small_hardware.coord(hq).is_horizontal
        assert vq in small_hardware.vertical_line_qubits(vline)
        assert hq in small_hardware.horizontal_line_qubits(hline)

    def test_vertical_line_of(self, small_hardware):
        vq = small_hardware.qubit_id(QubitCoord(2, 1, 0, 3))
        assert small_hardware.vertical_line_of(vq) == VerticalLine(1, 3)
        hq = small_hardware.qubit_id(QubitCoord(2, 1, 1, 3))
        assert small_hardware.vertical_line_of(hq) is None

    def test_vertical_line_index_dense(self, small_hardware):
        indices = [
            small_hardware.vertical_line_index(l)
            for l in small_hardware.vertical_lines()
        ]
        assert indices == list(range(small_hardware.num_vertical_lines))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=4),
)
def test_property_counts(rows, cols, shore):
    hw = ChimeraGraph(rows, cols, shore)
    assert hw.num_qubits == rows * cols * 2 * shore
    # Handshake: sum of degrees = 2 * couplers.
    degrees = sum(len(hw.neighbors(q)) for q in range(hw.num_qubits))
    assert degrees == 2 * hw.num_couplers
