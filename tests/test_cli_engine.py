"""CLI --engine flag and the CDCL-rate summary line."""

import pytest

from repro.cdcl.native import native_available
from repro.cli import build_parser, main

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernel"
)


@pytest.fixture
def cnf_file(tmp_path):
    path = tmp_path / "f.cnf"
    path.write_text("p cnf 3 3\n1 2 3 0\n-1 2 0\n-2 3 0\n")
    return str(path)


def test_engine_flag_parses():
    args = build_parser().parse_args(["solve", "x.cnf", "--engine", "fast"])
    assert args.engine == "fast"


def test_engine_default_reference():
    args = build_parser().parse_args(["solve", "x.cnf"])
    assert args.engine == "reference"


@pytest.mark.parametrize("command", ["solve", "submit", "batch"])
def test_engine_flag_on_every_job_command(command):
    args = build_parser().parse_args([command, "target", "--engine", "fast"])
    assert args.engine == "fast"


def test_engine_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["solve", "x.cnf", "--engine", "turbo"])


def test_solve_summary_has_rates(cnf_file, capsys):
    assert main(["solve", cnf_file]) == 0
    out = capsys.readouterr().out
    assert "c cdcl_propagations_per_s=" in out
    assert "cdcl_conflicts_per_s=" in out
    assert "engine=reference" in out


@needs_native
def test_solve_fast_engine(cnf_file, capsys):
    assert main(["solve", cnf_file, "--engine", "fast"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("s SAT")
    assert "engine=fast" in out


@needs_native
def test_classic_fast_engine(cnf_file, capsys):
    assert main(["solve", cnf_file, "--classic", "--engine", "fast"]) == 0
    assert capsys.readouterr().out.startswith("s SAT")
