"""Tests for the domain benchmark generators."""

import numpy as np
import pytest

from repro.benchgen.circuit import circuit_fault_instance, random_circuit
from repro.benchgen.crypto import adder_equivalence_instance
from repro.benchgen.factoring import (
    factoring_cnf,
    factoring_instance,
    is_prime,
    random_prime,
    random_semiprime,
)
from repro.benchgen.graph_coloring import (
    colouring_cnf,
    flat_graph,
    flat_graph_coloring_instance,
)
from repro.benchgen.inductive import inductive_inference_instance
from repro.benchgen.planning import blocks_world_instance, random_towers
from repro.benchgen.random_ksat import random_3sat, random_ksat, random_planted_3sat
from repro.cdcl.presets import minisat_solver
from repro.sat.brute import brute_force_solve


class TestRandomKsat:
    def test_shape(self, rng):
        f = random_3sat(20, 50, rng)
        assert f.num_vars == 20
        assert f.num_clauses == 50
        assert all(len(c) == 3 for c in f)

    def test_clauses_distinct(self, rng):
        f = random_3sat(6, 100, rng)
        assert len(set(f.clauses)) == 100

    def test_planted_is_satisfiable(self, rng):
        planted = np.zeros(11, dtype=bool)
        planted[1:] = rng.integers(0, 2, size=10).astype(bool)
        f = random_3sat(10, 60, rng, planted=planted)
        from repro.sat.assignment import Assignment

        a = Assignment({v: bool(planted[v]) for v in range(1, 11)})
        assert a.satisfies(f)

    def test_planted_helper(self, rng):
        f = random_planted_3sat(12, 50, rng)
        assert minisat_solver(f).solve().is_sat

    def test_k_parameter(self, rng):
        f = random_ksat(10, 20, 2, rng)
        assert all(len(c) == 2 for c in f)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_ksat(2, 1, 3, rng)
        with pytest.raises(ValueError):
            random_ksat(3, 100, 3, rng)  # only 8 distinct clauses exist
        with pytest.raises(ValueError):
            random_ksat(3, 1, 0, rng)

    def test_deterministic(self):
        a = random_3sat(10, 30, np.random.default_rng(5))
        b = random_3sat(10, 30, np.random.default_rng(5))
        assert a == b


class TestGraphColoring:
    def test_flat_graph_edges_cross_classes(self, rng):
        edges = flat_graph(12, 20, rng)
        assert len(edges) == 20
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == 20

    def test_cnf_size_formula(self, rng):
        # v vertices, e edges -> 3v vars, v + 3v + 3e clauses.
        f = flat_graph_coloring_instance(10, 15, rng)
        assert f.num_vars == 30
        assert f.num_clauses == 10 + 30 + 45

    def test_gc1_paper_dimensions(self, rng):
        f = flat_graph_coloring_instance(150, 360, rng)
        assert f.num_vars == 450
        assert f.num_clauses == 1680

    def test_satisfiable_by_construction(self, rng):
        f = flat_graph_coloring_instance(12, 20, rng)
        assert minisat_solver(f).solve().is_sat

    def test_too_many_edges_rejected(self, rng):
        with pytest.raises(ValueError):
            flat_graph(3, 10, rng)

    def test_uncolourable_graph_unsat(self):
        # K4 is not 3-colourable.
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        f = colouring_cnf(4, edges)
        assert brute_force_solve(f) is None


class TestCircuitFault:
    def test_undetectable_fault_unsat(self, rng):
        f = circuit_fault_instance(5, 12, rng, detectable=False)
        assert f.is_3sat
        assert minisat_solver(f).solve().is_unsat

    def test_detectable_fault_usually_sat(self):
        hits = 0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            f = circuit_fault_instance(5, 12, rng, detectable=True)
            if minisat_solver(f).solve().is_sat:
                hits += 1
        assert hits >= 5  # most random stuck-at faults are detectable

    def test_random_circuit_evaluates(self, rng):
        circuit = random_circuit(4, 10, rng)
        values = circuit.evaluate([True, False, True, False])
        assert len(values) == circuit.num_nets

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_circuit(1, 5, rng)


class TestPlanning:
    def test_towers_partition_blocks(self, rng):
        towers = random_towers(6, rng)
        flat = [b for t in towers for b in t]
        assert sorted(flat) == list(range(1, 7))

    def test_instance_satisfiable(self, rng):
        f = blocks_world_instance(3, None, rng)
        assert f.is_3sat
        assert minisat_solver(f).solve().is_sat

    def test_zero_horizon_usually_unsat(self):
        # With 0 steps the goal must equal the initial configuration;
        # for random draws this is usually false.
        results = []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            f = blocks_world_instance(3, 0, rng)
            results.append(minisat_solver(f).solve().is_sat)
        assert not all(results)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            blocks_world_instance(1, None, rng)


class TestInductive:
    def test_instance_satisfiable(self, rng):
        f = inductive_inference_instance(6, 2, 16, rng)
        assert f.is_3sat
        assert minisat_solver(f).solve().is_sat

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            inductive_inference_instance(1, 1, 1, rng)


class TestFactoring:
    def test_is_prime(self):
        assert is_prime(2) and is_prime(13) and is_prime(97)
        assert not is_prime(1) and not is_prime(91) and not is_prime(100)

    def test_random_prime_bits(self, rng):
        p = random_prime(5, rng)
        assert 16 <= p <= 31 and is_prime(p)

    def test_semiprime(self, rng):
        n, p, q = random_semiprime(4, rng)
        assert n == p * q and is_prime(p) and is_prime(q)

    def test_semiprime_instance_sat_with_correct_factors(self, rng):
        f = factoring_cnf(15, 3, 3)  # 15 = 3 * 5
        result = minisat_solver(f).solve()
        assert result.is_sat
        a = sum(int(result.model[v]) << i for i, v in enumerate(range(1, 4)))
        b = sum(int(result.model[v]) << i for i, v in enumerate(range(4, 7)))
        assert a * b == 15
        assert a > 1 and b > 1

    def test_prime_instance_unsat(self, rng):
        f = factoring_cnf(13, 3, 3)
        assert minisat_solver(f).solve().is_unsat

    def test_instance_wrapper(self, rng):
        sat = factoring_instance(3, rng, satisfiable=True)
        assert minisat_solver(sat).solve().is_sat
        unsat = factoring_instance(3, rng, satisfiable=False)
        assert minisat_solver(unsat).solve().is_unsat

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            factoring_cnf(1, 2, 2)
        with pytest.raises(ValueError):
            random_prime(1, rng)


class TestCrypto:
    def test_equivalent_adders_unsat(self, rng):
        f = adder_equivalence_instance(4, rng, inject_bug=False)
        assert f.is_3sat
        assert minisat_solver(f).solve().is_unsat

    def test_buggy_adder_sat(self, rng):
        f = adder_equivalence_instance(4, rng, inject_bug=True)
        result = minisat_solver(f).solve()
        assert result.is_sat  # the counterexample input

    def test_width_validation(self, rng):
        from repro.benchgen.crypto import adder_equivalence_cnf

        with pytest.raises(ValueError):
            adder_equivalence_cnf(0)
