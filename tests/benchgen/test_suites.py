"""Tests for the Table I benchmark suite registry."""

import pytest

from repro.benchgen.suites import BENCHMARKS, generate_suite
from repro.cdcl.presets import minisat_solver

ALL_NAMES = [
    "GC1", "GC2", "GC3", "CFA", "BP", "II", "IF1", "IF2", "CRY",
    "AI1", "AI2", "AI3", "AI4", "AI5",
]


def test_all_fourteen_benchmarks_present():
    assert sorted(BENCHMARKS) == sorted(ALL_NAMES)


def test_seven_domains():
    domains = {spec.domain for spec in BENCHMARKS.values()}
    assert len(domains) == 7


def test_generation_deterministic():
    a = BENCHMARKS["GC1"].generate(0, seed=3)
    b = BENCHMARKS["GC1"].generate(0, seed=3)
    assert a == b


def test_different_indices_differ():
    a = BENCHMARKS["GC1"].generate(0, seed=0)
    b = BENCHMARKS["GC1"].generate(1, seed=0)
    assert a != b


def test_every_benchmark_generates_3sat():
    # AI4/AI5 are excluded here: their satisfiable-filtering solves
    # UF125/UF150 instances repeatedly, which belongs in the bench
    # harness, not the unit suite.  Their generator is AI1's at a
    # different size, which IS covered.
    for name, spec in BENCHMARKS.items():
        if name in ("AI4", "AI5"):
            continue
        formula = spec.generate(0, seed=0)
        assert formula.is_3sat, name
        assert formula.num_clauses > 0, name


@pytest.mark.parametrize("name", ["AI1", "AI2"])
def test_ai_benchmarks_filtered_satisfiable(name):
    formula = BENCHMARKS[name].generate(0, seed=1)
    assert minisat_solver(formula).solve().is_sat


@pytest.mark.parametrize("name,expect_sat", [("CFA", False), ("CRY", False), ("BP", True)])
def test_expected_statuses(name, expect_sat):
    formula = BENCHMARKS[name].generate(0, seed=0)
    assert minisat_solver(formula).solve().is_sat == expect_sat


def test_generate_suite_length():
    problems = generate_suite("BP", seed=0, num_problems=2)
    assert len(problems) == 2


def test_paper_reductions_recorded():
    assert BENCHMARKS["CFA"].paper_reduction_avg == pytest.approx(83.21)
    assert BENCHMARKS["AI5"].paper_reduction_geomean == pytest.approx(3.10)
