"""Tests for the Tseitin circuit builder."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen.logic import CnfBuilder
from repro.cdcl.presets import minisat_solver
from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF


def _solve(formula):
    """Reference solve: brute force for tiny formulas, CDCL beyond
    (arithmetic blocks allocate dozens of Tseitin variables, far past
    what exhaustive enumeration can check in reasonable time)."""
    if formula.num_vars <= 12:
        return brute_force_solve(formula)
    return minisat_solver(formula).solve().model


def _gate_truth(gate_method, arity, expected_fn):
    """Check a gate's Tseitin encoding against a python function."""
    for bits in itertools.product((0, 1), repeat=arity):
        builder = CnfBuilder()
        nets = builder.new_vars(arity)
        out = gate_method(builder, *nets)
        for net, bit in zip(nets, bits):
            (builder.assert_true if bit else builder.assert_false)(net)
        formula = builder.build()
        model = _solve(formula)
        assert model is not None, f"inputs {bits} inconsistent"
        value = model[out] if out > 0 else not model[-out]
        assert value == expected_fn(*bits), f"inputs {bits}"
        # The output must be FORCED: the opposite value is UNSAT.
        builder2 = CnfBuilder()
        nets2 = builder2.new_vars(arity)
        out2 = gate_method(builder2, *nets2)
        for net, bit in zip(nets2, bits):
            (builder2.assert_true if bit else builder2.assert_false)(net)
        if expected_fn(*bits):
            builder2.assert_false(out2)
        else:
            builder2.assert_true(out2)
        assert _solve(builder2.build()) is None


class TestGates:
    def test_and(self):
        _gate_truth(CnfBuilder.and_gate, 2, lambda a, b: a and b)

    def test_or(self):
        _gate_truth(CnfBuilder.or_gate, 2, lambda a, b: a or b)

    def test_xor(self):
        _gate_truth(CnfBuilder.xor_gate, 2, lambda a, b: a != b)

    def test_equal(self):
        _gate_truth(CnfBuilder.equal_gate, 2, lambda a, b: a == b)

    def test_majority(self):
        _gate_truth(
            CnfBuilder.majority_gate, 3, lambda a, b, c: (a + b + c) >= 2
        )

    def test_mux(self):
        _gate_truth(
            CnfBuilder.mux_gate, 3, lambda sel, a, b: a if sel else b
        )

    def test_not_is_free(self):
        builder = CnfBuilder()
        a = builder.new_var()
        assert builder.not_gate(a) == -a
        assert builder.num_clauses == 0

    def test_constant(self):
        builder = CnfBuilder()
        t = builder.constant(True)
        f = builder.constant(False)
        model = _solve(builder.build())
        assert model[t] is True and model[f] is False

    def test_or_many_and_many(self):
        for fn, expected in [
            (CnfBuilder.or_many, any),
            (CnfBuilder.and_many, all),
        ]:
            for bits in itertools.product((0, 1), repeat=4):
                builder = CnfBuilder()
                nets = builder.new_vars(4)
                out = fn(builder, nets)
                for net, bit in zip(nets, bits):
                    (builder.assert_true if bit else builder.assert_false)(net)
                model = _solve(builder.build())
                assert model[out] == expected(bits)

    def test_or_many_empty_is_false(self):
        builder = CnfBuilder()
        out = builder.or_many([])
        model = _solve(builder.build())
        assert model[out] is False

    def test_and_many_empty_is_true(self):
        builder = CnfBuilder()
        out = builder.and_many([])
        model = _solve(builder.build())
        assert model[out] is True


class TestArithmetic:
    @pytest.mark.parametrize("factored", [False, True])
    def test_full_adder_truth_table(self, factored):
        for a, b, c in itertools.product((0, 1), repeat=3):
            builder = CnfBuilder()
            na, nb, nc = builder.new_vars(3)
            adder = (
                builder.full_adder_factored if factored else builder.full_adder
            )
            s, carry = adder(na, nb, nc)
            for net, bit in zip((na, nb, nc), (a, b, c)):
                (builder.assert_true if bit else builder.assert_false)(net)
            model = _solve(builder.build())
            total = a + b + c
            assert model[s] == bool(total & 1)
            assert model[carry] == bool(total >> 1)

    def test_half_adder(self):
        for a, b in itertools.product((0, 1), repeat=2):
            builder = CnfBuilder()
            na, nb = builder.new_vars(2)
            s, c = builder.half_adder(na, nb)
            for net, bit in zip((na, nb), (a, b)):
                (builder.assert_true if bit else builder.assert_false)(net)
            model = _solve(builder.build())
            assert model[s] == bool((a + b) & 1)
            assert model[c] == bool((a + b) >> 1)

    @pytest.mark.parametrize("factored", [False, True])
    def test_ripple_carry_adder(self, factored):
        for a_val, b_val in itertools.product(range(8), repeat=2):
            builder = CnfBuilder()
            a_bits = builder.new_vars(3)
            b_bits = builder.new_vars(3)
            out = builder.ripple_carry_adder(a_bits, b_bits, factored=factored)
            builder.assert_equals_constant(a_bits, a_val)
            builder.assert_equals_constant(b_bits, b_val)
            builder.assert_equals_constant(out, a_val + b_val)
            assert _solve(builder.build()) is not None

    def test_adder_rejects_wrong_sum(self):
        builder = CnfBuilder()
        a_bits = builder.new_vars(2)
        b_bits = builder.new_vars(2)
        out = builder.ripple_carry_adder(a_bits, b_bits)
        builder.assert_equals_constant(a_bits, 1)
        builder.assert_equals_constant(b_bits, 2)
        builder.assert_equals_constant(out, 4)  # 1 + 2 != 4
        assert _solve(builder.build()) is None

    def test_multiplier_small(self):
        for a_val, b_val in itertools.product(range(4), repeat=2):
            builder = CnfBuilder()
            a_bits = builder.new_vars(2)
            b_bits = builder.new_vars(2)
            product = builder.multiplier(a_bits, b_bits)
            builder.assert_equals_constant(a_bits, a_val)
            builder.assert_equals_constant(b_bits, b_val)
            builder.assert_equals_constant(product, a_val * b_val)
            assert _solve(builder.build()) is not None

    def test_assert_equals_constant_validation(self):
        builder = CnfBuilder()
        bits = builder.new_vars(2)
        with pytest.raises(ValueError):
            builder.assert_equals_constant(bits, 4)
        with pytest.raises(ValueError):
            builder.assert_equals_constant(bits, -1)

    def test_all_clauses_are_3sat(self):
        builder = CnfBuilder()
        a_bits = builder.new_vars(3)
        b_bits = builder.new_vars(3)
        builder.multiplier(a_bits, b_bits)
        assert builder.build().is_3sat
