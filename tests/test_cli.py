"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def cnf_file(tmp_path):
    path = tmp_path / "f.cnf"
    path.write_text("p cnf 3 2\n1 2 3 0\n-1 2 0\n")
    return str(path)


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["solve", "x.cnf", "--classic"])
    assert args.command == "solve" and args.classic


def test_solve_classic(cnf_file, capsys):
    assert main(["solve", cnf_file, "--classic"]) == 0
    out = capsys.readouterr().out
    assert "s SAT" in out
    assert "v " in out


def test_solve_hybrid(cnf_file, capsys):
    assert main(["solve", cnf_file]) == 0
    out = capsys.readouterr().out
    assert "s SAT" in out
    assert "qa_calls=" in out


def test_solve_reduces_wide_input(tmp_path, capsys):
    path = tmp_path / "wide.cnf"
    path.write_text("p cnf 5 1\n1 2 3 4 5 0\n")
    assert main(["solve", str(path), "--classic"]) == 0
    assert "reducing" in capsys.readouterr().out


def test_generate_to_stdout(capsys):
    assert main(["generate", "BP"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("c ")
    assert "p cnf" in out


def test_generate_unknown_benchmark(capsys):
    assert main(["generate", "NOPE"]) == 2
    assert "unknown benchmark" in capsys.readouterr().out


def test_generate_to_file(tmp_path, capsys):
    out_path = tmp_path / "gen.cnf"
    assert main(["generate", "GC1", "-o", str(out_path)]) == 0
    assert out_path.exists()
    from repro.sat import read_dimacs

    formula = read_dimacs(out_path)
    assert formula.num_clauses > 0


def test_embed_hyqsat(cnf_file, capsys):
    assert main(["embed", cnf_file, "--grid", "4"]) == 0
    out = capsys.readouterr().out
    assert "scheme=hyqsat" in out
    assert "success=True" in out


def test_embed_minorminer(cnf_file, capsys):
    assert main(["embed", cnf_file, "--scheme", "minorminer", "--grid", "4"]) == 0
    assert "scheme=minorminer" in capsys.readouterr().out


def test_suite_small_slice(capsys):
    assert main(["suite", "--benchmarks", "BP", "--problems", "1"]) == 0
    out = capsys.readouterr().out
    assert "Iteration reduction" in out
    assert "BP" in out


def test_parser_observability_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["solve", "x.cnf", "--trace", "t.jsonl", "--profile",
         "--metrics", "m.prom", "--metrics-format", "json"]
    )
    assert args.trace == "t.jsonl"
    assert args.profile
    assert args.metrics == "m.prom"
    assert args.metrics_format == "json"


def test_solve_with_trace_and_profile(cnf_file, tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    assert main(["solve", cnf_file, "--trace", str(trace_path), "--profile"]) == 0
    out = capsys.readouterr().out
    assert f"c trace={trace_path}" in out
    assert "c profile phase=select" in out

    from repro.observability import read_trace

    records = read_trace(trace_path)
    assert records[0]["type"] == "meta"
    assert any(r.get("name") == "solve" for r in records)


def test_solve_metrics_export_prom(cnf_file, tmp_path, capsys):
    metrics_path = tmp_path / "m.prom"
    assert main(["solve", cnf_file, "--metrics", str(metrics_path)]) == 0
    assert "c metrics=" in capsys.readouterr().out
    text = metrics_path.read_text()
    assert "# TYPE hyqsat_qa_calls_total counter" in text


def test_solve_metrics_export_json(cnf_file, tmp_path):
    import json

    metrics_path = tmp_path / "m.json"
    assert (
        main(
            ["solve", cnf_file, "--metrics", str(metrics_path),
             "--metrics-format", "json"]
        )
        == 0
    )
    payload = json.loads(metrics_path.read_text())
    assert "hyqsat_qa_calls_total" in payload


def test_solve_classic_rejects_observability(cnf_file):
    with pytest.raises(SystemExit):
        main(["solve", cnf_file, "--classic", "--trace", "t.jsonl"])


def test_trace_report_subcommand(cnf_file, tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    assert main(["solve", cnf_file, "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    assert main(["trace-report", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "solve:" in out
    assert "Span aggregates" in out
