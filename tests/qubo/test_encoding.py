"""Tests for the Eq. 3-5 clause encoding, anchored on the paper's
worked example (Eq. 8)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.qubo.encoding import encode_clause, encode_cnf, encode_formula
from repro.qubo.gap import min_energy, min_energy_given_x
from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF, Clause


class TestPaperExample:
    """c1 = x1 ∨ x2 ∨ x3 must reproduce Eq. 8 exactly."""

    def test_equation_8(self):
        enc = encode_formula([Clause([1, 2, 3])], num_formula_vars=3)
        H = enc.objective
        assert H.offset == 1.0
        assert H.linear == {1: 1.0, 2: 1.0, 3: -1.0}
        assert H.quadratic == {
            (1, 2): 1.0,
            (1, 4): -2.0,
            (2, 4): -2.0,
            (3, 4): 1.0,
        }
        assert enc.aux_of_clause == (4,)

    def test_sub_clause_d_values(self):
        enc = encode_formula([Clause([1, 2, 3])], num_formula_vars=3)
        d_values = {(s.clause_index, s.part): s.d_value() for s in enc.sub_objectives}
        assert d_values == {(0, 1): 2.0, (0, 2): 1.0}
        assert enc.objective.d_star() == 2.0


class TestSubClauseSemantics:
    @pytest.mark.parametrize(
        "lits", [(1, 2, 3), (-1, 2, 3), (1, -2, -3), (-1, -2, -3)]
    )
    def test_three_clause_penalty_zero_iff_satisfied(self, lits):
        clause = Clause(list(lits))
        subs = encode_clause(clause, aux_var=4)
        assert len(subs) == 2
        for x1, x2, x3 in itertools.product((0, 1), repeat=3):
            assignment = {1: x1, 2: x2, 3: x3}
            best = min(
                sum(s.objective.energy({**assignment, 4: a}) for s in subs)
                for a in (0, 1)
            )
            satisfied = clause.satisfied_by({k: bool(v) for k, v in assignment.items()})
            assert (best == 0) == satisfied
            assert best >= 0

    @pytest.mark.parametrize("lits", [(1,), (-1,), (1, 2), (1, -2), (-1, -2)])
    def test_narrow_clause_penalty(self, lits):
        clause = Clause(list(lits))
        subs = encode_clause(clause, aux_var=None)
        assert len(subs) == 1
        variables = sorted(clause.variables)
        for bits in itertools.product((0, 1), repeat=len(variables)):
            assignment = dict(zip(variables, bits))
            penalty = subs[0].objective.energy(assignment)
            satisfied = clause.satisfied_by({k: bool(v) for k, v in assignment.items()})
            assert (penalty == 0) == satisfied
            assert penalty >= 0

    def test_three_clause_requires_aux(self):
        with pytest.raises(ValueError):
            encode_clause(Clause([1, 2, 3]), aux_var=None)

    def test_narrow_clause_rejects_aux(self):
        with pytest.raises(ValueError):
            encode_clause(Clause([1, 2]), aux_var=9)

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            encode_clause(Clause([]), aux_var=None)

    def test_tautology_rejected(self):
        with pytest.raises(ValueError):
            encode_clause(Clause([1, -1, 2]), aux_var=4)

    def test_wide_clause_rejected(self):
        with pytest.raises(ValueError):
            encode_clause(Clause([1, 2, 3, 4]), aux_var=5)


class TestFormulaEncoding:
    def test_aux_numbering_continues_above_formula_vars(self):
        clauses = [Clause([1, 2, 3]), Clause([2, 3, 4]), Clause([1, 2])]
        enc = encode_formula(clauses, num_formula_vars=10)
        assert enc.aux_of_clause == (11, 12, None)
        assert enc.aux_variables == (11, 12)

    def test_first_aux_override(self):
        enc = encode_formula([Clause([1, 2, 3])], 3, first_aux_var=100)
        assert enc.aux_of_clause == (100,)

    def test_variable_beyond_declared_rejected(self):
        with pytest.raises(ValueError):
            encode_formula([Clause([5])], num_formula_vars=3)

    def test_encode_cnf_wrapper(self, tiny_sat_formula):
        enc = encode_cnf(tiny_sat_formula)
        assert len(enc.clauses) == tiny_sat_formula.num_clauses

    def test_with_coefficients_rebuilds_sum(self):
        enc = encode_formula([Clause([1, 2, 3])], 3)
        boosted = enc.with_coefficients({(0, 2): 2.0})
        base = enc.sub_objectives[0].objective.copy()
        base.add_objective(enc.sub_objectives[1].objective, scale=2.0)
        assert boosted.objective.is_close(base)

    def test_with_coefficients_requires_positive(self):
        enc = encode_formula([Clause([1, 2, 3])], 3)
        with pytest.raises(ValueError):
            enc.with_coefficients({(0, 1): 0.0})


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_min_energy_zero_iff_satisfiable(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    m = int(rng.integers(1, 4 * n))
    clauses = []
    for _ in range(m):
        width = int(rng.integers(1, min(3, n) + 1))
        vs = rng.choice(np.arange(1, n + 1), size=width, replace=False)
        clauses.append(
            Clause([int(v) if rng.integers(0, 2) else -int(v) for v in vs])
        )
    formula = CNF(clauses, num_vars=n)
    enc = encode_formula(list(formula.clauses), n)
    energy, argmin = min_energy(enc)
    satisfiable = brute_force_solve(formula) is not None
    assert (energy == 0) == satisfiable
    assert energy >= 0
    if satisfiable:
        projected = {v: argmin[v] for v in range(1, n + 1) if v in argmin}
        from repro.sat.assignment import Assignment

        assert Assignment(projected).completed(n).satisfies(formula)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_min_energy_counts_violations(seed):
    """With optimal auxiliaries, a clause set's energy at fixed X is at
    least the number of clauses X violates (alpha = 1 penalties are >= 1
    per violated clause)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    clauses = []
    for _ in range(int(rng.integers(1, 10))):
        width = int(rng.integers(1, min(3, n) + 1))
        vs = rng.choice(np.arange(1, n + 1), size=width, replace=False)
        clauses.append(Clause([int(v) if rng.integers(0, 2) else -int(v) for v in vs]))
    enc = encode_formula(clauses, n)
    bits = {v: int(rng.integers(0, 2)) for v in range(1, n + 1)}
    energy, _ = min_energy_given_x(enc, bits)
    violated = sum(
        1
        for c in clauses
        if not c.satisfied_by({k: bool(v) for k, v in bits.items()})
    )
    assert energy >= violated - 1e-9
