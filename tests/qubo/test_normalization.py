"""Tests for the Eq. 6 hardware normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.qubo.encoding import encode_formula
from repro.qubo.ising import QuadraticObjective
from repro.qubo.normalization import in_hardware_range, normalize
from repro.sat.cnf import Clause


def test_scales_by_d_star():
    obj = QuadraticObjective(linear={1: 8.0}, quadratic={(1, 2): -2.0})
    normalized, d_star = normalize(obj)
    assert d_star == 4.0  # max(8/2, 2)
    assert normalized.linear_of(1) == 2.0
    assert normalized.quadratic_of(1, 2) == -0.5


def test_in_range_objective_untouched():
    obj = QuadraticObjective(linear={1: 1.0}, quadratic={(1, 2): 0.5})
    normalized, d_star = normalize(obj)
    assert d_star == 1.0
    assert normalized.is_close(obj)


def test_hardware_range_check():
    assert in_hardware_range(QuadraticObjective(linear={1: 2.0}))
    assert not in_hardware_range(QuadraticObjective(linear={1: 2.1}))
    assert in_hardware_range(QuadraticObjective(quadratic={(1, 2): -1.0}))
    assert not in_hardware_range(QuadraticObjective(quadratic={(1, 2): 1.2}))


def test_energy_scaling_relationship():
    obj = QuadraticObjective(2.0, {1: 8.0}, {(1, 2): -4.0})
    normalized, d_star = normalize(obj)
    assignment = {1: 1, 2: 1}
    assert normalized.energy(assignment) * d_star == pytest.approx(
        obj.energy(assignment)
    )


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_normalised_encodings_fit_hardware(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    clauses = []
    for _ in range(int(rng.integers(1, 3 * n))):
        width = int(rng.integers(1, min(3, n) + 1))
        vs = rng.choice(np.arange(1, n + 1), size=width, replace=False)
        clauses.append(Clause([int(v) if rng.integers(0, 2) else -int(v) for v in vs]))
    enc = encode_formula(clauses, n)
    normalized, d_star = normalize(enc.objective)
    assert d_star >= 1.0
    assert in_hardware_range(normalized)
