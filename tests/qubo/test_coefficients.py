"""Tests for the Section IV-C coefficient adjustment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.qubo.coefficients import adjust_coefficients
from repro.qubo.encoding import encode_formula
from repro.qubo.gap import energy_gap, min_energy
from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF, Clause


class TestPaperExample:
    """The Eq. 8 -> Eq. 9 adjustment of c1 = x1 ∨ x2 ∨ x3."""

    def test_alphas(self):
        enc = encode_formula([Clause([1, 2, 3])], 3)
        adj = adjust_coefficients(enc)
        assert adj.d_star == 2.0
        assert adj.alphas == {(0, 1): 1.0, (0, 2): 2.0}
        assert adj.d_values == {(0, 1): 2.0, (0, 2): 1.0}
        assert adj.max_alpha == 2.0

    def test_equation_9_objective(self):
        enc = encode_formula([Clause([1, 2, 3])], 3)
        adjusted = adjust_coefficients(enc).encoding.objective
        assert adjusted.offset == 2.0
        assert adjusted.linear == {1: 1.0, 2: 1.0, 3: -2.0, 4: -1.0}
        assert adjusted.quadratic == {
            (1, 2): 1.0,
            (1, 4): -2.0,
            (2, 4): -2.0,
            (3, 4): 2.0,
        }

    def test_d_star_preserved(self):
        enc = encode_formula([Clause([1, 2, 3])], 3)
        adj = adjust_coefficients(enc)
        assert adj.encoding.objective.d_star() == adj.d_star


def _random_clauses(rng, n, m):
    clauses = []
    for _ in range(m):
        width = int(rng.integers(1, min(3, n) + 1))
        vs = rng.choice(np.arange(1, n + 1), size=width, replace=False)
        clauses.append(Clause([int(v) if rng.integers(0, 2) else -int(v) for v in vs]))
    return clauses


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_adjustment_preserves_zero_minimum(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    clauses = _random_clauses(rng, n, int(rng.integers(1, 3 * n)))
    enc = encode_formula(clauses, n)
    adj = adjust_coefficients(enc)
    base_energy, _ = min_energy(enc)
    adj_energy, _ = min_energy(adj.encoding)
    # alpha > 0 scaling preserves the zero set of the penalty sum.
    assert (base_energy == 0) == (adj_energy == 0)
    formula = CNF(clauses, num_vars=n)
    assert (adj_energy == 0) == (brute_force_solve(formula) is not None)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_alphas_at_least_one(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    clauses = _random_clauses(rng, n, int(rng.integers(1, 3 * n)))
    adj = adjust_coefficients(encode_formula(clauses, n))
    assert all(alpha >= 1.0 - 1e-12 for alpha in adj.alphas.values())


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_gap_never_shrinks(seed):
    """The adjustment multiplies each penalty by alpha >= 1, so the
    energy of every violating assignment — and hence the gap — cannot
    decrease."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    clauses = _random_clauses(rng, n, int(rng.integers(1, 2 * n)))
    enc = encode_formula(clauses, n)
    adj = adjust_coefficients(enc)
    before = energy_gap(enc)
    after = energy_gap(adj.encoding)
    if before == float("inf"):
        assert after == float("inf")
    else:
        assert after >= before - 1e-9


def test_gap_strictly_improves_on_paper_example():
    """For a formula mixing widths the weak sub-clauses get amplified
    and the normalised gap grows (the Figure 15 effect)."""
    clauses = [Clause([-1, -2]), Clause([-1])]
    enc = encode_formula(clauses, 2)
    adj = adjust_coefficients(enc)
    before = energy_gap(enc) / max(enc.objective.d_star(), 1e-12)
    after = energy_gap(adj.encoding) / max(adj.encoding.objective.d_star(), 1e-12)
    assert after == pytest.approx(2.0 * before, rel=1e-6)
    assert after > before


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_d_star_never_grows(seed):
    """The scale-back guarantees the hardware normalisation divisor is
    unchanged, so the adjustment can never flatten the landscape."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    clauses = _random_clauses(rng, n, int(rng.integers(1, 3 * n)))
    enc = encode_formula(clauses, n)
    adj = adjust_coefficients(enc)
    assert adj.encoding.objective.d_star() <= enc.objective.d_star() * (1 + 1e-6)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_normalised_gap_never_shrinks(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    clauses = _random_clauses(rng, n, int(rng.integers(1, 2 * n)))
    enc = encode_formula(clauses, n)
    adj = adjust_coefficients(enc)
    before = energy_gap(enc)
    after = energy_gap(adj.encoding)
    if before == float("inf"):
        return
    d_before = max(enc.objective.d_star(), 1e-12)
    d_after = max(adj.encoding.objective.d_star(), 1e-12)
    assert after / d_after >= before / d_before - 1e-9
