"""Tests for the QuadraticObjective container."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.qubo.ising import LinearExpr, QuadraticObjective


class TestConstruction:
    def test_empty(self):
        obj = QuadraticObjective()
        assert obj.offset == 0.0
        assert obj.variables == set()
        assert obj.energy({}) == 0.0

    def test_terms_accumulate(self):
        obj = QuadraticObjective()
        obj.add_linear(1, 2.0).add_linear(1, 3.0)
        assert obj.linear_of(1) == 5.0

    def test_zero_coefficients_pruned(self):
        obj = QuadraticObjective()
        obj.add_linear(1, 2.0).add_linear(1, -2.0)
        assert 1 not in obj.linear
        obj.add_quadratic(1, 2, 1.0).add_quadratic(2, 1, -1.0)
        assert obj.quadratic == {}

    def test_quadratic_key_canonical(self):
        obj = QuadraticObjective()
        obj.add_quadratic(5, 2, 1.5)
        assert obj.quadratic_of(2, 5) == 1.5
        assert obj.quadratic_of(5, 2) == 1.5

    def test_self_quadratic_rejected(self):
        with pytest.raises(ValueError):
            QuadraticObjective().add_quadratic(1, 1, 1.0)

    def test_constructor_mappings(self):
        obj = QuadraticObjective(1.0, {1: 2.0}, {(1, 2): -1.0})
        assert obj.offset == 1.0
        assert obj.linear_of(1) == 2.0
        assert obj.quadratic_of(1, 2) == -1.0


class TestArithmetic:
    def test_add_objectives(self):
        a = QuadraticObjective(1.0, {1: 1.0}, {(1, 2): 1.0})
        b = QuadraticObjective(2.0, {1: -1.0}, {(1, 2): 2.0})
        c = a + b
        assert c.offset == 3.0
        assert 1 not in c.linear
        assert c.quadratic_of(1, 2) == 3.0
        # operands untouched
        assert a.linear_of(1) == 1.0

    def test_scaled(self):
        a = QuadraticObjective(1.0, {1: 2.0}, {(1, 2): 3.0})
        b = a.scaled(2.0)
        assert (b.offset, b.linear_of(1), b.quadratic_of(1, 2)) == (2.0, 4.0, 6.0)

    def test_copy_independent(self):
        a = QuadraticObjective(linear={1: 1.0})
        b = a.copy()
        b.add_linear(1, 1.0)
        assert a.linear_of(1) == 1.0

    def test_is_close(self):
        a = QuadraticObjective(linear={1: 1.0})
        b = QuadraticObjective(linear={1: 1.0 + 1e-12})
        assert a.is_close(b)
        assert not a.is_close(QuadraticObjective(linear={1: 2.0}))


class TestEvaluation:
    def test_energy_small(self):
        obj = QuadraticObjective(1.0, {1: 2.0, 2: -1.0}, {(1, 2): 3.0})
        assert obj.energy({1: 0, 2: 0}) == 1.0
        assert obj.energy({1: 1, 2: 0}) == 3.0
        assert obj.energy({1: 1, 2: 1}) == 5.0

    def test_energy_accepts_bools(self):
        obj = QuadraticObjective(linear={1: 2.0})
        assert obj.energy({1: True}) == 2.0

    def test_to_arrays_matches_energy(self):
        obj = QuadraticObjective(0.5, {1: 1.0, 3: -2.0}, {(1, 3): 4.0})
        offset, b, J, order = obj.to_arrays()
        for bits in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            x = np.array(bits, dtype=float)
            dense = offset + b @ x + x @ J @ x
            sparse = obj.energy(dict(zip(order, bits)))
            assert dense == pytest.approx(sparse)

    def test_energies_vectorised(self):
        obj = QuadraticObjective(1.0, {1: 1.0, 2: 1.0}, {(1, 2): -2.0})
        samples = np.array([[0, 0], [1, 1], [1, 0]])
        energies = obj.energies(samples, order=[1, 2])
        assert list(energies) == [1.0, 1.0, 2.0]

    def test_d_star(self):
        obj = QuadraticObjective(linear={1: 4.0}, quadratic={(1, 2): -1.5})
        # max(|4|/2, |-1.5|) = 2.0
        assert obj.d_star() == 2.0

    def test_problem_graph(self):
        obj = QuadraticObjective(linear={1: 1.0}, quadratic={(1, 2): -1.0, (2, 3): 1.0})
        g = obj.problem_graph()
        assert set(g.nodes) == {1, 2, 3}
        assert g.edges[(1, 2)]["weight"] == -1.0
        assert nx.is_connected(g)


class TestLinearExpr:
    def test_literal_polynomials(self):
        pos = LinearExpr.literal(1, True)
        neg = LinearExpr.literal(1, False)
        assert (pos.const, pos.terms) == (0.0, {1: 1.0})
        assert (neg.const, neg.terms) == (1.0, {1: -1.0})

    def test_product_of_distinct_vars(self):
        obj = QuadraticObjective()
        LinearExpr.literal(1, True).multiply_into(LinearExpr.literal(2, True), obj)
        assert obj.quadratic_of(1, 2) == 1.0

    def test_product_with_negations(self):
        # (1 - x1)(1 - x2) = 1 - x1 - x2 + x1 x2
        obj = QuadraticObjective()
        LinearExpr.literal(1, False).multiply_into(LinearExpr.literal(2, False), obj)
        assert obj.offset == 1.0
        assert obj.linear_of(1) == -1.0
        assert obj.quadratic_of(1, 2) == 1.0

    def test_square_is_idempotent(self):
        # x * x = x for binary x.
        obj = QuadraticObjective()
        x = LinearExpr.variable(1)
        x.multiply_into(x, obj)
        assert obj.linear_of(1) == 1.0
        assert not obj.quadratic

    def test_add_into_with_scale(self):
        obj = QuadraticObjective()
        LinearExpr.literal(1, False).add_into(obj, scale=2.0)
        assert obj.offset == 2.0
        assert obj.linear_of(1) == -2.0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=1, max_value=6),
            st.floats(min_value=-5, max_value=5),
        ),
        max_size=10,
    ),
    st.integers(min_value=0, max_value=63),
)
def test_property_energy_linearity(terms, bits_int):
    obj = QuadraticObjective()
    for u, v, coeff in terms:
        if u == v:
            obj.add_linear(u, coeff)
        else:
            obj.add_quadratic(u, v, coeff)
    assignment = {v: (bits_int >> (v - 1)) & 1 for v in range(1, 7)}
    doubled = obj.scaled(2.0)
    assert doubled.energy(assignment) == pytest.approx(2 * obj.energy(assignment))
