"""Tests for exhaustive energy evaluation and the energy gap."""

import pytest

from repro.qubo.encoding import encode_formula
from repro.qubo.gap import energy_gap, min_energy, min_energy_given_x
from repro.sat.cnf import Clause


def test_min_energy_given_x_optimises_aux():
    enc = encode_formula([Clause([1, 2, 3])], 3)
    # x satisfies the clause via x1=1: optimal aux must reach 0.
    energy, full = min_energy_given_x(enc, {1: 1, 2: 0, 3: 0})
    assert energy == 0.0
    assert full[4] in (0, 1)


def test_min_energy_given_x_violating_assignment():
    enc = encode_formula([Clause([1, 2, 3])], 3)
    energy, _ = min_energy_given_x(enc, {1: 0, 2: 0, 3: 0})
    assert energy >= 1.0


def test_gap_of_single_clause_is_one():
    enc = encode_formula([Clause([1, 2, 3])], 3)
    assert energy_gap(enc) == 1.0


def test_gap_infinite_when_always_satisfied():
    # x1 ∨ ¬x2 and ¬x1 ∨ x2 are violated somewhere, but a single
    # always-satisfiable set needs a tautology-free example: use the
    # pair {x1, ¬x1} over separate clauses... instead check clause set
    # whose union covers all assignments is impossible; simplest: the
    # empty encoding region when every assignment satisfies.
    enc = encode_formula([Clause([1, -2]), Clause([-1, 2])], 2)
    # Assignments (0,1) and (1,0) violate: gap is finite.
    assert energy_gap(enc) == 1.0


def test_gap_counts_min_over_violations():
    # Violating both clauses costs 2; violating one costs 1 -> gap 1.
    enc = encode_formula([Clause([1]), Clause([2])], 2)
    assert energy_gap(enc) == 1.0


def test_min_energy_unsat_pair():
    enc = encode_formula([Clause([1]), Clause([-1])], 1)
    energy, _ = min_energy(enc)
    assert energy == 1.0


def test_var_limit():
    clauses = [Clause([v, v + 1, v + 2]) for v in range(1, 24)]
    enc = encode_formula(clauses, 26)
    with pytest.raises(ValueError):
        min_energy(enc)
    with pytest.raises(ValueError):
        energy_gap(enc)


def test_cancelled_variables_still_enumerated():
    # (x1) + (¬x1): linear terms cancel in the summed objective, but
    # the gap search must still consider x1.
    enc = encode_formula([Clause([1]), Clause([-1])], 1)
    assert energy_gap(enc) == 1.0
