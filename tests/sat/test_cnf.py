"""Tests for the core CNF data model."""

import pytest
from hypothesis import given, strategies as st

from repro.sat.cnf import CNF, Clause, Lit, clause, fingerprint


# ----------------------------------------------------------------------
# Lit
# ----------------------------------------------------------------------


class TestLit:
    def test_positive_literal(self):
        lit = Lit(3)
        assert lit.var == 3
        assert lit.positive
        assert not lit.negative
        assert lit.value == 3

    def test_negative_literal(self):
        lit = Lit(-7)
        assert lit.var == 7
        assert lit.negative
        assert not lit.positive

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            Lit(0)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            Lit("3")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            Lit(True)

    def test_negation_operators(self):
        assert -Lit(5) == Lit(-5)
        assert ~Lit(-5) == Lit(5)
        assert -(-Lit(5)) == Lit(5)

    def test_satisfied_by(self):
        assert Lit(2).satisfied_by(True)
        assert not Lit(2).satisfied_by(False)
        assert Lit(-2).satisfied_by(False)
        assert not Lit(-2).satisfied_by(True)

    def test_ordering_groups_by_variable(self):
        lits = sorted([Lit(-1), Lit(2), Lit(1), Lit(-2)])
        assert [l.value for l in lits] == [1, -1, 2, -2]

    def test_hash_equality(self):
        assert hash(Lit(4)) == hash(Lit(4))
        assert Lit(4) != Lit(-4)
        assert len({Lit(1), Lit(1), Lit(-1)}) == 2

    def test_int_conversion(self):
        assert int(Lit(-9)) == -9

    @given(st.integers(min_value=-1000, max_value=1000).filter(lambda v: v != 0))
    def test_double_negation_roundtrip(self, value):
        assert -(-Lit(value)) == Lit(value)


# ----------------------------------------------------------------------
# Clause
# ----------------------------------------------------------------------


class TestClause:
    def test_normalisation_dedupes(self):
        assert Clause([1, 1, 2]) == Clause([2, 1])

    def test_normalisation_sorts(self):
        assert Clause([3, -1, 2]).lits == (Lit(-1), Lit(2), Lit(3))

    def test_accepts_lit_objects_and_ints(self):
        assert Clause([Lit(1), -2]) == Clause([1, -2])

    def test_empty_clause(self):
        empty = Clause([])
        assert empty.is_empty
        assert len(empty) == 0
        assert not empty.satisfied_by({1: True})

    def test_unit_clause(self):
        assert Clause([5]).is_unit
        assert not Clause([5, 6]).is_unit

    def test_tautology_detection(self):
        assert Clause([1, -1, 2]).is_tautology
        assert not Clause([1, 2, 3]).is_tautology

    def test_variables(self):
        assert Clause([1, -2, 3]).variables == frozenset({1, 2, 3})

    def test_satisfied_by(self):
        c = Clause([1, -2])
        assert c.satisfied_by({1: True, 2: True})
        assert c.satisfied_by({1: False, 2: False})
        assert not c.satisfied_by({1: False, 2: True})

    def test_partial_assignment_not_satisfied(self):
        assert not Clause([1, 2]).satisfied_by({})

    def test_contains(self):
        c = Clause([1, -2])
        assert Lit(1) in c
        assert 1 in c
        assert -2 in c
        assert 2 not in c
        assert "x" not in c

    def test_hash_equality_after_normalisation(self):
        assert hash(Clause([2, 1])) == hash(Clause([1, 2, 2]))

    def test_str_rendering(self):
        assert str(Clause([1, -2])) == "x1 ∨ ¬x2"
        assert str(Clause([])) == "⊥"

    def test_clause_helper(self):
        assert clause(1, -2, 3) == Clause([1, -2, 3])

    @given(
        st.lists(
            st.integers(min_value=-20, max_value=20).filter(lambda v: v != 0),
            min_size=0,
            max_size=8,
        )
    )
    def test_normalisation_idempotent(self, lits):
        once = Clause(lits)
        twice = Clause([l.value for l in once.lits])
        assert once == twice


# ----------------------------------------------------------------------
# CNF
# ----------------------------------------------------------------------


class TestCNF:
    def test_empty_formula(self):
        f = CNF([])
        assert f.num_vars == 0
        assert f.num_clauses == 0
        assert f.satisfied_by({})

    def test_num_vars_inferred(self):
        f = CNF([[1, -5]])
        assert f.num_vars == 5

    def test_num_vars_may_extend(self):
        f = CNF([[1, 2]], num_vars=10)
        assert f.num_vars == 10

    def test_num_vars_cannot_shrink(self):
        with pytest.raises(ValueError):
            CNF([[1, 5]], num_vars=3)

    def test_clause_coercion(self):
        f = CNF([[1, 2], Clause([3])])
        assert f.clauses == (Clause([1, 2]), Clause([3]))

    def test_is_3sat(self):
        assert CNF([[1, 2, 3]]).is_3sat
        assert not CNF([[1, 2, 3, 4]]).is_3sat

    def test_max_clause_size(self):
        assert CNF([[1], [1, 2, 3]]).max_clause_size == 3
        assert CNF([]).max_clause_size == 0

    def test_clause_ratio(self):
        assert CNF([[1, 2]] * 1, num_vars=2).clause_ratio == 0.5

    def test_satisfied_by(self, tiny_sat_formula):
        assert tiny_sat_formula.satisfied_by({1: False, 2: False, 3: True, 4: True})
        assert not tiny_sat_formula.satisfied_by({1: False, 2: False, 3: False, 4: False})

    def test_unsatisfied_clauses(self, tiny_sat_formula):
        unsat = tiny_sat_formula.unsatisfied_clauses({1: False, 2: False, 3: False})
        assert unsat == [Clause([1, 2, 3])]

    def test_restrict_drops_satisfied(self):
        f = CNF([[1, 2], [-1, 3]])
        reduced = f.restrict({1: True})
        assert reduced.clauses == (Clause([3]),)
        assert reduced.num_vars == f.num_vars

    def test_restrict_narrows_falsified(self):
        f = CNF([[1, 2, 3]])
        reduced = f.restrict({1: False})
        assert reduced.clauses == (Clause([2, 3]),)

    def test_restrict_can_create_empty_clause(self):
        f = CNF([[1, 2]])
        reduced = f.restrict({1: False, 2: False})
        assert reduced.clauses[0].is_empty

    def test_with_clauses(self):
        f = CNF([[1, 2]]).with_clauses([[3]])
        assert f.num_clauses == 2

    def test_clause_index(self):
        f = CNF([[1, 2], [-2, 3]])
        index = f.clause_index()
        assert index == {1: [0], 2: [0, 1], 3: [1]}

    def test_variables_property(self):
        f = CNF([[1, 3]], num_vars=5)
        assert f.variables == frozenset({1, 3})

    def test_iteration_and_indexing(self, tiny_sat_formula):
        assert list(tiny_sat_formula)[0] == tiny_sat_formula[0]
        assert len(tiny_sat_formula) == 2

    def test_equality_includes_num_vars(self):
        assert CNF([[1]], num_vars=1) != CNF([[1]], num_vars=2)

    def test_str(self):
        assert str(CNF([])) == "⊤"
        assert "∧" in str(CNF([[1], [2]]))


class TestFingerprint:
    def test_is_a_sha256_hex_digest(self):
        digest = fingerprint(CNF([[1, 2, 3]], num_vars=3))
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_equal_formulas_fingerprint_equally(self):
        a = CNF([[1, 2, 3], [-1, 2, 4]], num_vars=4)
        b = CNF([[1, 2, 3], [-1, 2, 4]], num_vars=4)
        assert fingerprint(a) == fingerprint(b)

    def test_clause_order_invariant(self):
        a = CNF([[1, 2, 3], [-1, 2, 4]], num_vars=4)
        b = CNF([[-1, 2, 4], [1, 2, 3]], num_vars=4)
        assert fingerprint(a) == fingerprint(b)

    def test_literal_order_invariant(self):
        a = CNF([[3, 1, 2]], num_vars=3)
        b = CNF([[1, 2, 3]], num_vars=3)
        assert fingerprint(a) == fingerprint(b)

    def test_clause_content_matters(self):
        a = CNF([[1, 2, 3]], num_vars=3)
        b = CNF([[1, 2, -3]], num_vars=3)
        assert fingerprint(a) != fingerprint(b)

    def test_num_vars_matters(self):
        a = CNF([[1, 2]], num_vars=2)
        b = CNF([[1, 2]], num_vars=3)
        assert fingerprint(a) != fingerprint(b)

    def test_clause_multiset_matters(self):
        once = CNF([[1, 2]], num_vars=2)
        twice = CNF([[1, 2], [1, 2]], num_vars=2)
        assert fingerprint(once) != fingerprint(twice)

    def test_variable_identity_not_canonicalised(self):
        # x1 and x2 stay distinguishable: no renaming canonicalisation.
        a = CNF([[1]], num_vars=2)
        b = CNF([[2]], num_vars=2)
        assert fingerprint(a) != fingerprint(b)

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=-6, max_value=6).filter(bool),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=8,
        ),
        st.randoms(),
    )
    def test_any_clause_permutation_fingerprints_equally(self, rows, rnd):
        formula = CNF(rows, num_vars=6)
        shuffled_rows = list(rows)
        rnd.shuffle(shuffled_rows)
        shuffled = CNF(shuffled_rows, num_vars=6)
        assert fingerprint(formula) == fingerprint(shuffled)
