"""Fingerprint properties under permutation and the incremental API.

The persistent result cache keys everything on
:func:`repro.sat.cnf.fingerprint` (via ``JobSpec.solve_key``), so
these pin the invariants the cache's soundness rests on: permutation
invariance, sensitivity to actual content changes, stability across a
push/add_clause/pop cycle, and collision-freedom over the same
204-instance sweep corpus the engine-identity gate uses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.cdcl.solver import CdclSolver
from repro.sat import to_dimacs
from repro.sat.cnf import CNF, Clause, Lit, fingerprint
from repro.service import JobSpec

#: The engine-identity sweep sizes (tests/cdcl/test_fast_identity.py).
SIZES = [(12, 41), (16, 68), (20, 85), (20, 120), (24, 103), (24, 144)]


def permuted(formula: CNF, rng) -> CNF:
    """Same formula, clauses shuffled and literals rotated."""
    clauses = [
        Clause(
            [clause.lits[(i + 1) % len(clause.lits)]
             for i in range(len(clause.lits))]
        )
        for clause in formula.clauses
    ]
    order = rng.permutation(len(clauses))
    return CNF([clauses[i] for i in order], num_vars=formula.num_vars)


class TestPermutationInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_clause_and_literal_order_do_not_matter(self, seed):
        formula = random_3sat(16, 68, np.random.default_rng(500 + seed))
        shuffled = permuted(formula, np.random.default_rng(seed))
        assert fingerprint(formula) == fingerprint(shuffled)

    def test_solve_key_inherits_the_invariance(self):
        formula = random_3sat(12, 41, np.random.default_rng(77))
        shuffled = permuted(formula, np.random.default_rng(78))
        key_a = JobSpec(job_id="a", dimacs=to_dimacs(formula)).solve_key()
        key_b = JobSpec(job_id="b", dimacs=to_dimacs(shuffled)).solve_key()
        assert key_a == key_b

    def test_content_changes_do_change_the_hash(self):
        formula = random_3sat(12, 41, np.random.default_rng(77))
        extended = CNF(
            list(formula.clauses) + [Clause([Lit(1), Lit(2)])],
            num_vars=formula.num_vars,
        )
        widened = CNF(list(formula.clauses), num_vars=formula.num_vars + 1)
        assert fingerprint(extended) != fingerprint(formula)
        assert fingerprint(widened) != fingerprint(formula)


class TestIncrementalRoundTrip:
    """push/add_clause/pop must return the solver to a state whose
    answers match the original fingerprint's — the property that lets
    the cache keep serving results recorded before an incremental
    session."""

    @pytest.mark.parametrize("seed", range(5))
    def test_pop_restores_the_original_answer(self, seed):
        formula = random_3sat(14, 55, np.random.default_rng(600 + seed))
        fp_before = fingerprint(formula)

        solver = CdclSolver(formula)
        first = solver.solve()

        solver.push()
        solver.add_clause([1, 2])
        solver.add_clause([-3, 4, 5])
        solver.solve()
        solver.pop()

        again = solver.solve()
        assert again.status == first.status
        if first.model is not None:
            assert again.model.satisfies(formula)

        # The CNF object was never mutated: its fingerprint (the
        # cache key) still identifies the base instance.
        assert fingerprint(formula) == fp_before

    def test_extended_formula_fingerprints_differently(self):
        """The clause group added under push corresponds to a
        *different* cache identity — assert the two keys cannot
        collide, so a cached base result can never be served for the
        extended instance by mistake."""
        formula = random_3sat(14, 55, np.random.default_rng(42))
        extra = Clause([Lit(1), Lit(2)])
        extended = CNF(
            list(formula.clauses) + [extra], num_vars=formula.num_vars
        )
        assert fingerprint(extended) != fingerprint(formula)
        # Popping back to the base list restores the original hash.
        popped = CNF(
            list(formula.clauses) + [extra], num_vars=formula.num_vars
        )
        popped = CNF(popped.clauses[:-1], num_vars=formula.num_vars)
        assert fingerprint(popped) == fingerprint(formula)


class TestCollisionSmoke:
    def test_sweep_corpus_has_no_collisions(self):
        """17 seeds x 6 sizes x 2 ratios = 204 distinct instances;
        fingerprints and solve keys must all be distinct."""
        fingerprints = {}
        keys = set()
        for seed in range(17):
            for num_vars, num_clauses in SIZES:
                for bump in (0, 7):
                    formula = random_3sat(
                        num_vars,
                        num_clauses + bump,
                        np.random.default_rng(100 * seed + bump),
                    )
                    fp = fingerprint(formula)
                    assert fp not in fingerprints, (
                        f"collision with {fingerprints[fp]}"
                    )
                    fingerprints[fp] = (seed, num_vars, num_clauses, bump)
                    keys.add(
                        JobSpec(
                            job_id="x", dimacs=to_dimacs(formula)
                        ).solve_key()
                    )
        assert len(fingerprints) == 204
        assert len(keys) == 204
