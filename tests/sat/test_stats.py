"""Tests for formula statistics."""

import pytest

from repro.sat.cnf import CNF
from repro.sat.stats import formula_stats


def test_empty_formula():
    stats = formula_stats(CNF([], num_vars=0))
    assert stats.num_clauses == 0
    assert stats.mean_occurrences == 0.0
    assert stats.positive_literal_fraction == 0.0
    assert stats.is_3sat


def test_width_histogram():
    f = CNF([[1], [1, 2], [1, 2, 3], [1, -2, 3]])
    stats = formula_stats(f)
    assert stats.width_histogram == ((1, 1), (2, 1), (3, 2))
    assert stats.is_3sat


def test_wide_clause_flagged():
    stats = formula_stats(CNF([[1, 2, 3, 4]]))
    assert not stats.is_3sat


def test_occurrences():
    f = CNF([[1, 2], [1, 3], [1, -2]])
    stats = formula_stats(f)
    assert stats.max_occurrences == 3  # variable 1
    assert stats.mean_occurrences == pytest.approx(6 / 3)


def test_polarity_fraction():
    f = CNF([[1, -2], [-1, -3]])
    stats = formula_stats(f)
    assert stats.positive_literal_fraction == pytest.approx(0.25)


def test_ratio():
    f = CNF([[1, 2, 3]] * 4, num_vars=3)
    # Duplicate clauses collapse? CNF keeps order/duplicates as given.
    stats = formula_stats(f)
    assert stats.clause_ratio == pytest.approx(4 / 3)


def test_uniform_random_family(rng):
    from repro.benchgen.random_ksat import random_3sat

    f = random_3sat(50, 215, rng)
    stats = formula_stats(f)
    assert stats.clause_ratio == pytest.approx(4.3)
    assert stats.width_histogram == ((3, 215),)
    # Signs are balanced in expectation.
    assert 0.4 < stats.positive_literal_fraction < 0.6
