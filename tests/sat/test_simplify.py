"""Tests for presolve simplification."""

from hypothesis import given, settings, strategies as st

from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF, Clause
from repro.sat.simplify import eliminate_pure_literals, propagate_units, simplify


class TestUnitPropagation:
    def test_simple_chain(self):
        f = CNF([[1], [-1, 2], [-2, 3]])
        result = propagate_units(f)
        assert not result.conflict
        assert result.forced == {1: True, 2: True, 3: True}
        assert result.formula.num_clauses == 0
        assert result.decided_sat

    def test_conflict_between_units(self):
        f = CNF([[1], [-1]])
        assert propagate_units(f).conflict

    def test_conflict_via_narrowing(self):
        f = CNF([[1], [2], [-1, -2]])
        assert propagate_units(f).conflict

    def test_empty_clause_is_conflict(self):
        assert propagate_units(CNF([Clause([])], num_vars=1)).conflict

    def test_tautologies_dropped(self):
        f = CNF([[1, -1]], num_vars=1)
        result = propagate_units(f)
        assert not result.conflict
        assert result.formula.num_clauses == 0

    def test_no_units_no_change(self):
        f = CNF([[1, 2], [-1, -2]])
        result = propagate_units(f)
        assert result.formula == f
        assert len(result.forced) == 0

    def test_narrowed_clause_kept(self):
        f = CNF([[1], [-1, 2, 3]])
        result = propagate_units(f)
        assert result.formula.clauses == (Clause([2, 3]),)


class TestPureLiterals:
    def test_pure_positive(self):
        f = CNF([[1, 2], [1, -2]])
        result = eliminate_pure_literals(f)
        assert result.forced.get(1) is True
        assert result.formula.num_clauses == 0

    def test_cascading_purity(self):
        # After 1 is eliminated, -2 becomes pure.
        f = CNF([[1, 2], [-2, 3], [-2, -3]])
        result = eliminate_pure_literals(f)
        assert result.formula.num_clauses == 0

    def test_never_conflicts(self):
        f = CNF([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        result = eliminate_pure_literals(f)
        assert not result.conflict


class TestSimplify:
    def test_detects_unsat(self, tiny_unsat_formula):
        # No units/pures here, so full simplify leaves it open.
        result = simplify(tiny_unsat_formula)
        assert not result.decided_sat

    def test_unit_then_pure(self):
        f = CNF([[1], [-1, 2, 3], [-1, 2, -3]])
        result = simplify(f)
        assert result.decided_sat

    def test_forced_assignment_consistent(self):
        f = CNF([[1], [-1, 2]])
        result = simplify(f)
        model = result.forced.completed(f.num_vars)
        assert model.satisfies(f)


@st.composite
def small_formulas(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    clauses = draw(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=num_vars),
                min_size=1,
                max_size=3,
                unique=True,
            ).map(lambda vs: [v if draw(st.booleans()) else -v for v in vs]),
            min_size=0,
            max_size=12,
        )
    )
    return CNF([Clause(c) for c in clauses], num_vars=num_vars)


@settings(max_examples=60, deadline=None)
@given(small_formulas())
def test_simplification_preserves_satisfiability(formula):
    original_sat = brute_force_solve(formula) is not None
    result = simplify(formula)
    if result.conflict:
        assert not original_sat
        return
    # Any model of the simplified formula extends (with forced values)
    # to a model of the original; satisfiability must match.
    residual = brute_force_solve(result.formula)
    simplified_sat = residual is not None
    assert simplified_sat == original_sat
    if residual is not None:
        combined = residual.copy()
        for var, val in result.forced.items():
            combined.assign(var, val)
        assert combined.completed(formula.num_vars).satisfies(formula)
