"""Tests for the exhaustive reference solver."""

import pytest

from repro.sat.brute import brute_force_count, brute_force_solve
from repro.sat.cnf import CNF, Clause


def test_satisfiable_returns_model(tiny_sat_formula):
    model = brute_force_solve(tiny_sat_formula)
    assert model is not None
    assert model.satisfies(tiny_sat_formula)


def test_unsatisfiable_returns_none(tiny_unsat_formula):
    assert brute_force_solve(tiny_unsat_formula) is None


def test_empty_formula_trivially_sat():
    model = brute_force_solve(CNF([], num_vars=0))
    assert model is not None


def test_empty_clause_unsat():
    assert brute_force_solve(CNF([Clause([])], num_vars=1)) is None


def test_count_free_variables():
    # (x1) over 2 variables: x2 free -> 2 models.
    assert brute_force_count(CNF([[1]], num_vars=2)) == 2


def test_count_unsat_is_zero(tiny_unsat_formula):
    assert brute_force_count(tiny_unsat_formula) == 0


def test_count_tautology_like():
    # (x1 ∨ ¬x1) is a tautology clause: all 2 assignments.
    assert brute_force_count(CNF([[1, -1]], num_vars=1)) == 2


def test_var_limit_enforced():
    f = CNF([[1]], num_vars=25)
    with pytest.raises(ValueError):
        brute_force_solve(f)
    with pytest.raises(ValueError):
        brute_force_count(f)


def test_exact_count_small_3sat():
    # (x1 ∨ x2) ∧ (¬x1 ∨ x3): count by hand = 4
    f = CNF([[1, 2], [-1, 3]], num_vars=3)
    # enumerate: x1=0: need x2=1 -> x3 free (2); x1=1: need x3=1 -> x2 free (2)
    assert brute_force_count(f) == 4
