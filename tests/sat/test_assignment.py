"""Tests for Assignment."""

import pytest
from hypothesis import given, strategies as st

from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause, Lit


class TestConstruction:
    def test_empty(self):
        a = Assignment()
        assert len(a) == 0

    def test_from_mapping(self):
        a = Assignment({1: True, 2: False})
        assert a[1] is True
        assert a[2] is False

    def test_from_literals(self):
        a = Assignment.from_literals([1, -2, Lit(3)])
        assert a == Assignment({1: True, 2: False, 3: True})

    def test_all_false_true(self):
        assert all(not v for v in Assignment.all_false(4).values())
        assert all(Assignment.all_true(4).values())
        assert len(Assignment.all_true(4)) == 4

    def test_rejects_nonpositive_var(self):
        with pytest.raises(ValueError):
            Assignment().assign(0, True)
        with pytest.raises(ValueError):
            Assignment({-1: True})


class TestMutation:
    def test_assign_overwrites(self):
        a = Assignment({1: True})
        a.assign(1, False)
        assert a[1] is False

    def test_unassign(self):
        a = Assignment({1: True})
        a.unassign(1)
        assert 1 not in a
        a.unassign(99)  # no-op

    def test_setitem(self):
        a = Assignment()
        a[3] = 1  # truthy coerced
        assert a[3] is True

    def test_copy_is_independent(self):
        a = Assignment({1: True})
        b = a.copy()
        b.assign(1, False)
        assert a[1] is True


class TestQueries:
    def test_value_of_literal(self):
        a = Assignment({1: True})
        assert a.value_of(Lit(1)) is True
        assert a.value_of(Lit(-1)) is False
        assert a.value_of(Lit(2)) is None

    def test_satisfies_clause(self):
        a = Assignment({1: False, 2: True})
        assert a.satisfies_clause(Clause([1, 2]))
        assert not a.satisfies_clause(Clause([1, -2]))

    def test_falsifies_clause(self):
        a = Assignment({1: False, 2: False})
        assert a.falsifies_clause(Clause([1, 2]))
        assert not a.falsifies_clause(Clause([1, 3]))  # 3 unassigned

    def test_satisfies_formula(self, tiny_sat_formula):
        a = Assignment({1: False, 2: False, 3: True, 4: True})
        assert a.satisfies(tiny_sat_formula)

    def test_is_total(self):
        a = Assignment({1: True, 2: True})
        assert a.is_total(2)
        assert not a.is_total(3)

    def test_completed_fills_default(self):
        a = Assignment({2: True}).completed(3)
        assert a == Assignment({1: False, 2: True, 3: False})

    def test_completed_keeps_existing(self):
        a = Assignment({1: True}).completed(2, default=True)
        assert a[1] is True and a[2] is True

    def test_frozen_is_hashable_snapshot(self):
        a = Assignment({2: False, 1: True})
        assert a.frozen() == ((1, True), (2, False))
        hash(a.frozen())

    def test_as_literals(self):
        a = Assignment({2: False, 1: True})
        assert a.as_literals() == (Lit(1), Lit(-2))

    def test_mapping_protocol(self):
        a = Assignment({1: True, 2: False})
        assert set(a.keys()) == {1, 2}
        assert sorted(a.items()) == [(1, True), (2, False)]
        assert a.get(3) is None
        assert a.get(3, True) is True
        assert list(iter(a)) == list(a.keys())

    def test_equality_with_dict(self):
        assert Assignment({1: True}) == {1: True}


@given(
    st.dictionaries(
        st.integers(min_value=1, max_value=30), st.booleans(), max_size=15
    )
)
def test_roundtrip_through_literals(values):
    a = Assignment(values)
    b = Assignment.from_literals(a.as_literals())
    assert a == b
