"""Tests for the k-SAT to 3-SAT reduction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF, Clause
from repro.sat.ksat import to_3sat


def test_narrow_clauses_kept_verbatim(tiny_sat_formula):
    red = to_3sat(tiny_sat_formula)
    assert red.formula == tiny_sat_formula
    assert red.num_aux_vars == 0


def test_wide_clause_split_count():
    f = CNF([[1, 2, 3, 4, 5]], num_vars=5)
    red = to_3sat(f)
    # k-literal clause -> k-2 clauses, k-3 auxiliaries.
    assert red.formula.num_clauses == 3
    assert red.num_aux_vars == 2
    assert red.formula.is_3sat
    assert red.aux_of_clause == ((6, 7),)


def test_variable_numbering_preserved():
    f = CNF([[1, 2, 3, 4]], num_vars=4)
    red = to_3sat(f)
    assert red.original_num_vars == 4
    assert all(v > 4 for aux in red.aux_of_clause for v in aux)


def test_four_literal_split_structure():
    f = CNF([[1, 2, 3, 4]], num_vars=4)
    red = to_3sat(f)
    assert red.formula.clauses == (
        Clause([1, 2, 5]),
        Clause([-5, 3, 4]),
    )


def test_restrict_model_projects():
    f = CNF([[1, 2, 3, 4]], num_vars=4)
    red = to_3sat(f)
    model = brute_force_solve(red.formula)
    projected = red.restrict_model(model)
    assert set(projected.keys()) <= {1, 2, 3, 4}
    assert projected.satisfies(f)


@st.composite
def wide_formulas(draw):
    num_vars = draw(st.integers(min_value=4, max_value=9))
    clauses = draw(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=num_vars),
                min_size=1,
                max_size=7,
                unique=True,
            ).map(lambda vs: [v if v % 2 else -v for v in vs]),
            min_size=1,
            max_size=6,
        )
    )
    return CNF([Clause(c) for c in clauses], num_vars=num_vars)


@settings(max_examples=40, deadline=None)
@given(wide_formulas())
def test_equisatisfiable(formula):
    red = to_3sat(formula)
    assert red.formula.is_3sat
    original = brute_force_solve(formula) is not None
    if red.formula.num_vars <= 24:
        reduced = brute_force_solve(red.formula) is not None
        assert original == reduced


@settings(max_examples=25, deadline=None)
@given(wide_formulas())
def test_reduced_model_satisfies_original(formula):
    red = to_3sat(formula)
    if red.formula.num_vars > 24:
        return
    model = brute_force_solve(red.formula)
    if model is not None:
        assert red.restrict_model(model).satisfies(formula)
