"""Tests for DIMACS parsing/serialisation."""

import pytest
from hypothesis import given, strategies as st

from repro.sat.cnf import CNF, Clause
from repro.sat.dimacs import (
    DimacsError,
    parse_dimacs,
    read_dimacs,
    to_dimacs,
    write_dimacs,
)

BASIC = """c example
p cnf 4 2
1 2 3 0
2 -3 4 0
"""


class TestParse:
    def test_basic(self):
        f = parse_dimacs(BASIC)
        assert f.num_vars == 4
        assert f.clauses == (Clause([1, 2, 3]), Clause([2, -3, 4]))

    def test_comments_anywhere(self):
        text = "c top\np cnf 1 1\nc middle\n1 0\n"
        assert parse_dimacs(text).num_clauses == 1

    def test_clause_spanning_lines(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        assert parse_dimacs(text).clauses == (Clause([1, 2, 3]),)

    def test_multiple_clauses_per_line(self):
        text = "p cnf 2 2\n1 0 -2 0\n"
        assert parse_dimacs(text).num_clauses == 2

    def test_satlib_percent_terminator(self):
        text = "p cnf 1 1\n1 0\n%\n0\n"
        assert parse_dimacs(text).num_clauses == 1

    def test_blank_lines_ignored(self):
        text = "p cnf 1 1\n\n1 0\n\n"
        assert parse_dimacs(text).num_clauses == 1

    def test_missing_header(self):
        with pytest.raises(DimacsError, match="problem line"):
            parse_dimacs("1 2 0\n")

    def test_duplicate_header(self):
        with pytest.raises(DimacsError, match="duplicate"):
            parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n")

    def test_malformed_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 1\n")
        with pytest.raises(DimacsError):
            parse_dimacs("p sat 1 1\n")
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf one 1\n")

    def test_bad_literal_token(self):
        with pytest.raises(DimacsError, match="bad literal"):
            parse_dimacs("p cnf 1 1\nx 0\n")

    def test_clause_count_mismatch_strict(self):
        with pytest.raises(DimacsError, match="clauses"):
            parse_dimacs("p cnf 1 2\n1 0\n")

    def test_clause_count_mismatch_lenient(self):
        f = parse_dimacs("p cnf 1 2\n1 0\n", strict=False)
        assert f.num_clauses == 1

    def test_variable_overflow_strict(self):
        with pytest.raises(DimacsError, match="exceeds"):
            parse_dimacs("p cnf 1 1\n2 0\n")

    def test_variable_overflow_lenient(self):
        f = parse_dimacs("p cnf 1 1\n2 0\n", strict=False)
        assert f.num_vars == 2

    def test_unterminated_clause_strict(self):
        with pytest.raises(DimacsError, match="unterminated"):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_unterminated_clause_lenient(self):
        f = parse_dimacs("p cnf 2 1\n1 2\n", strict=False)
        assert f.clauses == (Clause([1, 2]),)

    def test_negative_header_counts(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf -1 0\n")


class TestSerialise:
    def test_roundtrip(self):
        f = parse_dimacs(BASIC)
        assert parse_dimacs(to_dimacs(f)) == f

    def test_comments_emitted(self):
        text = to_dimacs(CNF([[1]]), comments=["hello", "two\nlines"])
        assert text.startswith("c hello\nc two\nc lines\n")

    def test_empty_formula(self):
        assert "p cnf 0 0" in to_dimacs(CNF([]))

    def test_file_roundtrip(self, tmp_path):
        f = parse_dimacs(BASIC)
        path = tmp_path / "f.cnf"
        write_dimacs(f, path, comments=["x"])
        assert read_dimacs(path) == f


@st.composite
def formulas(draw):
    num_vars = draw(st.integers(min_value=1, max_value=12))
    clauses = draw(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=num_vars).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=0,
            max_size=10,
        )
    )
    return CNF([Clause(c) for c in clauses], num_vars=num_vars)


@given(formulas())
def test_property_roundtrip(formula):
    assert parse_dimacs(to_dimacs(formula)) == formula
