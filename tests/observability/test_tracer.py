"""Tracer unit tests: spans, events, clocks, sinks, read-back."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    JsonlSink,
    ListSink,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Tracer,
    read_trace,
)


def _spans(tracer):
    return [r for r in tracer.records if r["type"] == "span"]


def _events(tracer):
    return [r for r in tracer.records if r["type"] == "event"]


class TestSpans:
    def test_meta_record_leads_the_stream(self):
        tracer = Tracer()
        meta = tracer.records[0]
        assert meta["type"] == "meta"
        assert meta["schema"] == TRACE_SCHEMA_VERSION
        assert meta["clocks"] == {"wall": "seconds", "qpu": "microseconds"}

    def test_nesting_via_stack(self):
        tracer = Tracer()
        with tracer.span("solve"):
            with tracer.span("iteration", index=1):
                with tracer.span("select"):
                    pass
        spans = {s["name"]: s for s in _spans(tracer)}
        assert spans["solve"]["parent"] is None
        assert spans["iteration"]["parent"] == spans["solve"]["id"]
        assert spans["select"]["parent"] == spans["iteration"]["id"]

    def test_children_emitted_before_parents(self):
        tracer = Tracer()
        with tracer.span("solve"):
            with tracer.span("iteration"):
                pass
        names = [s["name"] for s in _spans(tracer)]
        assert names == ["iteration", "solve"]

    def test_attrs_merge_and_end_attrs(self):
        tracer = Tracer()
        span = tracer.start_span("anneal", reads=3)
        span.set(embedded=7)
        span.end(outcome="ok")
        record = _spans(tracer)[0]
        assert record["attrs"] == {"reads": 3, "embedded": 7, "outcome": "ok"}

    def test_double_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("solve")
        span.end()
        span.end()
        assert len(_spans(tracer)) == 1

    def test_exception_records_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("solve"):
                raise ValueError("boom")
        assert _spans(tracer)[0]["attrs"]["error"] == "ValueError"

    def test_out_of_order_end_closes_inner_spans(self):
        tracer = Tracer()
        outer = tracer.start_span("solve")
        tracer.start_span("iteration")
        outer.end()  # iteration never explicitly ended
        names = [s["name"] for s in _spans(tracer)]
        assert names == ["iteration", "solve"]
        assert tracer.current_span_id is None

    def test_close_ends_dangling_spans(self):
        tracer = Tracer()
        tracer.start_span("solve")
        tracer.start_span("iteration")
        tracer.close()
        assert len(_spans(tracer)) == 2
        tracer.close()  # idempotent
        assert len(_spans(tracer)) == 2

    def test_wall_durations_are_monotone(self):
        tracer = Tracer()
        with tracer.span("solve"):
            with tracer.span("iteration"):
                pass
        spans = {s["name"]: s for s in _spans(tracer)}
        assert spans["solve"]["wall_dur_s"] >= spans["iteration"]["wall_dur_s"]
        assert spans["iteration"]["t_wall_s"] >= spans["solve"]["t_wall_s"]


class TestQpuClock:
    def test_qpu_clock_injection(self):
        clock = {"now": 0.0}
        tracer = Tracer(qpu_clock=lambda: clock["now"])
        with tracer.span("solve"):
            clock["now"] = 140.0
        record = _spans(tracer)[0]
        assert record["t_qpu_us"] == 0.0
        assert record["qpu_dur_us"] == 140.0

    def test_qpu_clock_settable_after_creation(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        tracer.set_qpu_clock(lambda: 42.0)
        with tracer.span("after"):
            pass
        spans = {s["name"]: s for s in _spans(tracer)}
        assert spans["before"]["qpu_dur_us"] == 0.0
        assert spans["after"]["t_qpu_us"] == 42.0
        assert spans["after"]["qpu_dur_us"] == 0.0

    def test_sibling_spans_split_the_qpu_time(self):
        clock = {"now": 0.0}
        tracer = Tracer(qpu_clock=lambda: clock["now"])
        with tracer.span("solve"):
            with tracer.span("embed"):
                pass  # no QPU time
            with tracer.span("anneal"):
                clock["now"] += 140.0
        spans = {s["name"]: s for s in _spans(tracer)}
        assert spans["embed"]["qpu_dur_us"] == 0.0
        assert spans["anneal"]["qpu_dur_us"] == 140.0
        assert spans["solve"]["qpu_dur_us"] == 140.0


class TestEvents:
    def test_event_attaches_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("solve") as solve:
            with tracer.span("iteration") as iteration:
                tracer.event("cdcl.propagate", trail=5)
            tracer.event("qa.degraded")
        events = {e["name"]: e for e in _events(tracer)}
        assert events["cdcl.propagate"]["span"] == iteration.span_id
        assert events["cdcl.propagate"]["attrs"] == {"trail": 5}
        assert events["qa.degraded"]["span"] == solve.span_id

    def test_root_event_has_no_span(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert _events(tracer)[0]["span"] is None


class TestSinksAndReadback:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        with tracer.span("solve", num_vars=3):
            tracer.event("cdcl.propagate")
        tracer.close()
        records = read_trace(path)
        assert records[0]["type"] == "meta"
        assert [r["type"] for r in records[1:]] == ["event", "span"]
        assert records[2]["attrs"] == {"num_vars": 3}

    def test_jsonl_accepts_open_handle(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            tracer = Tracer(sink=JsonlSink(handle))
            with tracer.span("solve"):
                pass
            tracer.close()
            assert not handle.closed  # caller-owned handle stays open
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "solve"

    def test_read_trace_rejects_missing_meta(self):
        with pytest.raises(ValueError, match="missing meta"):
            read_trace(['{"type":"span","name":"solve"}'])

    def test_read_trace_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="unsupported trace schema"):
            read_trace(['{"type":"meta","schema":"hyqsat-trace/999"}'])

    def test_list_sink_records_property(self):
        sink = ListSink()
        tracer = Tracer(sink=sink)
        with tracer.span("solve"):
            pass
        assert tracer.records is sink.records


class TestNullTracer:
    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.start_span("solve", x=1)
        assert span.set(y=2) is span
        span.end()
        with NULL_TRACER.span("iteration"):
            NULL_TRACER.event("cdcl.propagate")
        NULL_TRACER.set_qpu_clock(lambda: 1.0)
        NULL_TRACER.close()

    def test_null_span_is_shared(self):
        assert NULL_TRACER.start_span("a") is NULL_TRACER.start_span("b")
