"""Observability layer tests."""
