"""Tests for ``repro.analysis.trace_report``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.trace_report import (
    format_report,
    iteration_rows,
    load_trace,
    main,
    summarize,
)
from repro.benchgen.random_ksat import random_3sat
from repro.core.hyqsat import HyQSatSolver
from repro.observability import Observability


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    formula = random_3sat(20, 85, np.random.default_rng(3))
    obs = Observability.tracing(str(path))
    HyQSatSolver(formula, observability=obs).solve()
    obs.close()
    return path


@pytest.fixture(scope="module")
def records(trace_path):
    return load_trace(trace_path)


class TestSummarize:
    def test_solve_block(self, records):
        summary = summarize(records)
        solve = summary["solve"]
        assert solve["num_vars"] == 20
        assert solve["num_clauses"] == 85
        assert solve["wall_s"] > 0
        assert solve["qpu_us"] >= 0

    def test_span_aggregates(self, records):
        spans = summarize(records)["spans"]
        assert "iteration" in spans
        row = spans["iteration"]
        assert row["count"] >= 1
        assert row["mean_wall_s"] == pytest.approx(row["wall_s"] / row["count"])
        # Pipeline order: solve first, then iteration, then phases.
        names = list(spans)
        assert names.index("solve") < names.index("iteration")

    def test_event_counts(self, records):
        events = summarize(records)["events"]
        assert events.get("cdcl.propagate", 0) >= 1

    def test_empty_trace(self):
        summary = summarize([])
        assert summary["solve"] is None
        assert summary["spans"] == {}
        assert summary["iterations"] == []


class TestIterationRows:
    def test_rows_track_qa_iterations(self, records):
        rows = iteration_rows(records)
        assert rows
        indexes = [row["index"] for row in rows]
        assert indexes == sorted(indexes)
        qa_rows = [row for row in rows if "anneal_s" in row]
        assert qa_rows, "no iteration made a QA call"
        for row in rows:
            assert row["wall_s"] >= 0
        for row in qa_rows:
            assert "outcome" in row
            if row["outcome"] == "ok":
                assert row["qpu_us"] > 0


class TestFormatReport:
    def test_renders_tables(self, records):
        text = format_report(summarize(records))
        assert "solve:" in text
        assert "Span aggregates" in text
        assert "Events" in text
        assert "QA iterations" in text

    def test_iteration_cap(self, records):
        summary = summarize(records)
        qa_rows = [
            row for row in summary["iterations"] if row.get("outcome") is not None
        ]
        text = format_report(summary, max_iterations=1)
        assert f"QA iterations (1 of {len(qa_rows)})" in text


class TestMain:
    def test_happy_path(self, trace_path, capsys):
        assert main([str(trace_path)]) == 0
        assert "solve:" in capsys.readouterr().out

    def test_usage_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unreadable_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type":"span"}\n')
        assert main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err.lower()
