"""Metrics registry unit tests: types, labels, exporters."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    MetricsRegistry,
    declare_solver_metrics,
    profile_rows,
)


class TestCounter:
    def test_inc(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_labelled_children(self):
        counter = MetricsRegistry().counter("c", labelnames=("reason",))
        counter.labels(reason="deadline").inc()
        counter.labels(reason="deadline").inc()
        counter.labels(reason="breaker_open").inc()
        assert counter.labels(reason="deadline").value == 2.0
        assert counter.labels(reason="breaker_open").value == 1.0

    def test_labelled_parent_rejects_direct_inc(self):
        counter = MetricsRegistry().counter("c", labelnames=("reason",))
        with pytest.raises(ValueError, match="use .labels"):
            counter.inc()

    def test_unlabelled_rejects_labels(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="no labels"):
            counter.labels(reason="x")

    def test_wrong_label_names_raise(self):
        counter = MetricsRegistry().counter("c", labelnames=("reason",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.labels(cause="x")


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value == 3.0


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 3.0, 10.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 3, 4]  # cumulative, +Inf last
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(15.0)
        assert histogram.mean == pytest.approx(3.75)

    def test_empty_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError, match="sorted"):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_labelled_children_share_buckets(self):
        histogram = MetricsRegistry().histogram(
            "h", labelnames=("phase",), buckets=(1.0, 2.0)
        )
        histogram.labels(phase="embed").observe(0.5)
        assert histogram.labels(phase="embed").buckets == (1.0, 2.0)
        assert histogram.labels(phase="embed").count == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")

    def test_relabel_mismatch_raises_but_bare_rerequest_ok(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("reason",))
        # Instrumentation sites re-request by bare name: fine.
        assert registry.counter("c").labelnames == ("reason",)
        with pytest.raises(ValueError, match="labels mismatch"):
            registry.counter("c", labelnames=("cause",))

    def test_names_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "z" not in registry
        assert registry.get("z") is None


class TestExporters:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("hyqsat_x_total", "things done").inc(3)
        registry.gauge("hyqsat_g").set(7)
        registry.counter(
            "hyqsat_lab_total", labelnames=("kind",)
        ).labels(kind="a").inc()
        histogram = registry.histogram("hyqsat_h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        return registry

    def test_prometheus_text(self):
        text = self._registry().to_prometheus()
        assert "# HELP hyqsat_x_total things done" in text
        assert "# TYPE hyqsat_x_total counter" in text
        assert "hyqsat_x_total 3.0" in text
        assert "hyqsat_g 7.0" in text
        assert 'hyqsat_lab_total{kind="a"} 1.0' in text
        assert 'hyqsat_h_bucket{le="1.0"} 1' in text
        assert 'hyqsat_h_bucket{le="+Inf"} 2' in text
        assert "hyqsat_h_sum 2.0" in text
        assert "hyqsat_h_count 2" in text

    def test_json_export_round_trips(self):
        payload = json.loads(self._registry().dump_json())
        assert payload["hyqsat_x_total"]["value"] == 3.0
        assert payload["hyqsat_lab_total"]["series"] == [
            {"labels": {"kind": "a"}, "value": 1.0}
        ]
        assert payload["hyqsat_h"]["counts"] == [1, 2, 2]


class TestSolverCatalog:
    def test_declare_is_idempotent(self):
        registry = MetricsRegistry()
        declare_solver_metrics(registry)
        first = registry.names()
        declare_solver_metrics(registry)
        assert registry.names() == first
        assert "hyqsat_qa_calls_total" in registry

    def test_profile_rows(self):
        registry = declare_solver_metrics(MetricsRegistry())
        phase = registry.histogram("hyqsat_phase_seconds")
        phase.labels(phase="embed").observe(0.2)
        phase.labels(phase="embed").observe(0.4)
        phase.labels(phase="anneal").observe(0.1)
        rows = profile_rows(registry)
        assert [row["phase"] for row in rows] == ["embed", "anneal"]
        assert rows[0]["count"] == 2
        assert rows[0]["total_s"] == pytest.approx(0.6)
        assert rows[0]["mean_ms"] == pytest.approx(300.0)

    def test_profile_rows_empty_registry(self):
        assert profile_rows(MetricsRegistry()) == []
