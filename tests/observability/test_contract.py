"""Trace/metrics contract tests.

These pin the *documented* telemetry schema to what the solver really
emits: a seeded hybrid solve may only produce span edges listed in
``SPAN_CHILDREN`` and event attachments listed in ``EVENT_PARENTS``,
and ``docs/TELEMETRY.md`` must name exactly the metric catalog — so
neither the code nor the doc can drift without a test failing.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.core.hyqsat import HyQSatSolver
from repro.observability import (
    EVENT_PARENTS,
    METRIC_NAMES,
    METRICS,
    Observability,
    SPAN_CHILDREN,
    declare_solver_metrics,
    metric_names_in_doc,
)
from repro.observability.metrics import MetricsRegistry

REPO_ROOT = Path(__file__).resolve().parents[2]
TELEMETRY_DOC = REPO_ROOT / "docs" / "TELEMETRY.md"


@pytest.fixture(scope="module")
def traced_solve():
    """One seeded hybrid solve captured with tracing + metrics."""
    formula = random_3sat(30, 120, np.random.default_rng(7))
    obs = Observability.tracing(metrics=True)
    result = HyQSatSolver(formula, observability=obs).solve()
    obs.close()
    return obs, result


def _spans(records):
    return [r for r in records if r["type"] == "span"]


def _events(records):
    return [r for r in records if r["type"] == "event"]


class TestSpanTree:
    def test_every_span_edge_is_documented(self, traced_solve):
        obs, _ = traced_solve
        records = obs.tracer.records
        spans = {r["id"]: r for r in _spans(records)}
        assert spans, "traced solve emitted no spans"
        for record in spans.values():
            parent = record["parent"]
            parent_name = spans[parent]["name"] if parent is not None else None
            assert parent_name in SPAN_CHILDREN, record
            assert record["name"] in SPAN_CHILDREN[parent_name], (
                f"undocumented edge {parent_name} -> {record['name']}"
            )

    def test_single_solve_root_with_result_attrs(self, traced_solve):
        obs, result = traced_solve
        roots = [r for r in _spans(obs.tracer.records) if r["parent"] is None]
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "solve"
        assert root["attrs"]["num_vars"] == 30
        assert root["attrs"]["num_clauses"] == 120
        assert root["attrs"]["status"] == result.status.value
        assert root["attrs"]["iterations"] >= 1
        assert root["attrs"]["qa_calls"] >= 1

    def test_iteration_spans_are_indexed_and_ordered(self, traced_solve):
        obs, _ = traced_solve
        indexes = [
            r["attrs"]["index"]
            for r in _spans(obs.tracer.records)
            if r["name"] == "iteration"
        ]
        assert indexes == sorted(indexes)
        assert len(set(indexes)) == len(indexes)

    def test_qpu_clock_only_advances_across_anneal(self, traced_solve):
        obs, _ = traced_solve
        spans = _spans(obs.tracer.records)
        solve = next(r for r in spans if r["name"] == "solve")
        anneal_us = sum(
            r["qpu_dur_us"] for r in spans if r["name"] == "anneal"
        )
        assert solve["qpu_dur_us"] == pytest.approx(anneal_us)
        assert anneal_us > 0
        for name in ("select", "classify", "feedback"):
            for record in (r for r in spans if r["name"] == name):
                assert record["qpu_dur_us"] == 0.0


class TestEvents:
    def test_every_event_parent_is_documented(self, traced_solve):
        obs, _ = traced_solve
        records = obs.tracer.records
        spans = {r["id"]: r for r in _spans(records)}
        for event in _events(records):
            assert event["name"] in EVENT_PARENTS, event
            parent = event["span"]
            assert parent is not None, event
            assert spans[parent]["name"] in EVENT_PARENTS[event["name"]], event

    def test_cdcl_events_fire(self, traced_solve):
        obs, _ = traced_solve
        names = {e["name"] for e in _events(obs.tracer.records)}
        assert "cdcl.propagate" in names


class TestMetricsContract:
    def test_catalog_fully_registered_after_solve(self, traced_solve):
        obs, _ = traced_solve
        assert set(obs.metrics.names()) >= METRIC_NAMES

    def test_counts_agree_with_trace(self, traced_solve):
        obs, _ = traced_solve
        spans = _spans(obs.tracer.records)
        ok_anneals = sum(
            1
            for r in spans
            if r["name"] == "anneal" and r["attrs"].get("outcome") == "ok"
        )
        assert obs.metrics.counter("hyqsat_qa_calls_total").value == ok_anneals
        qpu_total = obs.metrics.counter("hyqsat_qpu_time_us_total").value
        solve = next(r for r in spans if r["name"] == "solve")
        assert qpu_total == pytest.approx(solve["qpu_dur_us"])

    def test_catalog_labels_match_declared(self):
        registry = declare_solver_metrics(MetricsRegistry())
        for spec in METRICS:
            assert registry.get(spec.name).labelnames == spec.labels


class TestDocDrift:
    def test_telemetry_doc_names_exactly_the_catalog(self):
        documented = metric_names_in_doc(TELEMETRY_DOC.read_text())
        assert documented == sorted(METRIC_NAMES), (
            "docs/TELEMETRY.md metric names drifted from "
            "repro.observability.schema.METRICS"
        )

    def test_telemetry_doc_names_every_span_and_event(self):
        text = TELEMETRY_DOC.read_text()
        for name in SPAN_CHILDREN:
            if name is not None:
                assert f"`{name}`" in text, f"span `{name}` missing from doc"
        for name in EVENT_PARENTS:
            assert f"`{name}`" in text, f"event `{name}` missing from doc"


class TestObservationIsPassive:
    def test_traced_solve_matches_untraced_solve(self, traced_solve):
        _, traced_result = traced_solve
        formula = random_3sat(30, 120, np.random.default_rng(7))
        plain_result = HyQSatSolver(formula).solve()
        assert plain_result.status == traced_result.status
        assert plain_result.stats.conflicts == traced_result.stats.conflicts
        assert plain_result.hybrid.qa_calls == traced_result.hybrid.qa_calls
