"""Tests for solver statistics containers."""

import pytest

from repro.cdcl.stats import ClauseCounters, SolverStats


class TestSolverStats:
    def test_defaults_zero(self):
        stats = SolverStats()
        assert stats.iterations == 0
        assert stats.conflicts == 0

    def test_as_dict_keys(self):
        d = SolverStats(iterations=3, conflicts=1).as_dict()
        assert d["iterations"] == 3
        assert d["conflicts"] == 1
        assert set(d) == {
            "iterations", "decisions", "propagations", "conflicts",
            "restarts", "learned_clauses", "deleted_clauses",
            "max_decision_level",
        }


class TestClauseCounters:
    def test_for_clauses_initialisation(self):
        c = ClauseCounters.for_clauses(4)
        assert c.propagation_visits == [0, 0, 0, 0]
        assert c.conflict_visits == [0, 0, 0, 0]
        assert c.activity == [1.0, 1.0, 1.0, 1.0]  # Section IV-A initial score

    def test_total_visits(self):
        c = ClauseCounters.for_clauses(2)
        c.propagation_visits[0] = 3
        c.conflict_visits[0] = 2
        assert c.total_visits(0) == 5
        assert c.total_visits(1) == 0

    def test_top_by_activity_orders_and_tie_breaks(self):
        c = ClauseCounters.for_clauses(4)
        c.activity = [1.0, 5.0, 5.0, 2.0]
        assert c.top_by_activity(3) == [1, 2, 3]

    def test_top_by_activity_k_larger_than_clauses(self):
        c = ClauseCounters.for_clauses(2)
        assert c.top_by_activity(10) == [0, 1]

    def test_empty_counters(self):
        c = ClauseCounters.for_clauses(0)
        assert c.top_by_activity(3) == []
