"""Tests for DRAT proof logging and checking."""

import numpy as np
import pytest

from repro.cdcl.proof import DratProof, check_proof, parse_proof
from repro.cdcl.solver import CdclSolver, SolverConfig
from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF, Clause

from tests.conftest import make_random_3sat


def _solve_with_proof(formula, **config_kwargs):
    proof = DratProof()
    solver = CdclSolver(formula, SolverConfig(**config_kwargs), proof=proof)
    result = solver.solve()
    return result, proof


class TestProofLog:
    def test_unsat_ends_with_empty_clause(self, tiny_unsat_formula):
        result, proof = _solve_with_proof(tiny_unsat_formula)
        assert result.is_unsat
        assert proof.ends_with_empty_clause

    def test_sat_has_no_empty_clause(self, tiny_sat_formula):
        result, proof = _solve_with_proof(tiny_sat_formula)
        assert result.is_sat
        assert not proof.ends_with_empty_clause

    def test_trivially_unsat_logs_refutation(self):
        result, proof = _solve_with_proof(CNF([Clause([])], num_vars=1))
        assert result.is_unsat
        assert proof.ends_with_empty_clause

    def test_contradictory_units_log_refutation(self):
        result, proof = _solve_with_proof(CNF([[1], [-1]]))
        assert result.is_unsat
        assert proof.ends_with_empty_clause

    def test_text_roundtrip(self, tiny_unsat_formula):
        _, proof = _solve_with_proof(tiny_unsat_formula)
        again = parse_proof(proof.to_text())
        assert again.steps == proof.steps

    def test_write_to_file(self, tmp_path, tiny_unsat_formula):
        _, proof = _solve_with_proof(tiny_unsat_formula)
        path = tmp_path / "refutation.drat"
        proof.write(path)
        assert parse_proof(path.read_text()).steps == proof.steps

    def test_parse_rejects_unterminated(self):
        with pytest.raises(ValueError):
            parse_proof("1 2 3\n")


class TestChecker:
    def test_accepts_solver_refutations(self, tiny_unsat_formula):
        _, proof = _solve_with_proof(tiny_unsat_formula)
        result = check_proof(tiny_unsat_formula, proof)
        assert result.valid, result.reason

    def test_rejects_proof_without_refutation(self, tiny_unsat_formula):
        proof = DratProof()
        proof.add_clause([1])  # (x1) is RUP for this formula...
        result = check_proof(tiny_unsat_formula, proof)
        assert not result.valid  # ...but the empty clause never lands

    def test_rejects_non_rup_step(self):
        formula = CNF([[1, 2]], num_vars=2)
        proof = DratProof()
        proof.add_clause([-1])  # not implied by (x1 v x2)
        proof.add_empty_clause()
        result = check_proof(formula, proof)
        assert not result.valid
        assert result.failed_step == 0

    def test_deletion_lines_processed(self, tiny_unsat_formula):
        _, proof = _solve_with_proof(
            tiny_unsat_formula, learntsize_factor=0.01
        )
        assert check_proof(tiny_unsat_formula, proof).valid

    @pytest.mark.parametrize("seed", range(10))
    def test_random_unsat_instances_verify(self, seed):
        rng = np.random.default_rng(seed)
        # Oversaturated instances are almost surely UNSAT.
        n = int(rng.integers(4, 9))
        cap = (n * (n - 1) * (n - 2) // 6) * 8 // 2
        m = min(6 * n, cap)
        formula = make_random_3sat(n, m, seed=seed + 777)
        if brute_force_solve(formula) is not None:
            return
        result, proof = _solve_with_proof(formula, seed=seed)
        assert result.is_unsat
        verdict = check_proof(formula, proof)
        assert verdict.valid, verdict.reason

    def test_structured_unsat_benchmarks_verify(self):
        from repro.benchgen.crypto import adder_equivalence_instance

        formula = adder_equivalence_instance(3, np.random.default_rng(0))
        result, proof = _solve_with_proof(formula)
        assert result.is_unsat
        verdict = check_proof(formula, proof)
        assert verdict.valid, verdict.reason

    def test_assumption_refutations_not_logged(self):
        from repro.sat.cnf import Lit

        formula = CNF([[1]], num_vars=1)
        proof = DratProof()
        solver = CdclSolver(formula, proof=proof)
        result = solver.solve(assumptions=[Lit(-1)])
        assert result.is_unsat
        assert not proof.ends_with_empty_clause
