"""Tests for the Luby restart sequence."""

import itertools

import pytest

from repro.cdcl.luby import luby, luby_sequence

KNOWN_PREFIX = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4]


def test_known_prefix():
    assert [luby(i) for i in range(1, len(KNOWN_PREFIX) + 1)] == KNOWN_PREFIX


def test_index_is_one_based():
    with pytest.raises(ValueError):
        luby(0)
    with pytest.raises(ValueError):
        luby(-3)


def test_values_are_powers_of_two():
    for i in range(1, 200):
        value = luby(i)
        assert value & (value - 1) == 0


def test_peak_positions():
    # luby(2^k - 1) == 2^(k-1)
    for k in range(1, 10):
        assert luby((1 << k) - 1) == 1 << (k - 1)


def test_self_similarity():
    # After each peak the sequence restarts.
    for k in range(2, 8):
        peak = (1 << k) - 1
        for offset in range(1, min(peak, 20)):
            assert luby(peak + offset) == luby(offset)


def test_sequence_generator_matches_function():
    gen = luby_sequence()
    assert list(itertools.islice(gen, 10)) == [luby(i) for i in range(1, 11)]


def test_sequence_base_scaling():
    gen = luby_sequence(base=100)
    assert list(itertools.islice(gen, 4)) == [100, 100, 200, 100]


def test_sequence_base_validation():
    with pytest.raises(ValueError):
        next(luby_sequence(base=0))
