"""Tests for the incremental API: add_clause / push / pop / re-solve.

Both engines are exercised through the same cases; the key property is
equivalence with a fresh solver on the equivalent flat formula (status
always; model validity when SAT).
"""

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.cdcl.fast import FastCdclSolver
from repro.cdcl.native import native_available
from repro.cdcl.solver import CdclSolver, SolverConfig, SolverStatus
from repro.sat.cnf import CNF, Clause, Lit

ENGINE_CLASSES = [
    pytest.param(CdclSolver, id="reference"),
    pytest.param(
        FastCdclSolver,
        id="fast",
        marks=pytest.mark.skipif(
            not native_available(), reason="no C compiler"
        ),
    ),
]


def fresh_status(formula, seed=0):
    return CdclSolver(formula, config=SolverConfig(seed=seed)).solve().status


@pytest.mark.parametrize("cls", ENGINE_CLASSES)
class TestReSolve:
    def test_resolve_same_instance(self, cls):
        formula = random_3sat(20, 85, np.random.default_rng(0))
        solver = cls(formula, config=SolverConfig())
        first = solver.solve()
        second = solver.solve()
        assert first.status == second.status
        if first.is_sat:
            assert second.model.satisfies(formula)

    def test_resolve_after_unsat_stays_unsat(self, cls):
        """Regression: a root refutation must survive re-solve (the
        falsified clause used to hide behind the propagation head)."""
        formula = random_3sat(20, 140, np.random.default_rng(3))
        solver = cls(formula, config=SolverConfig())
        if solver.solve().status is not SolverStatus.UNSAT:
            pytest.skip("instance unexpectedly satisfiable")
        assert solver.solve().status is SolverStatus.UNSAT
        assert solver.solve().status is SolverStatus.UNSAT

    def test_stats_accumulate_across_calls(self, cls):
        formula = random_3sat(20, 85, np.random.default_rng(1))
        solver = cls(formula, config=SolverConfig())
        first = solver.solve().stats.iterations
        second = solver.solve().stats.iterations
        assert second >= first

    def test_assumptions_then_free_solve(self, cls):
        formula = CNF([[1, 2], [-1, 2], [-2, 3]])
        solver = cls(formula, config=SolverConfig())
        under = solver.solve(assumptions=[Lit(-2)])
        assert under.status is SolverStatus.UNSAT
        free = solver.solve()
        assert free.status is SolverStatus.SAT
        assert free.model.satisfies(formula)


@pytest.mark.parametrize("cls", ENGINE_CLASSES)
class TestAddClause:
    def test_added_clause_constrains(self, cls):
        solver = cls(CNF([[1, 2]], num_vars=2), config=SolverConfig())
        assert solver.solve().is_sat
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().status is SolverStatus.UNSAT

    def test_tautology_ignored(self, cls):
        solver = cls(CNF([[1]], num_vars=2), config=SolverConfig())
        solver.add_clause([2, -2])
        result = solver.solve()
        assert result.is_sat

    def test_empty_clause_unsat(self, cls):
        solver = cls(CNF([[1]], num_vars=1), config=SolverConfig())
        solver.add_clause([])
        assert solver.solve().status is SolverStatus.UNSAT

    def test_accepts_clause_objects_and_ints(self, cls):
        solver = cls(CNF([[1, 2]], num_vars=3), config=SolverConfig())
        solver.add_clause(Clause([Lit(3)]))
        solver.add_clause([-1, 3])
        result = solver.solve()
        assert result.is_sat
        assert result.model.value_of(Lit(3)) is True

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_fresh_solver(self, cls, seed):
        base = random_3sat(18, 70, np.random.default_rng(300 + seed))
        delta = random_3sat(18, 18, np.random.default_rng(400 + seed))
        solver = cls(base, config=SolverConfig(seed=seed))
        solver.solve()
        for clause in delta:
            solver.add_clause(clause)
        incremental = solver.solve()
        combined = CNF(list(base) + list(delta), num_vars=18)
        assert incremental.status == fresh_status(combined, seed)
        if incremental.is_sat:
            assert incremental.model.satisfies(combined)


@pytest.mark.parametrize("cls", ENGINE_CLASSES)
class TestPushPop:
    def test_pop_without_push_raises(self, cls):
        solver = cls(CNF([[1]], num_vars=1), config=SolverConfig())
        with pytest.raises(IndexError):
            solver.pop()

    def test_push_depth(self, cls):
        solver = cls(CNF([[1]], num_vars=1), config=SolverConfig())
        assert solver.push_depth == 0
        assert solver.push() == 1
        assert solver.push() == 2
        solver.pop()
        assert solver.push_depth == 1

    def test_pop_restores_sat(self, cls):
        formula = CNF([[1, 2]], num_vars=2)
        solver = cls(formula, config=SolverConfig())
        assert solver.solve().is_sat
        solver.push()
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().status is SolverStatus.UNSAT
        solver.pop()
        result = solver.solve()
        assert result.is_sat
        assert result.model.satisfies(formula)

    def test_pop_restores_group_scoped_empty_clause(self, cls):
        solver = cls(CNF([[1]], num_vars=1), config=SolverConfig())
        solver.push()
        solver.add_clause([])
        assert solver.solve().status is SolverStatus.UNSAT
        solver.pop()
        assert solver.solve().is_sat

    @pytest.mark.parametrize("seed", range(10))
    def test_nested_groups_match_fresh(self, cls, seed):
        """push/add/push/add/pop/pop: every level must agree with a
        fresh solver on the same flat formula."""
        base = random_3sat(16, 60, np.random.default_rng(500 + seed))
        delta1 = random_3sat(16, 14, np.random.default_rng(600 + seed))
        delta2 = random_3sat(16, 16, np.random.default_rng(700 + seed))
        solver = cls(base, config=SolverConfig(seed=seed))

        def check(reference_clauses):
            result = solver.solve()
            combined = CNF(reference_clauses, num_vars=16)
            assert result.status == fresh_status(combined, seed)
            if result.is_sat:
                assert result.model.satisfies(combined)

        check(list(base))
        solver.push()
        for clause in delta1:
            solver.add_clause(clause)
        check(list(base) + list(delta1))
        solver.push()
        for clause in delta2:
            solver.add_clause(clause)
        check(list(base) + list(delta1) + list(delta2))
        solver.pop()
        check(list(base) + list(delta1))
        solver.pop()
        check(list(base))


@pytest.mark.skipif(not native_available(), reason="no C compiler")
class TestEnginesAgreeIncrementally:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_status_trace(self, seed):
        """Both engines walk the same push/pop script to the same
        sequence of statuses."""
        base = random_3sat(18, 72, np.random.default_rng(800 + seed))
        delta = random_3sat(18, 20, np.random.default_rng(900 + seed))
        traces = []
        for cls in (CdclSolver, FastCdclSolver):
            solver = cls(base, config=SolverConfig(seed=seed))
            trace = [solver.solve().status]
            solver.push()
            for clause in delta:
                solver.add_clause(clause)
            trace.append(solver.solve().status)
            solver.pop()
            trace.append(solver.solve().status)
            traces.append(trace)
        assert traces[0] == traces[1]
