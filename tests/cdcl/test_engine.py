"""Tests for the CDCL engine registry (reference / fast selection)."""

import pytest

from repro.cdcl.engine import (
    ENGINES,
    available_engines,
    create_solver,
    resolve_engine,
)
from repro.cdcl.fast import (
    FastCdclSolver,
    FastEngineError,
    fast_engine_supports,
)
from repro.cdcl.heuristics import VsidsHeuristic
from repro.cdcl.native import native_available
from repro.cdcl.presets import kissat_solver, minisat_solver
from repro.cdcl.solver import CdclSolver, SolverConfig
from repro.sat.cnf import CNF

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernel"
)

FORMULA = CNF([[1, 2], [-1, 2], [1, -2]])


class _CustomHeuristic(VsidsHeuristic):
    """A user heuristic the kernel does not implement (subclass of a
    supported one — the probe must use exact types, not isinstance)."""


class TestRegistry:
    def test_engines(self):
        assert set(ENGINES) == {"reference", "fast"}
        assert ENGINES["reference"] is CdclSolver
        assert ENGINES["fast"] is FastCdclSolver

    def test_available_always_has_reference(self):
        assert "reference" in available_engines()

    @needs_native
    def test_available_has_fast_with_compiler(self):
        assert "fast" in available_engines()

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown CDCL engine"):
            resolve_engine("turbo")

    def test_reference_resolves_to_itself(self):
        assert resolve_engine("reference") == "reference"

    @needs_native
    def test_fast_resolves_with_builtin_heuristics(self):
        assert resolve_engine("fast", SolverConfig()) == "fast"

    def test_custom_heuristic_falls_back_with_warning(self):
        config = SolverConfig(heuristic_factory=_CustomHeuristic)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_engine("fast", config) == "reference"

    def test_fast_engine_supports_rejects_custom_heuristic(self):
        ok, reason = fast_engine_supports(
            SolverConfig(heuristic_factory=_CustomHeuristic)
        )
        assert not ok
        assert "_CustomHeuristic" in reason


class TestCreateSolver:
    def test_reference(self):
        solver = create_solver(FORMULA, engine="reference")
        assert isinstance(solver, CdclSolver)
        assert solver.solve().is_sat

    @needs_native
    def test_fast(self):
        solver = create_solver(FORMULA, engine="fast")
        assert isinstance(solver, FastCdclSolver)
        assert solver.solve().is_sat

    def test_fallback_returns_working_solver(self):
        config = SolverConfig(heuristic_factory=_CustomHeuristic)
        with pytest.warns(RuntimeWarning):
            solver = create_solver(FORMULA, engine="fast", config=config)
        assert isinstance(solver, CdclSolver)
        assert solver.solve().is_sat

    @needs_native
    def test_direct_fast_with_custom_heuristic_raises(self):
        config = SolverConfig(heuristic_factory=_CustomHeuristic)
        with pytest.raises(FastEngineError):
            FastCdclSolver(FORMULA, config=config)


@needs_native
class TestPresetEngines:
    def test_minisat_fast(self):
        solver = minisat_solver(FORMULA, engine="fast")
        assert isinstance(solver, FastCdclSolver)
        assert solver.solve().is_sat

    def test_kissat_fast(self):
        solver = kissat_solver(FORMULA, engine="fast")
        assert isinstance(solver, FastCdclSolver)
        assert solver.solve().is_sat

    def test_default_is_reference(self):
        assert isinstance(minisat_solver(FORMULA), CdclSolver)
        assert isinstance(kissat_solver(FORMULA), CdclSolver)
