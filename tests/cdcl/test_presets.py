"""Tests for the MiniSAT / Kissat presets."""

import pytest

from repro.cdcl.heuristics import ChbHeuristic, VsidsHeuristic
from repro.cdcl.presets import kissat_solver, minisat_solver
from repro.sat.brute import brute_force_solve

from tests.conftest import make_random_3sat


@pytest.mark.parametrize("factory", [minisat_solver, kissat_solver])
def test_presets_agree_with_brute_force(factory):
    for seed in range(8):
        f = make_random_3sat(10, 40, seed=seed)
        expected = brute_force_solve(f) is not None
        result = factory(f, seed=seed).solve()
        assert result.is_sat == expected
        if result.is_sat:
            assert result.model.satisfies(f)


def test_minisat_uses_vsids():
    f = make_random_3sat(5, 10, seed=0)
    solver = minisat_solver(f)
    assert isinstance(solver.config.heuristic_factory(), VsidsHeuristic)


def test_kissat_uses_chb():
    f = make_random_3sat(5, 10, seed=0)
    solver = kissat_solver(f)
    assert isinstance(solver.config.heuristic_factory(), ChbHeuristic)


def test_presets_accept_budgets():
    f = make_random_3sat(100, 430, seed=1)
    result = minisat_solver(f, max_iterations=3).solve()
    assert result.stats.iterations <= 4
    result = kissat_solver(f, max_conflicts=2).solve()
    assert result.stats.conflicts <= 3


def test_presets_differ_in_behaviour():
    # Not a strict requirement per-instance, but the configurations
    # must genuinely differ.
    f = make_random_3sat(5, 10, seed=0)
    assert minisat_solver(f).config.luby_base != kissat_solver(f).config.luby_base
