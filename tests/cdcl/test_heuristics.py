"""Tests for decision heuristics and the indexed heap."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cdcl.heuristics import ChbHeuristic, VsidsHeuristic, _IndexedMaxHeap


class TestIndexedMaxHeap:
    def test_push_pop_orders_by_score(self):
        scores = [3.0, 1.0, 2.0]
        heap = _IndexedMaxHeap(scores)
        for var in range(3):
            heap.push(var)
        assert [heap.pop(), heap.pop(), heap.pop()] == [0, 2, 1]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            _IndexedMaxHeap([]).pop()

    def test_duplicate_push_ignored(self):
        heap = _IndexedMaxHeap([1.0, 2.0])
        heap.push(0)
        heap.push(0)
        assert len(heap) == 1

    def test_contains(self):
        heap = _IndexedMaxHeap([1.0, 2.0])
        heap.push(1)
        assert 1 in heap
        assert 0 not in heap

    def test_update_after_score_change(self):
        scores = [1.0, 2.0, 3.0]
        heap = _IndexedMaxHeap(scores)
        for var in range(3):
            heap.push(var)
        scores[0] = 10.0
        heap.update(0)
        assert heap.pop() == 0

    def test_update_absent_var_is_noop(self):
        heap = _IndexedMaxHeap([1.0])
        heap.update(0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40))
    def test_property_pop_order_is_sorted(self, values):
        heap = _IndexedMaxHeap(list(values))
        for var in range(len(values)):
            heap.push(var)
        popped = [heap.pop() for _ in range(len(values))]
        assert [values[v] for v in popped] == sorted(values, reverse=True)


class TestVsids:
    def test_pick_prefers_bumped(self):
        h = VsidsHeuristic()
        h.init(4)
        h.on_conflict_var(2)
        assert h.pick([False] * 4) == 2

    def test_pick_skips_assigned(self):
        h = VsidsHeuristic()
        h.init(3)
        h.on_conflict_var(1)
        assigned = [False, True, False]
        assert h.pick(assigned) != 1

    def test_pick_returns_none_when_all_assigned(self):
        h = VsidsHeuristic()
        h.init(2)
        h.pick([False, False])
        h.pick([True, True])
        assert h.pick([True, True]) is None

    def test_unassign_reinserts(self):
        h = VsidsHeuristic()
        h.init(2)
        h.on_conflict_var(1)  # strictly highest score
        first = h.pick([False, False])
        assert first == 1
        h.on_unassign(first)
        assert h.pick([False, False]) == first

    def test_decay_amplifies_recent_bumps(self):
        h = VsidsHeuristic(decay=0.5)
        h.init(2)
        h.on_conflict_var(0)
        h.after_conflict()
        h.on_conflict_var(1)  # later bump counts double
        assert h.score_of(1) > h.score_of(0)

    def test_rescale_keeps_relative_order(self):
        h = VsidsHeuristic(decay=0.5)
        h.init(2)
        for _ in range(400):  # drive the increment over the rescale limit
            h.on_conflict_var(1)
            h.after_conflict()
        h.on_conflict_var(0)
        assert h.score_of(1) > 0
        assert h.pick([False, False]) == 1

    def test_external_bump(self):
        h = VsidsHeuristic()
        h.init(3)
        h.bump(2, 5.0)
        assert h.pick([False] * 3) == 2

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            VsidsHeuristic(decay=0.0)
        with pytest.raises(ValueError):
            VsidsHeuristic(decay=1.5)


class TestChb:
    def test_conflict_vars_rewarded(self):
        h = ChbHeuristic()
        h.init(4)
        h.on_conflict_var(3)
        h.after_conflict()
        assert h.pick([False] * 4) == 3

    def test_reward_decays_with_age(self):
        h = ChbHeuristic()
        h.init(2)
        h.on_conflict_var(0)
        for _ in range(50):
            h.after_conflict()
        h.on_conflict_var(1)
        assert h.score_of(1) > 0

    def test_unassign_reinserts(self):
        h = ChbHeuristic()
        h.init(2)
        h.on_conflict_var(0)
        h.after_conflict()
        var = h.pick([False, False])
        assert var == 0
        h.on_unassign(var)
        assert var == h.pick([False, False])

    def test_step_decays_towards_minimum(self):
        h = ChbHeuristic(step=0.4, step_min=0.06, step_decay=0.1)
        h.init(1)
        for _ in range(10):
            h.after_conflict()
        assert h._step == pytest.approx(0.06)

    def test_external_bump(self):
        h = ChbHeuristic()
        h.init(3)
        h.bump(1, 2.0)
        assert h.pick([False] * 3) == 1
