"""Property sweep: the fast engine is bit-identical to the reference.

ISSUE 6's acceptance gate: same status, same model, same stats
(conflicts, propagations, decisions, learned clauses, restarts), and
same per-clause counters for every (formula, config, seed) — across
>= 200 random k-SAT instances mixing SAT and UNSAT, both heuristics,
and the preset configurations.
"""

import numpy as np
import pytest

from repro.benchgen.random_ksat import random_3sat
from repro.cdcl.fast import FastCdclSolver
from repro.cdcl.heuristics import ChbHeuristic, VsidsHeuristic
from repro.cdcl.native import native_available
from repro.cdcl.solver import CdclSolver, SolverConfig
from repro.sat.cnf import CNF, Clause, Lit

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernel"
)

#: (num_vars, num_clauses): ratios ~3.4 (mostly SAT), ~4.3 (mixed),
#: ~6 (mostly UNSAT).
SIZES = [(12, 41), (16, 68), (20, 85), (20, 120), (24, 103), (24, 144)]


def assert_identical(formula, config):
    ref = CdclSolver(formula, config=config)
    fast = FastCdclSolver(formula, config=config)
    r1 = ref.solve()
    r2 = fast.solve()
    assert r1.status == r2.status
    assert r1.stats.as_dict() == r2.stats.as_dict()
    if r1.model is None:
        assert r2.model is None
    else:
        assert r1.model.frozen() == r2.model.frozen()
        assert r2.model.satisfies(formula)
    assert list(ref.counters.propagation_visits) == [
        int(x) for x in fast.counters.propagation_visits
    ]
    assert list(ref.counters.conflict_visits) == [
        int(x) for x in fast.counters.conflict_visits
    ]
    assert list(ref.counters.activity) == [
        float(x) for x in fast.counters.activity
    ]
    return r1.status


def random_ksat(num_vars, num_clauses, rng):
    """Random CNF with clause widths 1-4 (the 3-SAT generator only
    makes width-3 clauses; the engines must agree on any k)."""
    clauses = []
    for _ in range(num_clauses):
        width = int(rng.integers(1, 5))
        variables = rng.choice(num_vars, size=min(width, num_vars), replace=False)
        signs = rng.integers(0, 2, size=len(variables))
        clauses.append(
            Clause(
                Lit(int(v) + 1 if s else -(int(v) + 1))
                for v, s in zip(variables, signs)
            )
        )
    return CNF(clauses, num_vars=num_vars)


class TestPropertySweep:
    @pytest.mark.parametrize("heuristic", [VsidsHeuristic, ChbHeuristic])
    @pytest.mark.parametrize("seed", range(17))
    def test_random_3sat_sweep(self, seed, heuristic):
        """17 seeds x 2 heuristics x 6 sizes = 204 instances."""
        statuses = set()
        for num_vars, num_clauses in SIZES:
            formula = random_3sat(
                num_vars, num_clauses, np.random.default_rng(100 * seed)
            )
            status = assert_identical(
                formula,
                SolverConfig(heuristic_factory=heuristic, seed=seed),
            )
            statuses.add(status.value)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_ksat_mixed_widths(self, seed):
        rng = np.random.default_rng(9000 + seed)
        formula = random_ksat(18, 90, rng)
        assert_identical(formula, SolverConfig(seed=seed))

    def test_sweep_covers_both_outcomes(self):
        """The sweep's sizes genuinely mix SAT and UNSAT."""
        statuses = set()
        for seed in range(6):
            for num_vars, num_clauses in SIZES:
                formula = random_3sat(
                    num_vars, num_clauses, np.random.default_rng(100 * seed)
                )
                statuses.add(CdclSolver(formula).solve().status.value)
        assert {"sat", "unsat"} <= statuses


class TestConfigVariants:
    @pytest.mark.parametrize(
        "config_kwargs",
        [
            dict(heuristic_factory=lambda: VsidsHeuristic(decay=0.95)),
            dict(
                heuristic_factory=ChbHeuristic,
                luby_base=50,
                default_phase=True,
            ),
            dict(restart_strategy="geometric"),
            dict(restart_strategy="none"),
            dict(phase_saving=False),
            dict(random_decision_freq=0.25),
            dict(max_conflicts=15),
        ],
        ids=[
            "minisat",
            "kissat",
            "geometric",
            "no-restarts",
            "no-phase-saving",
            "random-decisions",
            "budget",
        ],
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_variant(self, config_kwargs, seed):
        formula = random_3sat(22, 110, np.random.default_rng(40 + seed))
        assert_identical(formula, SolverConfig(seed=seed, **config_kwargs))

    @pytest.mark.parametrize("seed", range(5))
    def test_assumptions_identical(self, seed):
        formula = random_3sat(20, 88, np.random.default_rng(60 + seed))
        config = SolverConfig(seed=seed)
        assumptions = [Lit(1), Lit(-3), Lit(7)]
        r1 = CdclSolver(formula, config=config).solve(assumptions=assumptions)
        r2 = FastCdclSolver(formula, config=config).solve(
            assumptions=assumptions
        )
        assert r1.status == r2.status
        assert r1.stats.as_dict() == r2.stats.as_dict()

    def test_edge_cases(self):
        for formula in (
            CNF([], num_vars=3),  # no clauses
            CNF([Clause([])], num_vars=1),  # empty clause
            CNF([[1], [-1]]),  # contradictory units
            CNF([[1, -1], [2]]),  # tautology + unit
            CNF([[1], [-1, 2], [-2, 3]]),  # unit chain
        ):
            assert_identical(formula, SolverConfig())
