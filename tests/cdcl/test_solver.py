"""Tests for the CDCL engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cdcl.solver import CdclSolver, SolverConfig, SolverStatus
from repro.sat.assignment import Assignment
from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF, Clause, Lit

from tests.conftest import make_random_3sat


class TestBasics:
    def test_sat_model_is_verified(self, tiny_sat_formula):
        result = CdclSolver(tiny_sat_formula).solve()
        assert result.is_sat
        assert result.model.satisfies(tiny_sat_formula)

    def test_unsat(self, tiny_unsat_formula):
        result = CdclSolver(tiny_unsat_formula).solve()
        assert result.is_unsat
        assert result.model is None

    def test_empty_formula_sat(self):
        assert CdclSolver(CNF([], num_vars=3)).solve().is_sat

    def test_empty_clause_unsat(self):
        result = CdclSolver(CNF([Clause([])], num_vars=1)).solve()
        assert result.is_unsat

    def test_contradictory_units_unsat(self):
        result = CdclSolver(CNF([[1], [-1]])).solve()
        assert result.is_unsat

    def test_unit_chain(self):
        f = CNF([[1], [-1, 2], [-2, 3], [-3, 4]])
        result = CdclSolver(f).solve()
        assert result.is_sat
        assert all(result.model[v] for v in range(1, 5))

    def test_tautologies_ignored(self):
        f = CNF([[1, -1], [2]], num_vars=2)
        result = CdclSolver(f).solve()
        assert result.is_sat

    def test_deterministic_given_seed(self):
        f = make_random_3sat(40, 170, seed=9)
        r1 = CdclSolver(f, SolverConfig(seed=3)).solve()
        r2 = CdclSolver(f, SolverConfig(seed=3)).solve()
        assert r1.stats.iterations == r2.stats.iterations
        assert r1.model == r2.model


class TestFuzzAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 13))
        cap = (n * (n - 1) * (n - 2) // 6) * 8 // 2
        m = min(int(rng.integers(1, 5 * n)), 4 * n, cap)
        f = make_random_3sat(n, m, seed=seed + 1000)
        expected = brute_force_solve(f) is not None
        result = CdclSolver(f, SolverConfig(seed=seed)).solve()
        assert result.is_sat == expected
        if result.is_sat:
            assert result.model.satisfies(f)

    @pytest.mark.parametrize("restart", ["luby", "geometric", "none"])
    def test_restart_strategies_agree(self, restart):
        f = make_random_3sat(10, 42, seed=5)
        expected = brute_force_solve(f) is not None
        config = SolverConfig(restart_strategy=restart, luby_base=2, geometric_first=2)
        assert CdclSolver(f, config).solve().is_sat == expected


class TestBudgets:
    def test_conflict_budget_unknown(self):
        f = make_random_3sat(60, 258, seed=2)
        result = CdclSolver(f, SolverConfig(max_conflicts=1)).solve()
        assert result.status in (SolverStatus.UNKNOWN, SolverStatus.SAT, SolverStatus.UNSAT)
        # With one conflict allowed on a hard instance we expect UNKNOWN.
        hard = make_random_3sat(100, 430, seed=3)
        result = CdclSolver(hard, SolverConfig(max_conflicts=1)).solve()
        assert result.status is SolverStatus.UNKNOWN

    def test_iteration_budget(self):
        f = make_random_3sat(100, 430, seed=4)
        result = CdclSolver(f, SolverConfig(max_iterations=5)).solve()
        assert result.status is SolverStatus.UNKNOWN
        assert result.stats.iterations <= 6


class TestAssumptions:
    def test_assumption_respected(self):
        f = CNF([[1, 2]], num_vars=2)
        result = CdclSolver(f).solve(assumptions=[Lit(-1)])
        assert result.is_sat
        assert result.model[1] is False
        assert result.model[2] is True

    def test_conflicting_assumptions_unsat(self):
        f = CNF([[1, 2]], num_vars=2)
        result = CdclSolver(f).solve(assumptions=[Lit(-1), Lit(-2)])
        assert result.is_unsat

    def test_assumption_against_unit(self):
        f = CNF([[1]], num_vars=1)
        result = CdclSolver(f).solve(assumptions=[Lit(-1)])
        assert result.is_unsat


class TestSteeringApi:
    def test_phase_steers_model(self):
        # Both polarities satisfiable: the phase decides the model.
        f = CNF([[1, 2]], num_vars=2)
        solver = CdclSolver(f)
        solver.set_phase(1, True)
        solver.set_phase(2, True)
        result = solver.solve()
        assert result.model[1] is True

    def test_enqueue_decision_used_first(self):
        f = CNF([[1, 2], [-1, 2], [3, 4]], num_vars=4)
        solver = CdclSolver(f)
        solver.enqueue_decision(Lit(4))
        result = solver.solve()
        assert result.is_sat
        assert result.model[4] is True

    def test_clear_decision_queue(self):
        f = CNF([[1, 2]], num_vars=2)
        solver = CdclSolver(f)
        solver.enqueue_decision(Lit(2))
        assert solver.has_pending_decisions
        solver.clear_decision_queue()
        assert not solver.has_pending_decisions

    def test_bump_variable_changes_first_decision(self):
        f = CNF([[1, 2], [3, 4]], num_vars=4)
        solver = CdclSolver(f)
        solver.set_phase(4, True)
        solver.bump_variable(4, 100.0)
        result = solver.solve()
        assert result.model[4] is True

    def test_current_assignment_snapshot(self):
        f = CNF([[1]], num_vars=2)
        solver = CdclSolver(f)
        result = solver.solve()
        snapshot = solver.current_assignment()
        assert snapshot[1] is True

    def test_unsatisfied_original_clauses(self, tiny_sat_formula):
        solver = CdclSolver(tiny_sat_formula)
        # Before solving nothing is assigned: both clauses unsatisfied.
        assert solver.unsatisfied_original_clauses() == [0, 1]


class TestHook:
    def test_hook_called_every_iteration(self):
        f = make_random_3sat(20, 60, seed=7)
        calls = []

        class Hook:
            def on_iteration(self, solver):
                calls.append(solver.stats.iterations)
                return None

        result = CdclSolver(f).solve(hook=Hook())
        assert len(calls) == result.stats.iterations

    def test_hook_proposal_accepted_when_valid(self, tiny_sat_formula):
        model = brute_force_solve(tiny_sat_formula)

        class Hook:
            def on_iteration(self, solver):
                return model

        result = CdclSolver(tiny_sat_formula).solve(hook=Hook())
        assert result.is_sat
        assert result.stats.iterations == 1

    def test_hook_bad_proposal_ignored(self, tiny_unsat_formula):
        class Hook:
            def on_iteration(self, solver):
                return Assignment({1: True, 2: True})

        result = CdclSolver(tiny_unsat_formula).solve(hook=Hook())
        assert result.is_unsat


class TestCounters:
    def test_stats_populated(self):
        f = make_random_3sat(50, 215, seed=11)
        result = CdclSolver(f).solve()
        stats = result.stats
        assert stats.iterations > 0
        assert stats.decisions > 0
        assert stats.propagations > 0
        assert stats.iterations >= stats.conflicts

    def test_clause_activity_bumped_on_conflicts(self):
        f = make_random_3sat(30, 129, seed=13)
        solver = CdclSolver(f)
        result = solver.solve()
        if result.stats.conflicts:
            assert max(solver.counters.activity) > 1.0

    def test_visit_counters_track_propagation(self):
        f = make_random_3sat(30, 129, seed=13)
        solver = CdclSolver(f)
        solver.solve()
        assert sum(solver.counters.propagation_visits) > 0

    def test_top_by_activity(self):
        f = make_random_3sat(30, 129, seed=13)
        solver = CdclSolver(f)
        solver.solve()
        top = solver.counters.top_by_activity(5)
        assert len(top) == 5
        activities = [solver.counters.activity[i] for i in top]
        assert activities == sorted(activities, reverse=True)

    def test_stats_as_dict(self):
        f = CNF([[1]], num_vars=1)
        result = CdclSolver(f).solve()
        d = result.stats.as_dict()
        assert d["iterations"] == result.stats.iterations


class TestLearnedClauseDb:
    def test_db_reduction_triggers_on_long_run(self):
        f = make_random_3sat(100, 426, seed=17)
        solver = CdclSolver(f, SolverConfig(learntsize_factor=0.02))
        result = solver.solve()
        if result.stats.learned_clauses > 50:
            assert result.stats.deleted_clauses > 0

    def test_solution_correct_despite_deletion(self):
        f = make_random_3sat(60, 255, seed=19)
        expected = CdclSolver(f).solve().is_sat
        aggressive = CdclSolver(f, SolverConfig(learntsize_factor=0.01)).solve()
        assert aggressive.is_sat == expected


class TestRandomDecisions:
    def test_random_decision_freq_validated(self):
        with pytest.raises(ValueError):
            SolverConfig(random_decision_freq=1.5)

    def test_random_decisions_still_correct(self):
        f = make_random_3sat(12, 50, seed=23)
        expected = brute_force_solve(f) is not None
        config = SolverConfig(random_decision_freq=0.5, seed=1)
        assert CdclSolver(f, config).solve().is_sat == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_agreement_with_brute_force(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 11))
    cap = (n * (n - 1) * (n - 2) // 6) * 8 // 2
    m = min(int(rng.integers(1, 4 * n)), cap)
    f = make_random_3sat(n, m, seed=seed)
    expected = brute_force_solve(f) is not None
    result = CdclSolver(f, SolverConfig(seed=seed)).solve()
    assert result.is_sat == expected
    if result.is_sat:
        assert result.model.satisfies(f)
