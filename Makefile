PYTHON ?= python
export PYTHONPATH := src

.PHONY: test ci bench bench-full paper-tables

test:
	$(PYTHON) -m pytest tests/

# What .github/workflows/ci.yml runs per Python version.
ci:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m pytest -x -q

# QA hot-path micro-benchmark (< 60 s); writes BENCH_hotpath.json and
# fails if the batched sampler is slower than the per-read baseline.
bench:
	$(PYTHON) -m benchmarks.bench_hotpath --quick

bench-full:
	$(PYTHON) -m benchmarks.bench_hotpath

# Regenerate every paper table / figure reproduction.
paper-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
