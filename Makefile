PYTHON ?= python
export PYTHONPATH := src

.PHONY: test ci bench bench-full bench-obs bench-service bench-gateway bench-cache bench-cdcl bench-cdcl-full bench-recovery chaos docs-check paper-tables

test:
	$(PYTHON) -m pytest tests/

# What .github/workflows/ci.yml runs per Python version.
ci:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m pytest -x -q
	$(PYTHON) tools/docs_lint.py

# QA hot-path micro-benchmark (< 60 s); writes BENCH_hotpath.json and
# fails if the batched sampler is slower than the per-read baseline.
bench:
	$(PYTHON) -m benchmarks.bench_hotpath --quick

bench-full:
	$(PYTHON) -m benchmarks.bench_hotpath

# Observability overhead check; needs BENCH_hotpath.json (make bench)
# and fails if the disabled path costs more than 2% over its baseline.
bench-obs:
	$(PYTHON) -m benchmarks.bench_observability --quick

# Solver-service throughput; writes BENCH_service.json and fails if
# modelled throughput at 4 workers is below 2x serial or any service
# run is not bit-identical to the solo baseline.
bench-service:
	$(PYTHON) -m benchmarks.bench_service --quick

# Gateway benchmark; writes BENCH_gateway.json and fails unless wire
# results are bit-identical to solo replays of the routed placements
# and modelled fleet throughput at 4 devices is >= 1.7x one device.
bench-gateway:
	$(PYTHON) -m benchmarks.bench_gateway --quick

# Persistent-cache benchmark; writes BENCH_cache.json and fails
# unless cached results replay bit-identically (solver fields, zero
# QPU billing) and the zipf job-stream replay through the gateway DES
# models >= 3x throughput with the cache on.
bench-cache:
	$(PYTHON) -m benchmarks.bench_cache --quick

# CDCL engine benchmark; writes BENCH_cdcl.json and fails unless the
# native kernel is >= 10x the reference propagation rate with
# bit-identical outcomes (skips cleanly when no C compiler exists).
bench-cdcl:
	$(PYTHON) -m benchmarks.bench_cdcl --quick

bench-cdcl-full:
	$(PYTHON) -m benchmarks.bench_cdcl

# Durability overhead; writes BENCH_recovery.json and fails if the
# write-ahead journal costs more than 5% on the batch path or any
# journaled outcome diverges from the bare run.
bench-recovery:
	$(PYTHON) -m benchmarks.bench_recovery --quick

# Chaos harness (tools/chaos.py): kill -9 a real batch subprocess,
# tear the journal at random offsets, storm a device fleet — fails on
# the first violated recovery invariant.
chaos:
	$(PYTHON) tools/chaos.py torn-tail --trials 10
	$(PYTHON) tools/chaos.py fault-storm --trials 2
	$(PYTHON) tools/chaos.py crash-batch --trials 1 --jobs 2 --count 3

# Docs lint: broken relative links, phantom --flags, undocumented
# solve flags (see tools/docs_lint.py).
docs-check:
	$(PYTHON) tools/docs_lint.py

# Regenerate every paper table / figure reproduction.
paper-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
