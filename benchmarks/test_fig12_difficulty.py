"""Figure 12: speedup vs problem difficulty.

(a) Problems with a higher conflict proportion (conflicts per
iteration) speed up more — benchmark II sits below 1x because its
conflict proportion is tiny.  (b) Problems that take classic CDCL
longer speed up more, because the warm-up has more to accelerate.
Reproduced as rank correlations over the suite runs.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.analysis import format_table, measure_iteration_cost
from repro.analysis.visits import conflict_proportion

from benchmarks._harness import emit, SUITE_ORDER, print_banner, run_suite


def test_fig12_difficulty_vs_speedup(benchmark):
    runs = benchmark.pedantic(
        lambda: run_suite(SUITE_ORDER, problems=3, seed=0),
        rounds=1,
        iterations=1,
    )
    per_iteration = measure_iteration_cost(trials=2)

    proportions, cdcl_times, speedups = [], [], []
    for run in runs:
        hyq_seconds = run.hyqsat.time_breakdown(per_iteration).total_s
        speedups.append(run.minisat_seconds / max(hyq_seconds, 1e-9))
        cdcl_times.append(run.minisat_seconds)
        # Conflict proportion of the classic run approximated from the
        # hybrid run's CDCL statistics (same search engine).
        proportions.append(conflict_proportion(run.hyqsat.stats))

    rho_conflict = sps.spearmanr(proportions, speedups).statistic
    rho_time = sps.spearmanr(cdcl_times, speedups).statistic

    print_banner("Figure 12 — difficulty vs speedup (rank correlations)")
    emit(
        format_table(
            ["Relationship", "Spearman rho", "Paper"],
            [
                ["conflict proportion vs speedup", f"{rho_conflict:.2f}", "positive"],
                ["classic CDCL time vs speedup", f"{rho_time:.2f}", "positive"],
            ],
        )
    )
    buckets = np.array_split(
        sorted(zip(cdcl_times, speedups)), 3
    )
    rows = [
        [
            f"tercile {i + 1}",
            f"{np.mean([t for t, _ in b]) * 1e3:.2f} ms",
            f"{np.mean([s for _, s in b]):.2f}x",
        ]
        for i, b in enumerate(buckets)
    ]
    emit(format_table(["CDCL-time tercile", "Mean CDCL time", "Mean speedup"], rows))
    assert np.isfinite(rho_conflict) and np.isfinite(rho_time)
