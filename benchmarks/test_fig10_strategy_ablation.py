"""Figure 10: ablation of the backend feedback strategies.

The paper disables strategies 1, 2, and 4 one at a time (strategy 3 is
a no-op by definition) and shows each contributes to the overall
reduction — strategy 1 least (zero energy is rare), strategy 4 almost
everything on the unsatisfiable CFA benchmark.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.benchgen import BENCHMARKS
from repro.cdcl import minisat_solver
from repro.core import HyQSatConfig, HyQSatSolver

from benchmarks._harness import emit, default_device, print_banner

NAMES = ("GC1", "CFA", "II", "AI1", "AI2")
PROBLEMS = 2

VARIANTS = {
    "all strategies": {},
    "no strategy 1": {"enable_strategy_1": False},
    "no strategy 2": {"enable_strategy_2": False},
    "no strategy 4": {"enable_strategy_4": False},
}


def test_fig10_strategy_ablation(benchmark):
    def run_all():
        table = {}
        for name in NAMES:
            spec = BENCHMARKS[name]
            base_iters, variant_iters = [], {v: [] for v in VARIANTS}
            for index in range(PROBLEMS):
                formula = spec.generate(index, seed=0)
                base_iters.append(
                    minisat_solver(formula, seed=0).solve().stats.iterations
                )
                for variant, flags in VARIANTS.items():
                    result = HyQSatSolver(
                        formula,
                        device=default_device(seed=index),
                        config=HyQSatConfig(seed=index, **flags),
                    ).solve()
                    variant_iters[variant].append(result.stats.iterations)
            table[name] = (base_iters, variant_iters)
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (base_iters, variant_iters) in table.items():
        row = [name]
        for variant in VARIANTS:
            reduction = np.mean(base_iters) / max(1.0, np.mean(variant_iters[variant]))
            row.append(f"{reduction:.2f}")
        rows.append(row)
    print_banner("Figure 10 — reduction with feedback strategies ablated")
    emit(format_table(["Bench"] + list(VARIANTS), rows))
    emit(
        "\nPaper: every strategy contributes; strategy 1 least (zero energy"
        " is rare); strategy 4 carries CFA (unsatisfiable)."
    )
    # Soundness is checked in the unit tests; here just require data.
    assert len(rows) == len(NAMES)
