"""Figure 8: QA energy distributions of satisfiable vs unsatisfiable
problems and the Gaussian Naive Bayes fit.

The paper runs 1000 + 1000 problems (50-200 vars, 50-160 clauses) on
D-Wave 2000Q, fits a GNB to the energies, and partitions the axis at
90% posterior confidence (landing at 4.5 and 8).  Scaled: 40 + 40
problems on the noisy simulated device; the reproduced series are the
two distributions' summary statistics, the fitted partition points,
and the classifier accuracy.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.annealer import AnnealerDevice, NoiseModel
from repro.annealer.device import AnnealRequest
from repro.benchgen import random_3sat
from repro.embedding import HyQSatEmbedder
from repro.ml import fit_bands
from repro.qubo import encode_formula, normalize
from repro.sat import brute_force_solve
from repro.topology import ChimeraGraph

from benchmarks._harness import emit, print_banner

PER_CLASS = 20


def _energy_of(device, hardware, formula):
    encoding = encode_formula(list(formula.clauses), formula.num_vars)
    embedded = HyQSatEmbedder(hardware).embed(encoding)
    if not embedded.success:
        return None
    objective, d_star = normalize(encoding.objective)
    request = AnnealRequest(
        objective, embedded.embedding, embedded.edge_couplers, d_star
    )
    return device.run(request).best.energy


def test_fig8_energy_distribution(benchmark):
    def run_all():
        hardware = ChimeraGraph(16, 16, 4)
        device = AnnealerDevice(hardware, noise=NoiseModel.dwave_2000q(), seed=0)
        rng = np.random.default_rng(1)
        # The paper's pools: satisfiable problems are drawn at low
        # clause/variable ratios (its 50-160 clauses over 50-200 vars
        # is ratio <= 3.2); unsatisfiable ones need higher ratios.
        sat_energies, unsat_energies = [], []
        while len(sat_energies) < PER_CLASS:
            n = int(rng.integers(10, 18))
            m = int(n * rng.uniform(1.5, 3.5))
            formula = random_3sat(n, m, rng)
            if brute_force_solve(formula) is None:
                continue
            energy = _energy_of(device, hardware, formula)
            if energy is not None:
                sat_energies.append(energy)
        while len(unsat_energies) < PER_CLASS:
            n = int(rng.integers(8, 13))
            m = int(n * rng.uniform(5.0, 7.0))
            formula = random_3sat(n, m, rng)
            if brute_force_solve(formula) is not None:
                continue
            energy = _energy_of(device, hardware, formula)
            if energy is not None:
                unsat_energies.append(energy)
        return sat_energies, unsat_energies

    sat_energies, unsat_energies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    bands, model = fit_bands(sat_energies, unsat_energies)
    X = np.concatenate([sat_energies, unsat_energies])
    y = np.concatenate(
        [np.ones(len(sat_energies), dtype=int), np.zeros(len(unsat_energies), dtype=int)]
    )
    accuracy = model.score(X, y)

    print_banner("Figure 8 — energy distributions and GNB fit (noisy device)")
    emit(
        format_table(
            ["Class", "Mean", "Std", "P10", "P90"],
            [
                [
                    "satisfiable",
                    f"{np.mean(sat_energies):.2f}",
                    f"{np.std(sat_energies):.2f}",
                    f"{np.percentile(sat_energies, 10):.2f}",
                    f"{np.percentile(sat_energies, 90):.2f}",
                ],
                [
                    "unsatisfiable",
                    f"{np.mean(unsat_energies):.2f}",
                    f"{np.std(unsat_energies):.2f}",
                    f"{np.percentile(unsat_energies, 10):.2f}",
                    f"{np.percentile(unsat_energies, 90):.2f}",
                ],
            ],
        )
    )
    emit(
        f"\n90% confidence partition: near-sat <= {bands.t_sat:.2f} < uncertain "
        f"<= {bands.t_unsat:.2f} < near-unsat   (paper: 4.5 / 8.0)"
    )
    emit(f"GNB accuracy on the pooled energies: {accuracy:.1%}")
    assert np.mean(unsat_energies) > np.mean(sat_energies)
    assert accuracy > 0.7
