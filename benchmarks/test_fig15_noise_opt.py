"""Figure 15: the Section IV-C coefficient adjustment.

(a) Energy-gap surfaces before/after adjustment: the paper measures up
to 1.8x gap growth, larger for bigger problems.  (b) Applied to the
device, the wider gap separates the near-satisfiable and
near-unsatisfiable distributions: the uncertain interval shrinks from
28.1% to 14.0% of the energy axis and GNB accuracy rises from 84.76%
to 97.53%.

Reproduced exactly: exhaustive normalised gaps over a size sweep, then
the noisy-device GNB comparison with and without adjustment.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.sat.cnf import CNF, Clause
from repro.annealer import AnnealerDevice, NoiseModel
from repro.annealer.device import AnnealRequest
from repro.benchgen import random_3sat
from repro.embedding import HyQSatEmbedder
from repro.ml import fit_bands
from repro.qubo import adjust_coefficients, encode_formula, energy_gap, normalize
from repro.sat import brute_force_solve
from repro.topology import ChimeraGraph

from benchmarks._harness import emit, print_banner

GAP_SIZES = ((6, 15), (8, 24), (10, 35), (12, 45))
GAP_TRIALS = 8
PER_CLASS = 16


def _mixed_width_clauses(n, m, rng):
    """Random mixed-width (1-3) clauses: the regime where weak narrow
    sub-objectives leave room for amplification under the d* constraint
    (on uniform width-3 formulas the constraint binds immediately and
    the adjustment is a no-op)."""
    clauses = []
    for _ in range(m):
        width = int(rng.integers(1, 4))
        vs = rng.choice(np.arange(1, n + 1), size=min(width, n), replace=False)
        clauses.append(
            Clause([int(v) if rng.integers(0, 2) else -int(v) for v in vs])
        )
    return clauses


def test_fig15a_energy_gap(benchmark):
    def run_all():
        rng = np.random.default_rng(0)
        table = []
        for n, m in GAP_SIZES:
            ratios = []
            for _ in range(GAP_TRIALS):
                clauses = _mixed_width_clauses(n, m, rng)
                enc = encode_formula(clauses, n)
                adj = adjust_coefficients(enc).encoding
                before = energy_gap(enc) / max(enc.objective.d_star(), 1e-12)
                after = energy_gap(adj) / max(adj.objective.d_star(), 1e-12)
                if np.isfinite(before) and before > 0:
                    ratios.append(after / before)
            table.append((n, m, float(np.mean(ratios)), float(np.max(ratios))))
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_banner("Figure 15 (a) — normalised energy-gap growth from adjustment")
    emit(
        format_table(
            ["#Vars", "#Clauses", "Mean ratio", "Max ratio"],
            [[n, m, f"{mean:.2f}", f"{peak:.2f}"] for n, m, mean, peak in table],
        )
    )
    emit("\nPaper: up to 1.8x growth.  The d*-preserving adjustment never")
    emit("shrinks the normalised gap; gains appear on mixed-width clause")
    emit("sets (uniform width-3 sets leave no room under the d* constraint).")
    assert all(mean >= 1.0 - 1e-9 for _, _, mean, _ in table)
    assert max(peak for _, _, _, peak in table) > 1.2


def _energies(adjust, seed):
    hardware = ChimeraGraph(16, 16, 4)
    device = AnnealerDevice(hardware, noise=NoiseModel.dwave_2000q(), seed=seed)
    rng = np.random.default_rng(seed)

    def one(formula, clauses):
        enc = encode_formula(clauses, formula.num_vars)
        if adjust:
            enc = adjust_coefficients(enc).encoding
        embedded = HyQSatEmbedder(hardware).embed(enc)
        if not embedded.success:
            return None
        objective, d_star = normalize(enc.objective)
        request = AnnealRequest(
            objective, embedded.embedding, embedded.edge_couplers, d_star
        )
        return device.run(request).best.energy

    sat_energies, unsat_energies = [], []
    while len(sat_energies) < PER_CLASS:
        n = int(rng.integers(10, 16))
        clauses = _mixed_width_clauses(n, int(n * rng.uniform(1.5, 3.0)), rng)
        formula = CNF(clauses, num_vars=n)
        if brute_force_solve(formula) is None:
            continue
        energy = one(formula, clauses)
        if energy is not None:
            sat_energies.append(energy)
    while len(unsat_energies) < PER_CLASS:
        n = int(rng.integers(6, 11))
        clauses = _mixed_width_clauses(n, int(n * rng.uniform(4.0, 6.0)), rng)
        formula = CNF(clauses, num_vars=n)
        if brute_force_solve(formula) is not None:
            continue
        energy = one(formula, clauses)
        if energy is not None:
            unsat_energies.append(energy)
    return sat_energies, unsat_energies


def test_fig15b_interval_separation(benchmark):
    def run_all():
        return _energies(adjust=False, seed=2), _energies(adjust=True, seed=2)

    (plain_sat, plain_unsat), (adj_sat, adj_unsat) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    rows = []
    accuracies = {}
    for label, sat, unsat in (
        ("alpha = 1", plain_sat, plain_unsat),
        ("adjusted", adj_sat, adj_unsat),
    ):
        bands, model = fit_bands(sat, unsat)
        X = np.concatenate([sat, unsat])
        y = np.concatenate([np.ones(len(sat), int), np.zeros(len(unsat), int)])
        accuracy = model.score(X, y)
        accuracies[label] = accuracy
        span = max(X.max() - min(X.min(), 0.0), 1e-9)
        rows.append(
            [
                label,
                f"{bands.t_sat:.2f}",
                f"{bands.t_unsat:.2f}",
                f"{bands.uncertain_width / span:.1%}",
                f"{accuracy:.1%}",
            ]
        )
    print_banner("Figure 15 (b) — confidence intervals with/without adjustment")
    emit(
        format_table(
            ["Coefficients", "t_sat", "t_unsat", "Uncertain share", "GNB accuracy"],
            rows,
        )
    )
    emit("\nPaper: uncertain interval 28.1% -> 14.0%, accuracy 84.76% -> 97.53%.")
    assert accuracies["adjusted"] >= accuracies["alpha = 1"] - 0.10
