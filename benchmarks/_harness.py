"""Shared helpers for the reproduction benchmark harness.

Every table and figure of the paper's evaluation section has one bench
module; they share instance generation, solver running, and table
printing through this module.  Results are cached per-process so
benches that view the same underlying runs from different angles
(Table II, Figures 11 and 12) do not re-solve everything.

Instance sizes are scaled down from the paper's (pure-Python CDCL and
a simulated annealer; see DESIGN.md).  The printed tables always quote
the paper's reported values next to the measured ones so the shapes
can be compared directly; EXPERIMENTS.md records the conclusions.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis import format_table, reduction_stats
from repro.annealer import AnnealerDevice, NoiseModel
from repro.benchgen import BENCHMARKS
from repro.cdcl import kissat_solver, minisat_solver
from repro.core import HyQSatConfig, HyQSatResult, HyQSatSolver
from repro.topology import ChimeraGraph

#: Benchmarks in Table I order.
SUITE_ORDER = [
    "GC1", "GC2", "GC3", "CFA", "BP", "II", "IF1", "IF2", "CRY",
    "AI1", "AI2", "AI3", "AI4", "AI5",
]

#: Problems per benchmark in the bench harness (paper: 4-100).
DEFAULT_PROBLEMS = 5


@dataclass
class SuiteRun:
    """One benchmark problem solved three ways."""

    benchmark: str
    index: int
    num_vars: int
    num_clauses: int
    minisat_iterations: int
    minisat_seconds: float
    kissat_iterations: int
    kissat_seconds: float
    hyqsat: HyQSatResult
    hyqsat_seconds: float

    @property
    def reduction(self) -> float:
        """Table I metric: classic CDCL iterations / HyQSAT iterations."""
        return max(1, self.minisat_iterations) / max(1, self.hyqsat.stats.iterations)


_CACHE: Dict[Tuple, List[SuiteRun]] = {}


def default_device(noise: Optional[NoiseModel] = None, seed: int = 0) -> AnnealerDevice:
    """The simulated D-Wave 2000Q."""
    return AnnealerDevice(
        ChimeraGraph(16, 16, 4), noise=noise or NoiseModel.noiseless(), seed=seed
    )


def run_suite(
    names: Optional[List[str]] = None,
    problems: int = DEFAULT_PROBLEMS,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    config_overrides: Optional[dict] = None,
) -> List[SuiteRun]:
    """Solve ``problems`` instances of each benchmark three ways."""
    names = names or SUITE_ORDER
    key = (
        tuple(names),
        problems,
        seed,
        repr(noise),
        tuple(sorted((config_overrides or {}).items())),
    )
    if key in _CACHE:
        return _CACHE[key]

    runs: List[SuiteRun] = []
    for name in names:
        spec = BENCHMARKS[name]
        count = min(problems, spec.num_problems) if problems else spec.num_problems
        for index in range(count):
            formula = spec.generate(index, seed=seed)

            start = time.perf_counter()
            mini = minisat_solver(formula, seed=seed).solve()
            mini_seconds = time.perf_counter() - start

            start = time.perf_counter()
            kis = kissat_solver(formula, seed=seed).solve()
            kis_seconds = time.perf_counter() - start

            config = HyQSatConfig(seed=index, **(config_overrides or {}))
            solver = HyQSatSolver(
                formula, device=default_device(noise, seed=index), config=config
            )
            start = time.perf_counter()
            hyq = solver.solve()
            hyq_seconds = time.perf_counter() - start

            runs.append(
                SuiteRun(
                    benchmark=name,
                    index=index,
                    num_vars=formula.num_vars,
                    num_clauses=formula.num_clauses,
                    minisat_iterations=mini.stats.iterations,
                    minisat_seconds=mini_seconds,
                    kissat_iterations=kis.stats.iterations,
                    kissat_seconds=kis_seconds,
                    hyqsat=hyq,
                    hyqsat_seconds=hyq_seconds,
                )
            )
    _CACHE[key] = runs
    return runs


def group_by_benchmark(runs: List[SuiteRun]) -> Dict[str, List[SuiteRun]]:
    """Runs grouped by benchmark name, preserving SUITE_ORDER."""
    grouped: Dict[str, List[SuiteRun]] = {}
    for run in runs:
        grouped.setdefault(run.benchmark, []).append(run)
    return grouped


def reduction_rows(runs: List[SuiteRun]) -> List[List[object]]:
    """Table I rows: per-benchmark iteration statistics."""
    rows: List[List[object]] = []
    for name, group in group_by_benchmark(runs).items():
        spec = BENCHMARKS[name]
        stats = reduction_stats([r.reduction for r in group])
        cdcl_mean = int(np.mean([r.minisat_iterations for r in group]))
        hyq_mean = int(np.mean([r.hyqsat.stats.iterations for r in group]))
        rows.append(
            [
                name,
                spec.domain,
                len(group),
                cdcl_mean,
                hyq_mean,
                f"{stats.average:.2f}",
                f"{stats.geomean:.2f}",
                f"{stats.maximum:.2f}",
                f"{stats.minimum:.2f}",
                f"{spec.paper_reduction_avg or '-'}",
            ]
        )
    return rows


#: Lines queued for the end-of-run report (pytest captures stdout
#: during tests; the bench conftest flushes this buffer from a
#: ``pytest_terminal_summary`` hook, after capture ends).
REPORT_LINES: List[str] = []


def emit(text: str = "") -> None:
    """Record a reproduction-table line (also printed immediately when
    running outside pytest)."""
    for line in str(text).splitlines() or [""]:
        REPORT_LINES.append(line)
    print(text)


def print_banner(title: str) -> None:
    """Visual separator in bench output."""
    emit()
    emit("=" * 72)
    emit(title)
    emit("=" * 72)
