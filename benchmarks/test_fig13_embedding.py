"""Figure 13: embedding efficiency of the three schemes.

The paper sweeps 50 clause queues of up to 250 clauses and measures
(a) embedding time — HyQSAT ~16 us vs Minorminer 17.2 s (8.95e5x) and
P&R (2.6e6x); (b) success rate — capacity knees at 170 / 180 / 120
clauses; (c) chain length — HyQSAT ~1.59x longer at capacity.

Scaled sweep: queues of 5-40 clauses, 2 queues per size, with BFS-
local clause order (as the real frontend produces).  The reproduced
shapes: HyQSAT's time is orders of magnitude below the baselines and
grows linearly; the baselines fail first as clause count grows;
HyQSAT's chains are longer.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.benchgen import random_3sat
from repro.core.clause_queue import ClauseQueueGenerator
from repro.embedding import (
    EmbeddingTimeout,
    HyQSatEmbedder,
    MinorminerLikeEmbedder,
    PlaceAndRouteEmbedder,
)
from repro.qubo import encode_formula
from repro.topology import ChimeraGraph

from benchmarks._harness import emit, print_banner

SIZES = (5, 10, 20, 30)
QUEUES_PER_SIZE = 2
TIMEOUT = 45.0


def _bfs_queue(num_clauses, seed):
    """A BFS-local clause queue drawn from a larger formula."""
    rng = np.random.default_rng(seed)
    formula = random_3sat(60, 250, rng)
    generator = ClauseQueueGenerator(formula, seed=seed)
    queue = generator.generate([1.0] * formula.num_clauses, num_clauses)
    clauses = [formula.clauses[i] for i in queue]
    return encode_formula(clauses, formula.num_vars)


def test_fig13_embedding_efficiency(benchmark):
    hardware = ChimeraGraph(16, 16, 4)

    def run_all():
        results = {scheme: {size: [] for size in SIZES} for scheme in ("hyqsat", "minorminer", "pr")}
        for size in SIZES:
            for q in range(QUEUES_PER_SIZE):
                encoding = _bfs_queue(size, seed=size * 100 + q)
                edges = list(encoding.objective.quadratic.keys())
                variables = encoding.objective.variables

                hy = HyQSatEmbedder(hardware).embed(encoding)
                results["hyqsat"][size].append(
                    (hy.elapsed_seconds, hy.num_embedded == len(encoding.clauses), hy.avg_chain_length)
                )
                try:
                    mm = MinorminerLikeEmbedder(
                        hardware, max_passes=20, timeout_seconds=TIMEOUT, seed=q
                    ).embed(edges, variables)
                    results["minorminer"][size].append(
                        (mm.elapsed_seconds, mm.success, mm.avg_chain_length)
                    )
                except EmbeddingTimeout as timeout:
                    results["minorminer"][size].append(
                        (timeout.elapsed_seconds, False, float("nan"))
                    )
                try:
                    pr = PlaceAndRouteEmbedder(
                        hardware, timeout_seconds=TIMEOUT, seed=q
                    ).embed(edges, variables)
                    results["pr"][size].append(
                        (pr.elapsed_seconds, pr.success, pr.avg_chain_length)
                    )
                except EmbeddingTimeout as timeout:
                    results["pr"][size].append(
                        (timeout.elapsed_seconds, False, float("nan"))
                    )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for size in SIZES:
        row = [size]
        for scheme in ("hyqsat", "minorminer", "pr"):
            samples = results[scheme][size]
            mean_time = np.mean([t for t, _, _ in samples])
            success = np.mean([ok for _, ok, _ in samples])
            chains = [c for _, ok, c in samples if ok]
            mean_chain = np.mean(chains) if chains else float("nan")
            row.extend([f"{mean_time * 1e3:.2f}", f"{success:.0%}", f"{mean_chain:.1f}"])
        rows.append(row)
    print_banner("Figure 13 — embedding time (ms) / success rate / avg chain")
    emit(
        format_table(
            [
                "#Clauses",
                "HyQ t", "HyQ ok", "HyQ chain",
                "MM t", "MM ok", "MM chain",
                "P&R t", "P&R ok", "P&R chain",
            ],
            rows,
        )
    )

    # Shape assertions at the largest size every scheme succeeded on.
    small = SIZES[0]
    hy_time = np.mean([t for t, _, _ in results["hyqsat"][small]])
    mm_time = np.mean([t for t, _, _ in results["minorminer"][small]])
    emit(
        f"\nAt {small} clauses: HyQSAT {hy_time * 1e3:.2f} ms vs "
        f"Minorminer-like {mm_time * 1e3:.0f} ms "
        f"({mm_time / max(hy_time, 1e-9):.0f}x; paper: ~9e5x at 250 clauses)"
    )
    assert mm_time > 10 * hy_time
    # HyQSAT embeds everything at every swept size; the baselines
    # eventually fail (capacity knee).
    hy_success = [np.mean([ok for _, ok, _ in results["hyqsat"][s]]) for s in SIZES]
    assert hy_success[0] == 1.0
