"""Table I: iteration counts of classic CDCL vs HyQSAT on the
14-benchmark suite (noise-free device).

The paper reports per-benchmark average / geomean / max / min
iteration reductions (overall average 14.11x, driven by heavy right
tails; several benchmarks have minima below 1).  This bench reproduces
the full table on scaled instances and additionally runs the paper's
warm-up-schedule ablation (Section VI-A: deploying *all* iterations to
QA does not help — AI5 degrades ~20%).
"""

import numpy as np
import pytest

from repro.analysis import format_table, reduction_stats

from benchmarks._harness import (
    emit,
    SUITE_ORDER,
    default_device,
    print_banner,
    reduction_rows,
    run_suite,
)


def test_table1_iteration_reduction(benchmark):
    runs = benchmark.pedantic(
        lambda: run_suite(SUITE_ORDER, problems=3, seed=0),
        rounds=1,
        iterations=1,
    )
    print_banner("Table I — iteration reduction (classic CDCL / HyQSAT)")
    emit(
        format_table(
            [
                "Bench", "Domain", "#Prob", "CDCL it", "HyQSAT it",
                "Avg", "Geo", "Max", "Min", "Paper avg",
            ],
            reduction_rows(runs),
        )
    )
    overall = reduction_stats([r.reduction for r in runs])
    emit(
        f"\nOverall: avg {overall.average:.2f}x  geomean {overall.geomean:.2f}x  "
        f"max {overall.maximum:.2f}x  min {overall.minimum:.2f}x "
        f"(paper: avg 14.11x, geomean 7.56x)"
    )
    # Shape assertions: the hybrid must win on average with the paper's
    # heavy-tailed profile (max >> 1).
    assert overall.maximum > 1.5
    assert overall.average > 0.8


def test_warmup_schedule_ablation(benchmark):
    """Section VI-A: sqrt(K) warm-up vs deploying all iterations to QA."""
    from repro.benchgen import BENCHMARKS
    from repro.core import HyQSatConfig, HyQSatSolver

    spec = BENCHMARKS["AI3"]

    def run_pair():
        rows = []
        for index in range(2):
            formula = spec.generate(index, seed=0)
            sqrtk = HyQSatSolver(
                formula,
                device=default_device(seed=index),
                config=HyQSatConfig(seed=index),
            ).solve()
            always = HyQSatSolver(
                formula,
                device=default_device(seed=index),
                config=HyQSatConfig(seed=index, warmup_iterations=10**9),
            ).solve()
            rows.append((sqrtk.stats.iterations, always.stats.iterations))
        return rows

    rows = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print_banner("Table I ablation — sqrt(K) warm-up vs all-iterations-on-QA (AI3)")
    emit(format_table(["#", "sqrt(K) warm-up", "all on QA"],
                       [[i, a, b] for i, (a, b) in enumerate(rows)]))
    mean_sqrtk = np.mean([a for a, _ in rows])
    mean_always = np.mean([b for _, b in rows])
    emit(f"mean iterations: sqrt(K)={mean_sqrtk:.0f}, all-QA={mean_always:.0f} "
          f"(paper: all-QA costs ~20% more on AI5)")
