"""CDCL engine benchmark: native kernel vs pure-Python reference.

Measures the fast engine (:class:`repro.cdcl.fast.FastCdclSolver`)
against the reference (:class:`repro.cdcl.solver.CdclSolver`) on random
3-SAT instances at the paper's clause ratio, and verifies on every
measured instance that both engines are **bit-identical**: same status,
same model, same stats (conflicts, propagations, decisions, learned
clauses), same per-clause counters.

Three legs:

1. **Propagation throughput** — full solves per instance; the headline
   ``propagation speedup`` is (reference props/s) vs (fast props/s),
   which is what ISSUE 6 gates at >= 10x.
2. **Wall-clock solve speedup** — per-instance ratio of ``solve()``
   times; construction time is reported separately (the incremental
   API amortises it across re-solves).
3. **Incremental re-solve** — a warm fast solver re-solving after
   ``add_clause`` must beat a cold fresh solve of the extended formula.

Run with ``make bench-cdcl`` or::

    PYTHONPATH=src python -m benchmarks.bench_cdcl --quick

Writes ``BENCH_cdcl.json`` (see ``--output``) and exits non-zero when
any identity check fails or the propagation speedup is below 10x
(skipped — reported as such — when no C compiler is available).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

import numpy as np

from repro.benchgen.random_ksat import random_3sat
from repro.cdcl.fast import FastCdclSolver, fast_engine_supports
from repro.cdcl.solver import CdclSolver, SolverConfig

#: (num_vars, num_clauses, seed) — ratio ~4.26, the hard region.
INSTANCES_QUICK = [(100, 426, 0), (100, 426, 1), (125, 532, 0)]
INSTANCES_FULL = INSTANCES_QUICK + [
    (150, 639, 0),
    (150, 639, 3),
    (175, 745, 1),
    (200, 852, 2),
]


def _identical(ref: CdclSolver, fast: FastCdclSolver, r1, r2) -> bool:
    if r1.status != r2.status or r1.stats.as_dict() != r2.stats.as_dict():
        return False
    if (r1.model is None) != (r2.model is None):
        return False
    if r1.model is not None and r1.model.frozen() != r2.model.frozen():
        return False
    return (
        list(ref.counters.propagation_visits)
        == [int(x) for x in fast.counters.propagation_visits]
        and list(ref.counters.conflict_visits)
        == [int(x) for x in fast.counters.conflict_visits]
        and list(ref.counters.activity)
        == [float(x) for x in fast.counters.activity]
    )


def bench_engines(instances, seed: int) -> List[Dict]:
    rows = []
    for num_vars, num_clauses, inst_seed in instances:
        formula = random_3sat(
            num_vars, num_clauses, np.random.default_rng(inst_seed)
        )
        config = SolverConfig(seed=seed)
        timings = {}
        solvers = {}
        results = {}
        build_timings = {}
        for name, cls in (("reference", CdclSolver), ("fast", FastCdclSolver)):
            start = time.perf_counter()
            solver = cls(formula, config=config)
            build_timings[name] = time.perf_counter() - start
            start = time.perf_counter()
            result = solver.solve()
            timings[name] = time.perf_counter() - start
            solvers[name] = solver
            results[name] = result
        ref_result = results["reference"]
        identical = _identical(
            solvers["reference"], solvers["fast"], ref_result, results["fast"]
        )
        props = ref_result.stats.propagations
        rows.append(
            {
                "num_vars": num_vars,
                "num_clauses": num_clauses,
                "instance_seed": inst_seed,
                "status": ref_result.status.value,
                "conflicts": ref_result.stats.conflicts,
                "propagations": props,
                "reference_ms": round(timings["reference"] * 1e3, 2),
                "fast_ms": round(timings["fast"] * 1e3, 3),
                "reference_build_ms": round(build_timings["reference"] * 1e3, 3),
                "fast_build_ms": round(build_timings["fast"] * 1e3, 3),
                "reference_props_per_s": round(props / timings["reference"]),
                "fast_props_per_s": round(props / timings["fast"]),
                "speedup": round(timings["reference"] / timings["fast"], 2),
                "identical": identical,
            }
        )
    return rows


def bench_incremental(seed: int) -> Dict:
    """Warm incremental re-solve vs cold fresh solve of formula + delta."""
    base = random_3sat(125, 500, np.random.default_rng(seed))
    delta = random_3sat(125, 32, np.random.default_rng(seed + 1))
    config = SolverConfig(seed=seed)

    warm = FastCdclSolver(base, config=config)
    warm.solve()  # learn on the base formula
    start = time.perf_counter()
    for clause in delta:
        warm.add_clause(clause)
    warm_result = warm.solve()
    warm_seconds = time.perf_counter() - start

    from repro.sat.cnf import CNF

    combined = CNF(clauses=list(base) + list(delta), num_vars=125)
    start = time.perf_counter()
    cold_result = FastCdclSolver(combined, config=config).solve()
    cold_seconds = time.perf_counter() - start

    agree = warm_result.status == cold_result.status
    if agree and warm_result.model is not None:
        agree = warm_result.model.satisfies(combined)
    return {
        "num_vars": 125,
        "base_clauses": 500,
        "delta_clauses": 32,
        "status": cold_result.status.value,
        "warm_ms": round(warm_seconds * 1e3, 3),
        "cold_ms": round(cold_seconds * 1e3, 3),
        "speedup": round(cold_seconds / warm_seconds, 2)
        if warm_seconds > 0
        else 0.0,
        "statuses_agree": bool(agree),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small instance set, < 30 s"
    )
    parser.add_argument("--output", default="BENCH_cdcl.json")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    available, reason = fast_engine_supports(None)
    if not available:
        report = {
            "quick": args.quick,
            "seed": args.seed,
            "fast_engine_available": False,
            "skip_reason": reason,
            "passed": True,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"fast engine unavailable ({reason}); wrote {args.output}")
        return 0

    instances = INSTANCES_QUICK if args.quick else INSTANCES_FULL
    rows = bench_engines(instances, args.seed)
    for row in rows:
        print(
            "uf{num_vars} seed={instance_seed}: {status} "
            "conflicts={conflicts} reference {reference_ms} ms, "
            "fast {fast_ms} ms, speedup {speedup}x "
            "identical={identical}".format(**row)
        )

    incremental_row = bench_incremental(args.seed)
    print(
        "incremental +{delta_clauses} clauses: warm {warm_ms} ms vs "
        "cold {cold_ms} ms ({speedup}x), "
        "statuses_agree={statuses_agree}".format(**incremental_row)
    )

    all_identical = all(r["identical"] for r in rows)
    # Propagation-rate speedup over the whole suite (total props / total
    # seconds per engine), the gated headline number.
    total_props = sum(r["propagations"] for r in rows)
    ref_seconds = sum(r["reference_ms"] for r in rows) / 1e3
    fast_seconds = sum(r["fast_ms"] for r in rows) / 1e3
    propagation_speedup = (
        (total_props / fast_seconds) / (total_props / ref_seconds)
        if fast_seconds > 0
        else 0.0
    )
    meets_10x = propagation_speedup >= 10.0
    passed = all_identical and meets_10x and incremental_row["statuses_agree"]
    report = {
        "quick": args.quick,
        "seed": args.seed,
        "fast_engine_available": True,
        "instances": rows,
        "incremental": incremental_row,
        "all_identical": all_identical,
        "propagation_speedup": round(propagation_speedup, 2),
        "meets_10x": meets_10x,
        "passed": passed,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {args.output}  passed={passed} "
        f"propagation_speedup={report['propagation_speedup']}x "
        f"identical={all_identical}"
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
