"""Figure 5: clause visit frequency during CDCL search.

The paper profiles 100 random 3-SAT problems (UF200-860) and finds the
top 1/5 of clauses take 42% of all visits (33% propagation + 9%
conflict resolving), with propagation and conflict visits positively
correlated.  Scaled to UF75 here; the quintile shares and the
correlation are the reproduced series.
"""

import numpy as np
import pytest

from repro.analysis import format_table, visit_profile
from repro.benchgen import random_3sat
from repro.cdcl.solver import CdclSolver

from benchmarks._harness import emit, print_banner

NUM_PROBLEMS = 20
NUM_VARS, NUM_CLAUSES = 75, 322


def test_fig5_visit_quintiles(benchmark):
    def run_all():
        rng = np.random.default_rng(0)
        profiles = []
        correlations = []
        for _ in range(NUM_PROBLEMS):
            formula = random_3sat(NUM_VARS, NUM_CLAUSES, rng)
            solver = CdclSolver(formula)
            solver.solve()
            profiles.append(visit_profile(solver.counters))
            prop = np.asarray(solver.counters.propagation_visits, dtype=float)
            conf = np.asarray(solver.counters.conflict_visits, dtype=float)
            if prop.std() > 0 and conf.std() > 0:
                correlations.append(float(np.corrcoef(prop, conf)[0, 1]))
        return profiles, correlations

    profiles, correlations = benchmark.pedantic(run_all, rounds=1, iterations=1)

    prop_shares = np.mean([p.propagation_share for p in profiles], axis=0)
    conf_shares = np.mean([p.conflict_share for p in profiles], axis=0)
    rows = [
        [
            f"Top {20 * (i + 1) - 19}-{20 * (i + 1)}%",
            f"{prop_shares[i]:.1%}",
            f"{conf_shares[i]:.1%}",
            f"{prop_shares[i] + conf_shares[i]:.1%}",
        ]
        for i in range(5)
    ]
    print_banner("Figure 5 — clause visit shares by activity quintile")
    emit(format_table(["Quintile", "Propagation", "Conflict", "Total"], rows))
    top_total = prop_shares[0] + conf_shares[0]
    emit(
        f"\nTop quintile takes {top_total:.1%} of visits "
        f"(paper: 42% = 33% propagation + 9% conflict)"
    )
    emit(
        f"propagation/conflict visit correlation: {np.mean(correlations):.2f} "
        f"(paper: positively correlated)"
    )
    assert top_total > 0.30, "visits must concentrate in the top quintile"
    assert np.mean(correlations) > 0.2
