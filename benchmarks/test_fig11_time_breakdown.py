"""Figure 11: time spent in each part of HyQSAT.

The paper decomposes HyQSAT's end-to-end time into frontend (2.2%), QA
execution, backend, and remaining CDCL (the warm-up stage overall is
41.11%); BP stands out with ~40% QA time because its total iteration
count is tiny.
"""

import numpy as np
import pytest

from repro.analysis import format_table, measure_iteration_cost

from benchmarks._harness import (
    emit,
    SUITE_ORDER,
    group_by_benchmark,
    print_banner,
    run_suite,
)


def test_fig11_time_breakdown(benchmark):
    runs = benchmark.pedantic(
        lambda: run_suite(SUITE_ORDER, problems=3, seed=0),
        rounds=1,
        iterations=1,
    )
    per_iteration = measure_iteration_cost(trials=2)

    rows = []
    warmup_shares = []
    for name, group in group_by_benchmark(runs).items():
        shares = np.mean(
            [
                list(r.hyqsat.time_breakdown(per_iteration).shares().values())
                for r in group
            ],
            axis=0,
        )
        frontend, qa, backend, cdcl = shares
        warmup_shares.append(frontend + qa + backend)
        rows.append(
            [
                name,
                f"{frontend:.1%}",
                f"{qa:.1%}",
                f"{backend:.1%}",
                f"{cdcl:.1%}",
            ]
        )
    print_banner("Figure 11 — HyQSAT end-to-end time breakdown")
    emit(format_table(["Bench", "Frontend", "QA", "Backend", "CDCL"], rows))
    emit(
        f"\nMean warm-up share (frontend+QA+backend): {np.mean(warmup_shares):.1%} "
        f"(paper: 41.11%)"
    )
    # Every benchmark must attribute some time to the CDCL part.
    assert all(float(r[4].rstrip('%')) >= 0 for r in rows)
