"""Observability overhead benchmark: the disabled path must be free.

The observability layer is opt-in; every hot-path touch point guards on
``Observability.enabled`` (one attribute load + branch) or on the
shared null tracer.  This benchmark pins that promise:

1. **Disabled path** — the exact 100-variable cache-on solve measured
   by ``benchmarks.bench_hotpath`` (same formula/device/config seeds),
   run with the default ``DISABLED`` bundle, must stay within 2% of
   the ``solve_acceptance.cache_on_seconds`` baseline recorded in
   ``BENCH_hotpath.json``.  Best-of-rounds is compared, so scheduler
   noise inflates neither side.
2. **Instrumented path** — the same solve with tracing + metrics on
   (in-memory sink), reported for context; full instrumentation is
   allowed to cost, it just has to be *opt-in*.

Run with ``make bench-obs`` or::

    PYTHONPATH=src python -m benchmarks.bench_observability --quick

Writes ``BENCH_observability.json`` and exits non-zero when the
disabled-path overhead exceeds the budget.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.annealer.device import AnnealerDevice
from repro.benchgen.random_ksat import random_3sat
from repro.core.config import HyQSatConfig
from repro.core.hyqsat import HyQSatSolver
from repro.observability import Observability
from repro.topology.chimera import ChimeraGraph

#: Allowed disabled-path slowdown vs the hot-path baseline.
OVERHEAD_BUDGET = 0.02


def _solve_once(observability: Optional[Observability], seed: int) -> float:
    """One timed solve of the bench_hotpath acceptance workload."""
    formula = random_3sat(100, 426, np.random.default_rng(1))
    device = AnnealerDevice(ChimeraGraph(16, 16, 4), seed=seed)
    config = HyQSatConfig(seed=seed, frontend_cache_size=64)
    kwargs = {} if observability is None else {"observability": observability}
    start = time.perf_counter()
    result = HyQSatSolver(formula, device=device, config=config, **kwargs).solve()
    elapsed = time.perf_counter() - start
    assert result.status.value in ("sat", "unsat", "unknown")
    return elapsed


def _best_of(rounds: int, make_obs, seed: int) -> Dict:
    samples: List[float] = []
    for _ in range(rounds):
        samples.append(_solve_once(make_obs() if make_obs else None, seed))
    return {
        "rounds": rounds,
        "seconds": [round(s, 3) for s in samples],
        "best_seconds": round(min(samples), 3),
        "median_seconds": round(float(np.median(samples)), 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="3 rounds per mode")
    parser.add_argument("--output", default="BENCH_observability.json")
    parser.add_argument(
        "--baseline",
        default="BENCH_hotpath.json",
        help="hot-path report holding solve_acceptance.cache_on_seconds",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)["solve_acceptance"]["cache_on_seconds"]
    except (OSError, KeyError) as error:
        print(f"error: cannot read baseline from {args.baseline}: {error}")
        print("run 'make bench' first to produce BENCH_hotpath.json")
        return 2

    rounds = 3 if args.quick else 5
    disabled = _best_of(rounds, None, args.seed)
    instrumented = _best_of(
        rounds, lambda: Observability.tracing(metrics=True), args.seed
    )

    overhead = disabled["best_seconds"] / baseline - 1.0
    instrumented_cost = (
        instrumented["best_seconds"] / disabled["best_seconds"] - 1.0
    )
    passed = overhead <= OVERHEAD_BUDGET

    print(f"baseline (BENCH_hotpath cache_on_seconds): {baseline:.3f}s")
    print(
        f"disabled path: best {disabled['best_seconds']:.3f}s "
        f"(overhead {overhead:+.1%}, budget {OVERHEAD_BUDGET:.0%})"
    )
    print(
        f"instrumented (trace+metrics): best {instrumented['best_seconds']:.3f}s "
        f"({instrumented_cost:+.1%} vs disabled)"
    )
    print("PASS" if passed else "FAIL: disabled-path overhead exceeds budget")

    report = {
        "workload": {"num_vars": 100, "num_clauses": 426, "cache_size": 64},
        "quick": args.quick,
        "seed": args.seed,
        "baseline_seconds": baseline,
        "disabled": disabled,
        "instrumented": instrumented,
        "disabled_overhead": round(overhead, 4),
        "instrumented_overhead_vs_disabled": round(instrumented_cost, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "passed": passed,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
