"""Table III: HyQSAT scalability over Chimera grid sizes.

The paper simulates 16x16 through 64x64 grids with 10% readout bit
flips: larger grids embed (nearly) all clauses at once, collapsing the
iteration count (AI reductions jump from ~4-6x to >340x at 24x24+).
Scaled here: UF50-UF100 instances on C8/C16/C24 grids — the knee where
the grid first fits the whole formula shows the same jump.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.annealer import AnnealerDevice, NoiseModel
from repro.benchgen import BENCHMARKS
from repro.cdcl import minisat_solver
from repro.core import HyQSatConfig, HyQSatSolver
from repro.topology import ChimeraGraph

from benchmarks._harness import emit, print_banner

GRIDS = (8, 16, 24)
NAMES = ("AI1", "AI2", "AI3")
PROBLEMS = 2


def test_table3_grid_scaling(benchmark):
    def run_all():
        table = {}
        for name in NAMES:
            spec = BENCHMARKS[name]
            base_iters = []
            per_grid = {g: [] for g in GRIDS}
            for index in range(PROBLEMS):
                formula = spec.generate(index, seed=0)
                base = minisat_solver(formula, seed=0).solve()
                base_iters.append(base.stats.iterations)
                for grid in GRIDS:
                    device = AnnealerDevice(
                        ChimeraGraph(grid, grid, 4),
                        noise=NoiseModel.bit_flip(0.10),
                        seed=index,
                    )
                    hyq = HyQSatSolver(
                        formula, device=device, config=HyQSatConfig(seed=index)
                    ).solve()
                    per_grid[grid].append(hyq.stats.iterations)
            table[name] = (base_iters, per_grid)
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (base_iters, per_grid) in table.items():
        row = [name, f"{np.mean(base_iters):.0f}"]
        for grid in GRIDS:
            reduction = np.mean(base_iters) / max(1.0, np.mean(per_grid[grid]))
            row.append(f"{reduction:.2f}")
        rows.append(row)
    print_banner("Table III — iteration reduction vs grid size (10% bit flips)")
    emit(
        format_table(
            ["Bench", "CDCL it"] + [f"{g}x{g} grid" for g in GRIDS], rows
        )
    )
    emit("\nPaper: AI reductions grow from ~4-6x (16x16) to >340x (24x24+),")
    emit("as the larger grid embeds (nearly) the whole instance at once.")

    # Shape: the largest grid should not be worse than the smallest.
    for name, (base_iters, per_grid) in table.items():
        small = np.mean(per_grid[GRIDS[0]])
        large = np.mean(per_grid[GRIDS[-1]])
        assert large <= small * 3, name
