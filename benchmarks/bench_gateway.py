"""Gateway benchmark: fleet throughput scaling + wire bit-identity.

Two gates over one seeded workload (uniform random 3-SAT near the
threshold):

1. **Bit-identity over the wire** — every job submitted through a
   real :class:`~repro.gateway.server.GatewayServer` socket must
   produce the same solver outcome as a solo
   :func:`~repro.service.jobs.run_job` of the identical spec pinned
   to the placement the fleet router chose (the ``routed`` event
   names it).  The network tier may add latency, never different
   answers.
2. **Fleet scale-out throughput** — the measured per-job profiles
   replay through :func:`~repro.gateway.des.simulate_fleet_makespan`
   at m = 1/2/4 devices (each device bringing its own
   ``WORKERS_PER_DEVICE`` host workers, speed factors drawn from the
   calibration-drift model).  Modelled throughput at m=4 must be at
   least ``FLEET_SPEEDUP_FLOOR``x the m=1 deployment.

Writes ``BENCH_gateway.json`` and exits non-zero if either gate
fails.  Run with ``make bench-gateway`` or::

    PYTHONPATH=src python -m benchmarks.bench_gateway --quick
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
from typing import Dict, List

import numpy as np

from repro.annealer.faults import FaultModel
from repro.benchgen.random_ksat import random_3sat
from repro.gateway.client import GatewayClient
from repro.gateway.des import QpuLane, drift_speed_factors, simulate_fleet_makespan
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.sat import to_dimacs
from repro.service import JobSpec, run_job

#: Required modelled throughput gain from 1 device to 4 devices.
FLEET_SPEEDUP_FLOOR = 1.7

#: Host workers accompanying each fleet device in the scale-out model.
WORKERS_PER_DEVICE = 2

#: Outcome fields compared for bit-identity (as bench_service.py).
SOLVER_FIELDS = (
    "status", "model", "iterations", "conflicts",
    "qa_calls", "qpu_time_us",
)

DEVICE_COUNTS = (1, 2, 4)

#: Drift channel for the heterogeneous-calibration speed factors.
DRIFT_FAULTS = FaultModel(drift_onset_prob=0.3)


def build_jobs(num_jobs: int, num_vars: int, seed: int) -> List[Dict]:
    clauses = int(round(num_vars * 4.3))
    jobs = []
    for index in range(num_jobs):
        formula = random_3sat(
            num_vars, clauses, np.random.default_rng(seed + index)
        )
        jobs.append(
            {"id": f"job{index:02d}", "dimacs": to_dimacs(formula), "seed": index}
        )
    return jobs


def run_gateway(jobs: List[Dict], fleet: str, workers: int):
    """Submit every job through a real socket; return (outcomes,
    placements, stats, wall_seconds)."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    async def make() -> GatewayServer:
        server = GatewayServer(
            GatewayConfig(port=0, workers=workers, fleet=fleet, burst=1000)
        )
        await server.start()
        return server

    server = asyncio.run_coroutine_threadsafe(make(), loop).result(30)
    placements: Dict[str, Dict] = {}
    start = time.perf_counter()
    try:
        with GatewayClient(port=server.port, timeout_s=600.0) as client:
            for job in jobs:
                client.submit(job)

            def watch(message: Dict) -> None:
                if message.get("event") == "routed":
                    placements[message["id"]] = message["attrs"]

            outcomes = client.drain([j["id"] for j in jobs], on_message=watch)
        wall_s = time.perf_counter() - start
        stats = server.stats
    finally:
        asyncio.run_coroutine_threadsafe(server.shutdown(), loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(5)
        loop.close()
    return outcomes, placements, stats, wall_s


def solo_view(jobs: List[Dict], placements: Dict[str, Dict]) -> Dict[str, Dict]:
    """Replay each job solo with the routed placement pinned."""
    baseline = {}
    for job in jobs:
        placed = placements[job["id"]]
        outcome = run_job(
            JobSpec(
                job_id=job["id"],
                dimacs=job["dimacs"],
                seed=job["seed"],
                topology=placed["topology"],
                grid=placed["grid"],
            )
        )
        baseline[job["id"]] = {
            name: getattr(outcome, name) for name in SOLVER_FIELDS
        }
    return baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="8 jobs of 20 vars")
    parser.add_argument("--jobs", type=int, default=None, help="job count")
    parser.add_argument("--vars", type=int, default=None, help="variables per job")
    parser.add_argument("--seed", type=int, default=300)
    parser.add_argument("--fleet", default="chimera:8,pegasus:8,chimera:16")
    parser.add_argument("--output", default="BENCH_gateway.json")
    args = parser.parse_args(argv)

    num_jobs = args.jobs or (8 if args.quick else 12)
    num_vars = args.vars or (20 if args.quick else 30)
    jobs = build_jobs(num_jobs, num_vars, args.seed)

    # -- gateway run over a real socket ---------------------------------
    outcomes, placements, stats, wall_s = run_gateway(
        jobs, args.fleet, workers=WORKERS_PER_DEVICE
    )
    missing = [j["id"] for j in jobs if j["id"] not in placements]
    if missing:
        print(f"FAIL: no routed event for {missing}", file=sys.stderr)
        return 1

    # -- solo replays with the routed placement pinned ------------------
    baseline = solo_view(jobs, placements)
    identical = all(
        {name: outcomes[job_id].get(name) for name in SOLVER_FIELDS}
        == baseline[job_id]
        for job_id in baseline
    )

    # -- fleet scale-out on the modelled clock --------------------------
    profiles = [
        (
            outcomes[j["id"]].get("run_seconds", 0.0),
            outcomes[j["id"]].get("qa_calls", 0),
            outcomes[j["id"]].get("qpu_time_us", 0.0),
        )
        for j in jobs
    ]
    fleet_rows = []
    for devices in DEVICE_COUNTS:
        factors = drift_speed_factors(devices, DRIFT_FAULTS, seed=args.seed)
        lanes = [
            QpuLane(f"qpu{i}", speed=factor)
            for i, factor in enumerate(factors)
        ]
        makespan_s = simulate_fleet_makespan(
            profiles, workers=WORKERS_PER_DEVICE * devices, lanes=lanes
        )
        fleet_rows.append(
            {
                "devices": devices,
                "workers": WORKERS_PER_DEVICE * devices,
                "speed_factors": [round(f, 4) for f in factors],
                "modelled_makespan_s": round(makespan_s, 3),
                "jobs_per_s": round(num_jobs / makespan_s, 3),
            }
        )
    base_rate = fleet_rows[0]["jobs_per_s"]
    for row in fleet_rows:
        row["speedup_vs_1_device"] = round(row["jobs_per_s"] / base_rate, 3)

    at_4 = next(r for r in fleet_rows if r["devices"] == 4)
    report = {
        "workload": {
            "jobs": num_jobs,
            "vars_per_job": num_vars,
            "seed": args.seed,
            "fleet": args.fleet,
            "statuses": sorted(
                {o.get("status") for o in outcomes.values() if o.get("status")}
            ),
        },
        "gateway": {
            "measured_wall_s": round(wall_s, 3),
            "jobs": dict(stats.jobs),
            "routed_devices": sorted(
                {p["device"] for p in placements.values()}
            ),
            "routing_fallbacks": sum(
                1 for p in placements.values() if not p["fits"]
            ),
            "bit_identical": identical,
        },
        "fleet_scaling": fleet_rows,
        "acceptance": {
            "fleet_speedup_floor": FLEET_SPEEDUP_FLOOR,
            "speedup_at_4_devices": at_4["speedup_vs_1_device"],
            "bit_identical_all": identical,
            "pass": bool(
                identical
                and at_4["speedup_vs_1_device"] >= FLEET_SPEEDUP_FLOOR
            ),
        },
    }

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    print(
        f"gateway: {num_jobs} jobs over the wire in {wall_s:.2f}s, "
        f"routed to {report['gateway']['routed_devices']}, "
        f"bit_identical={identical}"
    )
    for row in fleet_rows:
        print(
            f"{row['devices']} device(s) x {WORKERS_PER_DEVICE} workers: "
            f"{row['jobs_per_s']:.2f} jobs/s modelled "
            f"({row['speedup_vs_1_device']:.2f}x)"
        )
    print(f"wrote {args.output}")
    if not report["acceptance"]["pass"]:
        print(
            f"FAIL: need >= {FLEET_SPEEDUP_FLOOR}x at 4 devices with "
            "bit-identical wire results",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
