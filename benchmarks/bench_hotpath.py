"""QA hot-path benchmark: batched replica annealing + frontend cache.

Measures the three legs of the hot-path optimisation against their
reference implementations, on the same workload shape the hybrid
solver produces (a ~120-clause residual embedded on the C16 lattice):

1. **Sampler throughput** — the per-read restart loop
   (``batch_reads=False``, the original reference dynamics) against
   the vectorised all-replica batch, for several
   ``num_reads x num_restarts`` shapes.
2. **Frontend compile cache** — cold ``Frontend.prepare`` against a
   cache hit for the identical (queue, trail) pair.
3. **Full-solve acceptance** — a 100-variable random 3-SAT instance
   solved cache-on and cache-off must agree in status (and model
   validity), and the cached run must actually hit.

Run with ``make bench`` or::

    PYTHONPATH=src python -m benchmarks.bench_hotpath --quick

Writes ``BENCH_hotpath.json`` (see ``--output``) and exits non-zero if
the batched sampler is slower than the per-read baseline on any
measured shape, or if the acceptance checks fail.  Timings are medians
over several rounds; sampled bits and solver outcomes are fully
deterministic for a fixed ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.annealer.device import AnnealerDevice
from repro.annealer.sampler import SamplerConfig, SimulatedAnnealingSampler
from repro.benchgen.random_ksat import random_3sat
from repro.core.config import HyQSatConfig
from repro.core.frontend import Frontend
from repro.core.hyqsat import HyQSatSolver
from repro.topology.chimera import ChimeraGraph

#: ``num_reads x num_restarts`` shapes measured (all >= 8 replicas,
#: the acceptance floor for the 3x speedup criterion).
SHAPES_QUICK = [(8, 1), (4, 4)]
SHAPES_FULL = SHAPES_QUICK + [(8, 2), (8, 4)]


def _median_seconds(fn: Callable[[], object], rounds: int, reps: int) -> float:
    """Median over ``rounds`` of the mean time of ``reps`` calls."""
    fn()  # warm-up outside the timed region
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - start) / reps)
    return float(np.median(samples))


def bench_sampler(problem, shapes, rounds: int, reps: int, seed: int) -> List[Dict]:
    results = []
    for num_reads, num_restarts in shapes:
        timings = {}
        for batch in (False, True):
            config = SamplerConfig(num_restarts=num_restarts, batch_reads=batch)
            sampler = SimulatedAnnealingSampler(config, seed=seed)
            timings[batch] = _median_seconds(
                lambda: sampler.sample(problem, num_reads=num_reads), rounds, reps
            )
        replicas = num_reads * num_restarts
        sweeps = SamplerConfig().num_sweeps * replicas
        results.append(
            {
                "num_reads": num_reads,
                "num_restarts": num_restarts,
                "replicas": replicas,
                "per_read_ms": round(timings[False] * 1e3, 3),
                "batched_ms": round(timings[True] * 1e3, 3),
                "per_read_sweeps_per_s": round(sweeps / timings[False]),
                "batched_sweeps_per_s": round(sweeps / timings[True]),
                "speedup": round(timings[False] / timings[True], 3),
            }
        )
    return results


def bench_frontend_cache(formula, hardware, queue, rounds: int) -> Dict:
    miss_samples, hit_samples = [], []
    for _ in range(rounds):
        frontend = Frontend(formula, hardware, chain_strength=2.0)
        start = time.perf_counter()
        frontend.prepare(queue)
        miss_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        frontend.prepare(queue)
        hit_samples.append(time.perf_counter() - start)
        assert frontend.cache_hits == 1 and frontend.cache_misses == 1
    miss = float(np.median(miss_samples))
    hit = float(np.median(hit_samples))
    return {
        "miss_ms": round(miss * 1e3, 3),
        "hit_ms": round(hit * 1e3, 4),
        "speedup": round(miss / hit, 1),
    }


def bench_solve_acceptance(seed: int) -> Dict:
    formula = random_3sat(100, 426, np.random.default_rng(1))
    outcomes = {}
    for cache_size in (64, 0):
        device = AnnealerDevice(ChimeraGraph(16, 16, 4), seed=seed)
        config = HyQSatConfig(seed=seed, frontend_cache_size=cache_size)
        start = time.perf_counter()
        result = HyQSatSolver(formula, device=device, config=config).solve()
        outcomes[cache_size] = (result, time.perf_counter() - start)
    on, on_seconds = outcomes[64]
    off, off_seconds = outcomes[0]
    model_valid = (not on.is_sat) or (
        on.model.satisfies(formula) and off.model.satisfies(formula)
    )
    return {
        "num_vars": 100,
        "num_clauses": 426,
        "status": on.status.value,
        "statuses_match": on.status is off.status,
        "model_valid": bool(model_valid),
        "qa_calls": on.hybrid.qa_calls,
        "cache_hits": on.hybrid.frontend_cache_hits,
        "cache_misses": on.hybrid.frontend_cache_misses,
        "hit_rate": round(on.hybrid.frontend_cache_hit_rate, 4),
        "cache_on_seconds": round(on_seconds, 3),
        "cache_off_seconds": round(off_seconds, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small shape set, < 60 s total"
    )
    parser.add_argument("--output", default="BENCH_hotpath.json")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    # The hybrid solver's workload shape: a mid-size residual embedded
    # on the 2000Q-sized lattice.
    formula = random_3sat(60, 250, np.random.default_rng(7))
    hardware = ChimeraGraph(16, 16, 4)
    queue = list(range(120))
    problem = Frontend(formula, hardware, chain_strength=2.0).prepare(queue)
    problem = problem.request.compiled
    print(f"workload: 60 vars / 250 clauses, queue 120, {problem.num_qubits} qubits")

    shapes = SHAPES_QUICK if args.quick else SHAPES_FULL
    rounds, reps = (3, 2) if args.quick else (5, 3)
    sampler_rows = bench_sampler(problem, shapes, rounds, reps, args.seed)
    for row in sampler_rows:
        print(
            "sampler reads={num_reads} restarts={num_restarts}: "
            "per-read {per_read_ms} ms, batched {batched_ms} ms, "
            "speedup {speedup}x".format(**row)
        )

    cache_row = bench_frontend_cache(formula, hardware, queue, rounds)
    print(
        "frontend cache: miss {miss_ms} ms, hit {hit_ms} ms, "
        "speedup {speedup}x".format(**cache_row)
    )

    solve_row = bench_solve_acceptance(0)
    print(
        "solve 100v/426c: status={status} statuses_match={statuses_match} "
        "cache hits={cache_hits}/{qa_calls} calls "
        "(hit rate {hit_rate})".format(**solve_row)
    )

    batched_never_slower = all(r["speedup"] >= 1.0 for r in sampler_rows)
    meets_3x = all(r["speedup"] >= 3.0 for r in sampler_rows)
    passed = (
        batched_never_slower
        and solve_row["statuses_match"]
        and solve_row["model_valid"]
        and solve_row["cache_hits"] > 0
    )
    report = {
        "workload": {
            "num_vars": 60,
            "num_clauses": 250,
            "queue_clauses": 120,
            "num_qubits": problem.num_qubits,
            "hardware": "chimera-16x16x4",
        },
        "quick": args.quick,
        "seed": args.seed,
        "sampler": sampler_rows,
        "frontend_cache": cache_row,
        "solve_acceptance": solve_row,
        "batched_never_slower": batched_never_slower,
        "meets_3x": meets_3x,
        "passed": passed,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}  passed={passed} meets_3x={meets_3x}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
