"""Solver-service throughput benchmark: jobs/sec vs worker count.

Runs one fixed job set (uniform random 3-SAT near the threshold,
seeded) three ways:

1. **Serial baseline** — each job solo through
   :func:`repro.service.jobs.run_job`, exactly what a ``hyqsat solve``
   loop would do; its per-job profile ``(cpu_seconds, qa_calls,
   qpu_time_us)`` feeds the service-clock model.
2. **Service runs** — the same specs through
   :func:`repro.service.run_batch` at 1/2/4 thread workers, asserting
   every outcome stays **bit-identical** to the serial baseline (the
   service's core contract; a throughput number that changed the
   results would be meaningless).
3. **Modelled service clock** — wall-clock parallel speedup is not
   measurable on a single-core container, so throughput is reported on
   the modelled clock: :func:`repro.service.simulate_makespan` replays
   the measured profiles through *k* worker lanes sharing one QPU lane
   (the repo's modelled-time convention — measured CPU components,
   modelled device time; see docs/SERVICE.md).

Writes ``BENCH_service.json`` and exits non-zero unless modelled
throughput at 4 workers is at least ``SPEEDUP_FLOOR``× the serial
baseline and every service run was bit-identical.

Run with ``make bench-service`` or::

    PYTHONPATH=src python -m benchmarks.bench_service --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

import numpy as np

from repro.benchgen.random_ksat import random_3sat
from repro.sat import to_dimacs
from repro.service import JobSpec, run_batch, run_job, simulate_makespan

#: Required modelled speedup at 4 workers over the serial baseline.
SPEEDUP_FLOOR = 2.0

#: Outcome fields compared for bit-identity.
SOLVER_FIELDS = (
    "status", "model", "iterations", "conflicts",
    "qa_calls", "qpu_time_us",
)

WORKER_COUNTS = (1, 2, 4)


def build_specs(num_jobs: int, num_vars: int, seed: int) -> List[JobSpec]:
    clauses = int(round(num_vars * 4.3))
    specs = []
    for index in range(num_jobs):
        formula = random_3sat(
            num_vars, clauses, np.random.default_rng(seed + index)
        )
        specs.append(
            JobSpec(
                job_id=f"job{index:02d}",
                dimacs=to_dimacs(formula),
                seed=index,
            )
        )
    return specs


def solver_view(outcome) -> Dict:
    return {name: getattr(outcome, name) for name in SOLVER_FIELDS}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="8 jobs of 20 vars")
    parser.add_argument("--jobs", type=int, default=None, help="job count")
    parser.add_argument("--vars", type=int, default=None, help="variables per job")
    parser.add_argument("--seed", type=int, default=100)
    parser.add_argument("--output", default="BENCH_service.json")
    args = parser.parse_args(argv)

    num_jobs = args.jobs or (8 if args.quick else 12)
    num_vars = args.vars or (20 if args.quick else 30)
    specs = build_specs(num_jobs, num_vars, args.seed)

    # -- serial baseline ------------------------------------------------
    serial_start = time.perf_counter()
    baseline = {spec.job_id: run_job(spec) for spec in specs}
    serial_wall_s = time.perf_counter() - serial_start
    profiles = [
        (o.run_seconds, o.qa_calls, o.qpu_time_us) for o in baseline.values()
    ]
    serial_makespan_s = simulate_makespan(profiles, workers=1)
    serial_jobs_per_s = num_jobs / serial_makespan_s

    report = {
        "workload": {
            "jobs": num_jobs,
            "vars_per_job": num_vars,
            "seed": args.seed,
            "statuses": sorted(
                {o.status for o in baseline.values() if o.status}
            ),
        },
        "serial": {
            "wall_seconds": round(serial_wall_s, 3),
            "modelled_makespan_s": round(serial_makespan_s, 3),
            "jobs_per_s": round(serial_jobs_per_s, 3),
            "qpu_time_us_total": round(
                sum(o.qpu_time_us for o in baseline.values()), 1
            ),
        },
        "service": [],
    }

    # -- service runs at each worker count ------------------------------
    all_identical = True
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        outcomes, stats = run_batch(specs, workers=workers, pool_mode="thread")
        wall_s = time.perf_counter() - start
        identical = all(
            solver_view(o) == solver_view(baseline[o.job_id])
            for o in outcomes
        )
        all_identical = all_identical and identical
        makespan_s = simulate_makespan(profiles, workers=workers)
        report["service"].append(
            {
                "workers": workers,
                "bit_identical": identical,
                "measured_wall_s": round(wall_s, 3),
                "modelled_makespan_s": round(makespan_s, 3),
                "jobs_per_s": round(num_jobs / makespan_s, 3),
                "speedup_vs_serial": round(serial_makespan_s / makespan_s, 3),
                "qpu_grants": stats.qpu_grants,
                "qpu_busy_us": round(stats.qpu_busy_us, 1),
            }
        )

    at_4 = next(r for r in report["service"] if r["workers"] == 4)
    report["acceptance"] = {
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_at_4_workers": at_4["speedup_vs_serial"],
        "bit_identical_all": all_identical,
        "pass": bool(
            all_identical and at_4["speedup_vs_serial"] >= SPEEDUP_FLOOR
        ),
    }

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    print(f"serial: {serial_jobs_per_s:.2f} jobs/s (modelled)")
    for row in report["service"]:
        print(
            f"{row['workers']} worker(s): {row['jobs_per_s']:.2f} jobs/s "
            f"modelled ({row['speedup_vs_serial']:.2f}x), "
            f"bit_identical={row['bit_identical']}"
        )
    print(f"wrote {args.output}")
    if not report["acceptance"]["pass"]:
        print(
            f"FAIL: need >= {SPEEDUP_FLOOR}x at 4 workers with identical "
            "results",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
