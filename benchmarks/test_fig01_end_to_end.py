"""Figure 1: end-to-end time to solve one 3-SAT problem
(128 variables, 150 clauses) under three approaches.

The paper's bar chart: classic CDCL ~8000 us on an M1 CPU; a pure QA
flow pays ~10 s of Minorminer embedding plus 8380 us of sampling for
60 reads; HyQSAT needs ~4000 us end to end with < 16 us embedding.
Absolute CPU numbers differ here (pure Python), but the *structure*
must hold: QA-only is dominated by embedding, HyQSAT's embedding is
microseconds-scale per call and its end-to-end time is in the same
decade as CDCL while the QA-only flow is orders of magnitude slower.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table, measure_iteration_cost
from repro.annealer import QpuTimingModel
from repro.benchgen import random_3sat
from repro.cdcl import minisat_solver
from repro.core import HyQSatConfig, HyQSatSolver
from repro.embedding import EmbeddingTimeout, MinorminerLikeEmbedder
from repro.qubo import encode_formula

from benchmarks._harness import emit, default_device, print_banner

NUM_VARS, NUM_CLAUSES = 128, 150


def test_fig1_end_to_end(benchmark):
    rng = np.random.default_rng(0)
    formula = random_3sat(NUM_VARS, NUM_CLAUSES, rng)
    timing = QpuTimingModel()

    def run_all():
        # (a) classic CDCL, measured.
        start = time.perf_counter()
        base = minisat_solver(formula).solve()
        cdcl_seconds = time.perf_counter() - start

        # (b) QA-only: embed the *entire* formula with the Minorminer
        # baseline, then 60 samples (the paper's Figure 1 accounting).
        encoding = encode_formula(list(formula.clauses), formula.num_vars)
        edges = list(encoding.objective.quadratic.keys())
        embedder = MinorminerLikeEmbedder(
            default_device().hardware, max_passes=6, timeout_seconds=90
        )
        try:
            mm = embedder.embed(edges, encoding.objective.variables)
            embed_seconds = mm.elapsed_seconds
        except EmbeddingTimeout as timeout:
            embed_seconds = timeout.elapsed_seconds
        qa_only_seconds = embed_seconds + timing.total_us(60) * 1e-6

        # (c) HyQSAT, modelled end to end.
        per_iteration = measure_iteration_cost(trials=2)
        solver = HyQSatSolver(formula, device=default_device(), config=HyQSatConfig())
        hyq = solver.solve()
        breakdown = hyq.time_breakdown(per_iteration)
        return base, cdcl_seconds, mm, qa_only_seconds, hyq, breakdown

    base, cdcl_s, mm, qa_only_s, hyq, breakdown = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    hyq_embed_us = (
        hyq.hybrid.frontend_seconds / max(1, hyq.hybrid.qa_calls) * 1e6
    )
    print_banner(f"Figure 1 — end-to-end time, {NUM_VARS} vars / {NUM_CLAUSES} clauses")
    emit(
        format_table(
            ["Approach", "End-to-end", "Embedding", "Notes"],
            [
                [
                    "Classic CDCL",
                    f"{cdcl_s * 1e3:.2f} ms",
                    "-",
                    f"{base.stats.iterations} iterations",
                ],
                [
                    "QA only",
                    f"{qa_only_s * 1e3:.2f} ms",
                    f"{mm.elapsed_seconds * 1e3:.1f} ms",
                    f"minorminer-like, success={mm.success}, 60 samples",
                ],
                [
                    "HyQSAT",
                    f"{breakdown.total_s * 1e3:.2f} ms",
                    f"{hyq_embed_us:.1f} us/call",
                    f"{hyq.stats.iterations} iterations, {hyq.hybrid.qa_calls} QA calls",
                ],
            ],
        )
    )
    emit("\nPaper: CDCL ~8 ms, QA-only ~10 s (embedding-bound), HyQSAT ~4 ms")
    # Structural assertions.
    assert mm.elapsed_seconds > 10 * breakdown.total_s, (
        "QA-only embedding must dominate HyQSAT end-to-end"
    )
    assert hyq_embed_us * 1e-6 < mm.elapsed_seconds / 100
