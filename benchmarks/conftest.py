"""Benchmark-harness configuration.

pytest captures stdout during tests, so the harness buffers its
reproduction tables (``benchmarks._harness.REPORT_LINES``) and this
hook prints them after the run, where they reach the terminal and any
``tee`` pipeline.
"""

import benchmarks._harness as _harness


def pytest_terminal_summary(terminalreporter):
    if not _harness.REPORT_LINES:
        return
    terminalreporter.section("paper reproduction tables")
    for line in _harness.REPORT_LINES:
        terminalreporter.write_line(line)
