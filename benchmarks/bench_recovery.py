"""Durability overhead benchmark: what does the journal cost?

Runs one fixed job set (uniform random 3-SAT near the threshold,
seeded) through :func:`repro.service.run_batch` twice per repeat —
once bare, once with the write-ahead journal (and checkpointing
enabled on every job) — and compares best-of-N wall times.  The
durability tier's contract is that crash safety is effectively free
on the batch path: the journal writes a handful of small fsync-batched
records per job, so its overhead must stay within
``OVERHEAD_CEILING`` of the bare run.

Also asserts the journaled run stays bit-identical to the bare run
(durability must never change answers) and reports the journal's own
record/fsync counters.

Writes ``BENCH_recovery.json`` and exits non-zero when the overhead
gate fails or any outcome diverged.

Run with ``make bench-recovery`` or::

    PYTHONPATH=src python -m benchmarks.bench_recovery --quick
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from typing import Dict, List

import numpy as np

from repro.benchgen.random_ksat import random_3sat
from repro.sat import to_dimacs
from repro.service import JobSpec, read_journal, run_batch

#: Max allowed journal overhead on the batch path (fraction of the
#: bare wall time).
OVERHEAD_CEILING = 0.05

#: Outcome fields compared for bit-identity.
SOLVER_FIELDS = (
    "status", "model", "iterations", "conflicts",
    "qa_calls", "qpu_time_us",
)


def build_specs(num_jobs: int, num_vars: int, seed: int) -> List[JobSpec]:
    clauses = int(round(num_vars * 4.3))
    specs = []
    for index in range(num_jobs):
        formula = random_3sat(
            num_vars, clauses, np.random.default_rng(seed + index)
        )
        specs.append(
            JobSpec(
                job_id=f"job{index:02d}",
                dimacs=to_dimacs(formula),
                seed=index,
                checkpoint_every=20,
            )
        )
    return specs


def solver_view(outcome) -> Dict:
    return {name: getattr(outcome, name) for name in SOLVER_FIELDS}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="8 jobs of 20 vars")
    parser.add_argument("--jobs", type=int, default=None, help="job count")
    parser.add_argument("--vars", type=int, default=None, help="variables per job")
    parser.add_argument("--seed", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--output", default="BENCH_recovery.json")
    args = parser.parse_args(argv)

    num_jobs = args.jobs or (8 if args.quick else 12)
    num_vars = args.vars or (20 if args.quick else 30)
    specs = build_specs(num_jobs, num_vars, args.seed)

    bare_times: List[float] = []
    journaled_times: List[float] = []
    bare_views = journaled_views = None
    journal_stats: Dict = {}

    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(args.repeats):
            start = time.perf_counter()
            outcomes, _ = run_batch(specs)
            bare_times.append(time.perf_counter() - start)
            bare_views = [solver_view(o) for o in outcomes]

            journal = os.path.join(tmp, f"journal-{repeat}.jsonl")
            ckpts = os.path.join(tmp, f"ckpts-{repeat}")
            start = time.perf_counter()
            outcomes, _ = run_batch(
                specs, journal_path=journal, checkpoint_dir=ckpts
            )
            journaled_times.append(time.perf_counter() - start)
            journaled_views = [solver_view(o) for o in outcomes]

            records, _, torn = read_journal(journal)
            journal_stats = {
                "records": len(records),
                "records_per_job": round(len(records) / num_jobs, 2),
                "torn_records": torn,
                "bytes": os.path.getsize(journal),
            }

    bare_s = min(bare_times)
    journaled_s = min(journaled_times)
    overhead = journaled_s / bare_s - 1.0
    identical = bare_views == journaled_views

    report = {
        "workload": {
            "jobs": num_jobs,
            "vars_per_job": num_vars,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        "bare": {"best_wall_s": round(bare_s, 3),
                 "all_wall_s": [round(t, 3) for t in bare_times]},
        "journaled": {"best_wall_s": round(journaled_s, 3),
                      "all_wall_s": [round(t, 3) for t in journaled_times],
                      **journal_stats},
        "acceptance": {
            "overhead_ceiling": OVERHEAD_CEILING,
            "journal_overhead": round(overhead, 4),
            "bit_identical": identical,
            "pass": bool(identical and overhead <= OVERHEAD_CEILING),
        },
    }

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    print(f"bare:      {bare_s:.3f}s best of {args.repeats}")
    print(
        f"journaled: {journaled_s:.3f}s "
        f"({overhead:+.1%} overhead, "
        f"{journal_stats['records_per_job']} records/job), "
        f"bit_identical={identical}"
    )
    print(f"wrote {args.output}")
    if not report["acceptance"]["pass"]:
        print(
            f"FAIL: journal overhead must stay <= {OVERHEAD_CEILING:.0%} "
            "with identical results"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
