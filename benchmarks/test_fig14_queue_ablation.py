"""Figure 14: activity-ordered BFS clause queue vs a random queue.

The paper reports a 2.77x average improvement of the Section IV-A
queue generation over random queue selection, with larger gains on the
later (harder) benchmarks.  Reproduced on a suite slice by flipping
``use_activity_queue`` — both the iteration reduction and the queue's
embedding utilisation (clauses embedded per call) are compared.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.benchgen import BENCHMARKS
from repro.cdcl import minisat_solver
from repro.core import HyQSatConfig, HyQSatSolver

from benchmarks._harness import emit, default_device, print_banner

NAMES = ("GC1", "II", "AI1", "AI2", "AI3")
PROBLEMS = 2


def test_fig14_queue_generation(benchmark):
    def run_all():
        table = {}
        for name in NAMES:
            spec = BENCHMARKS[name]
            base, activity, random_q = [], [], []
            act_embedded, rand_embedded = [], []
            for index in range(PROBLEMS):
                formula = spec.generate(index, seed=0)
                base.append(minisat_solver(formula, seed=0).solve().stats.iterations)
                act = HyQSatSolver(
                    formula,
                    device=default_device(seed=index),
                    config=HyQSatConfig(seed=index, use_activity_queue=True),
                ).solve()
                rnd = HyQSatSolver(
                    formula,
                    device=default_device(seed=index),
                    config=HyQSatConfig(seed=index, use_activity_queue=False),
                ).solve()
                activity.append(act.stats.iterations)
                random_q.append(rnd.stats.iterations)
                act_embedded.append(act.hybrid.avg_embedded_clauses)
                rand_embedded.append(rnd.hybrid.avg_embedded_clauses)
            table[name] = (base, activity, random_q, act_embedded, rand_embedded)
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    act_embedded_all, rand_embedded_all = [], []
    for name, (base, act, rnd, act_emb, rnd_emb) in table.items():
        red_act = np.mean(base) / max(1.0, np.mean(act))
        red_rnd = np.mean(base) / max(1.0, np.mean(rnd))
        act_embedded_all.extend(act_emb)
        rand_embedded_all.extend(rnd_emb)
        rows.append(
            [
                name,
                f"{red_act:.2f}",
                f"{red_rnd:.2f}",
                f"{np.mean(act_emb):.0f}",
                f"{np.mean(rnd_emb):.0f}",
            ]
        )
    print_banner("Figure 14 — activity BFS queue vs random queue")
    emit(
        format_table(
            ["Bench", "Reduction (BFS)", "Reduction (random)",
             "Embedded/call (BFS)", "Embedded/call (random)"],
            rows,
        )
    )
    emit("\nPaper: BFS queue gives 2.77x better reduction on average;")
    emit("locality also raises hardware utilisation per call.")
    # The locality claim must hold: BFS queues embed more clauses/call.
    assert np.mean(act_embedded_all) > np.mean(rand_embedded_all)
