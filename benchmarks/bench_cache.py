"""Cache benchmark: cached-result bit-identity + warm-cache throughput.

Two gates over one seeded catalog (uniform random 3-SAT near the
threshold):

1. **Bit-identity** — replaying the catalog through
   :func:`~repro.service.service.run_batch` against the cache DB the
   fresh pass populated must return outcomes whose solver fields
   match the fresh solves exactly, with every job served from the
   cache and zero modelled QPU time billed on the second pass.
2. **Warm-cache throughput** — a zipf-distributed stream of one
   million jobs drawn from the catalog replays through
   :func:`~repro.gateway.des.simulate_fleet_makespan` twice: cache
   off (every draw pays its measured fresh profile) and cache on
   (only the first occurrence of each instance pays; repeats pay the
   measured cache-lookup cost and zero QPU time).  Modelled
   throughput with the cache on must be at least
   ``CACHE_SPEEDUP_FLOOR``x the cache-off deployment.

Writes ``BENCH_cache.json`` and exits non-zero if either gate fails.
Run with ``make bench-cache`` or::

    PYTHONPATH=src python -m benchmarks.bench_cache --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.cache import PersistentResultStore
from repro.gateway.des import QpuLane, simulate_fleet_makespan
from repro.benchgen.random_ksat import random_3sat
from repro.sat import to_dimacs
from repro.service import JobSpec
from repro.service.service import run_batch

#: Required modelled throughput gain, cache on vs cache off.
CACHE_SPEEDUP_FLOOR = 3.0

#: Outcome fields compared for bit-identity (as bench_gateway.py).
SOLVER_FIELDS = (
    "status", "model", "iterations", "conflicts",
    "qa_calls", "qpu_time_us",
)

#: Host workers / fleet devices in the modelled deployment.
WORKERS = 4
DEVICES = 2

#: Zipf exponent of the replay stream (catalog rank popularity).
ZIPF_EXPONENT = 1.1


def build_specs(num_instances: int, num_vars: int, seed: int) -> List[JobSpec]:
    clauses = int(round(num_vars * 4.3))
    specs = []
    for index in range(num_instances):
        formula = random_3sat(
            num_vars, clauses, np.random.default_rng(seed + index)
        )
        specs.append(
            JobSpec(
                job_id=f"cat{index:03d}",
                dimacs=to_dimacs(formula),
                seed=index,
            )
        )
    return specs


def solver_view(outcome) -> Dict:
    return {name: getattr(outcome, name) for name in SOLVER_FIELDS}


def measure_hit_cost(db_path: str, specs: List[JobSpec]) -> float:
    """Mean wall seconds of one exact cache lookup on the populated DB."""
    with PersistentResultStore(db_path) as store:
        timings = []
        for spec in specs:
            formula = spec.load_formula()
            key = spec.solve_key(formula)
            start = time.perf_counter()
            hit = store.lookup(key, spec, formula)
            timings.append(time.perf_counter() - start)
            if hit is None:
                raise RuntimeError(f"catalog miss for {spec.job_id}")
    return sum(timings) / len(timings)


def zipf_stream(
    num_jobs: int, catalog_size: int, seed: int
) -> np.ndarray:
    """Zipf-distributed catalog indices (rank k drawn with p ~ 1/k^s)."""
    ranks = np.arange(1, catalog_size + 1, dtype=float)
    weights = ranks ** -ZIPF_EXPONENT
    rng = np.random.default_rng(seed)
    return rng.choice(catalog_size, size=num_jobs, p=weights / weights.sum())


def replay_makespans(
    stream: np.ndarray,
    fresh_profiles: List[Tuple[float, int, float]],
    hit_cpu_s: float,
) -> Tuple[float, float]:
    """Modelled (cache_off, cache_on) makespans of the stream."""
    lanes = [QpuLane(f"qpu{i}") for i in range(DEVICES)]
    off_profiles = [fresh_profiles[index] for index in stream]
    off_s = simulate_fleet_makespan(off_profiles, workers=WORKERS, lanes=lanes)
    seen = set()
    on_profiles = []
    for index in stream:
        if index in seen:
            on_profiles.append((hit_cpu_s, 0, 0.0))
        else:
            seen.add(index)
            on_profiles.append(fresh_profiles[index])
    on_s = simulate_fleet_makespan(on_profiles, workers=WORKERS, lanes=lanes)
    return off_s, on_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="6 instances, 50k-job stream"
    )
    parser.add_argument("--instances", type=int, default=None)
    parser.add_argument("--vars", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None, help="stream length")
    parser.add_argument("--seed", type=int, default=400)
    parser.add_argument("--output", default="BENCH_cache.json")
    args = parser.parse_args(argv)

    num_instances = args.instances or (6 if args.quick else 24)
    num_vars = args.vars or 20
    stream_jobs = args.jobs or (50_000 if args.quick else 1_000_000)
    specs = build_specs(num_instances, num_vars, args.seed)

    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "bench_cache.sqlite")

        # -- fresh pass: populate the cache -----------------------------
        start = time.perf_counter()
        fresh, fresh_stats = run_batch(
            specs, workers=WORKERS, cache_path=db_path
        )
        fresh_wall_s = time.perf_counter() - start
        if fresh_stats.cache_hits:
            print("FAIL: fresh pass hit the cache", file=sys.stderr)
            return 1

        # -- cached pass: same specs, same DB ---------------------------
        start = time.perf_counter()
        cached, cached_stats = run_batch(
            specs, workers=WORKERS, cache_path=db_path
        )
        cached_wall_s = time.perf_counter() - start

        identical = all(
            solver_view(a) == solver_view(b) for a, b in zip(fresh, cached)
        )
        all_cached = all(o.cached for o in cached)
        no_qpu_billed = cached_stats.qpu_grants == 0

        # -- zipf stream on the modelled clock --------------------------
        hit_cpu_s = measure_hit_cost(db_path, specs)

    fresh_profiles = [
        (o.run_seconds or 0.0, o.qa_calls or 0, o.qpu_time_us or 0.0)
        for o in fresh
    ]
    stream = zipf_stream(stream_jobs, num_instances, args.seed)
    off_s, on_s = replay_makespans(stream, fresh_profiles, hit_cpu_s)
    speedup = off_s / on_s if on_s else float("inf")

    report = {
        "workload": {
            "catalog_instances": num_instances,
            "vars_per_instance": num_vars,
            "stream_jobs": stream_jobs,
            "zipf_exponent": ZIPF_EXPONENT,
            "seed": args.seed,
            "statuses": sorted({o.status for o in fresh if o.status}),
        },
        "catalog": {
            "fresh_wall_s": round(fresh_wall_s, 3),
            "cached_wall_s": round(cached_wall_s, 3),
            "cache_hits": cached_stats.cache_hits,
            "cache_misses": cached_stats.cache_misses,
            "mean_hit_lookup_s": round(hit_cpu_s, 6),
            "mean_fresh_cpu_s": round(
                sum(p[0] for p in fresh_profiles) / num_instances, 4
            ),
        },
        "modelled_replay": {
            "workers": WORKERS,
            "devices": DEVICES,
            "cache_off_makespan_s": round(off_s, 3),
            "cache_on_makespan_s": round(on_s, 3),
            "cache_off_jobs_per_s": round(stream_jobs / off_s, 3),
            "cache_on_jobs_per_s": round(stream_jobs / on_s, 3),
        },
        "acceptance": {
            "cache_speedup_floor": CACHE_SPEEDUP_FLOOR,
            "speedup_cache_on": round(speedup, 3),
            "bit_identical_all": identical,
            "all_served_from_cache": all_cached,
            "no_qpu_billed_on_hits": no_qpu_billed,
            "pass": bool(
                identical
                and all_cached
                and no_qpu_billed
                and speedup >= CACHE_SPEEDUP_FLOOR
            ),
        },
    }

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["acceptance"], indent=2))
    return 0 if report["acceptance"]["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
