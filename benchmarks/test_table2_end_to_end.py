"""Table II: modelled end-to-end time of MiniSAT / Kissat / HyQSAT
with the noisy device (the paper's real-QPU runs).

Times are modelled per DESIGN.md: measured CPU time for the classical
baselines, and frontend CPU + modelled QPU device time + backend CPU +
remaining-CDCL CPU for HyQSAT.  The paper's headline: HyQSAT beats
MiniSAT on 12/14 and Kissat on 13/14 benchmarks (1.48-12.62x), losing
only on BP/II where conflict frequency is low; the noise effect
(#iterations on hardware / noise-free simulator) stays near 1.
"""

import numpy as np
import pytest

from repro.analysis import format_table, measure_iteration_cost
from repro.annealer import NoiseModel
from repro.benchgen import BENCHMARKS

from benchmarks._harness import (
    emit,
    SUITE_ORDER,
    group_by_benchmark,
    print_banner,
    run_suite,
)


def test_table2_running_time(benchmark):
    def run_all():
        noisefree = run_suite(SUITE_ORDER, problems=3, seed=0)
        noisy = run_suite(
            SUITE_ORDER, problems=3, seed=0, noise=NoiseModel.dwave_2000q()
        )
        return noisefree, noisy

    noisefree, noisy = benchmark.pedantic(run_all, rounds=1, iterations=1)
    per_iteration = measure_iteration_cost(trials=2)

    rows = []
    wins_minisat = wins_kissat = 0
    grouped_free = group_by_benchmark(noisefree)
    for name, group in group_by_benchmark(noisy).items():
        mini_ms = float(np.mean([r.minisat_seconds for r in group])) * 1e3
        kis_ms = float(np.mean([r.kissat_seconds for r in group])) * 1e3
        hyq_ms = float(
            np.mean(
                [r.hyqsat.time_breakdown(per_iteration).total_s for r in group]
            )
        ) * 1e3
        speed_mini = mini_ms / hyq_ms
        speed_kis = kis_ms / hyq_ms
        wins_minisat += speed_mini > 1
        wins_kissat += speed_kis > 1
        noise_variance = float(
            np.mean(
                [
                    r.hyqsat.stats.iterations
                    / max(1, f.hyqsat.stats.iterations)
                    for r, f in zip(group, grouped_free[name])
                ]
            )
        )
        rows.append(
            [
                name,
                f"{mini_ms:.2f}",
                f"{kis_ms:.2f}",
                f"{hyq_ms:.2f}",
                f"{speed_mini:.2f}",
                f"{speed_kis:.2f}",
                f"{noise_variance:.2f}",
            ]
        )
    print_banner("Table II — modelled end-to-end time (noisy device)")
    emit(
        format_table(
            [
                "Bench", "Minisat ms", "Kissat ms", "HyQSAT ms",
                "Speedup(M)", "Speedup(K)", "#Iter variance",
            ],
            rows,
        )
    )
    emit(
        f"\nHyQSAT faster than MiniSAT on {wins_minisat}/14 and Kissat on "
        f"{wins_kissat}/14 benchmarks (paper: 12/14 and 13/14)."
    )
    emit(f"CDCL per-iteration cost used: {per_iteration * 1e6:.1f} us")
    assert wins_minisat >= 4  # the hybrid must win on a solid share
