"""Setuptools shim.

Kept so ``pip install -e . --no-build-isolation`` works on minimal
environments that lack the ``wheel`` package (the PEP 517 editable path
requires ``bdist_wheel``); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
