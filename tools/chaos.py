"""Chaos harness for the durable solver service (docs/SERVICE.md).

Injects the failures the durability tier is built for and checks the
recovery invariants hold:

- **no lost acked job** — every result emitted before a crash is
  re-emitted after recovery;
- **no duplicate completion** — each job id appears exactly once per
  run's output;
- **bit-identical results** — per job seed, recovered results match an
  uninterrupted run on every deterministic field;
- **QPU billed once** — the recovered session's modelled device ledger
  equals the uninterrupted run's.

Subcommands::

    python tools/chaos.py crash-batch [--trials N] [--jobs N]
    python tools/chaos.py torn-tail   [--trials N]
    python tools/chaos.py fault-storm [--trials N]

``crash-batch`` SIGKILLs a real ``hyqsat batch`` subprocess mid-run
and re-runs the same command; ``torn-tail`` truncates/bit-flips the
journal at randomized offsets in-process; ``fault-storm`` drives a
device fleet through heavy injected fault traffic.  Exits non-zero on
the first violated invariant.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

#: JobOutcome fields that must be bit-identical across recovery
#: (wall-clock fields — run/wait seconds — are legitimately different).
SOLVER_FIELDS = (
    "status",
    "model",
    "iterations",
    "conflicts",
    "qa_calls",
    "qpu_time_us",
    "qa_retries",
    "qa_failures",
    "breaker_state",
    "qa_budget_spent_us",
    "degraded",
)

#: ``resumed`` is recovery metadata: a restarted run legitimately
#: reports True where the uninterrupted reference reports False.
_NONDET_JSON_KEYS = ("run_seconds", "wait_seconds", "resumed")


def det_view(outcome) -> Dict:
    """The deterministic slice of a JobOutcome object."""
    return {name: getattr(outcome, name) for name in SOLVER_FIELDS}


def det_json_view(record: Dict) -> Dict:
    """The deterministic slice of a result JSONL record."""
    return {k: v for k, v in record.items() if k not in _NONDET_JSON_KEYS}


def _fail(message: str) -> None:
    raise AssertionError(message)


def _write_instances(directory: str, count: int, num_vars: int, seed: int):
    import numpy as np

    from repro.benchgen.random_ksat import random_3sat
    from repro.sat.dimacs import write_dimacs

    clauses = int(round(num_vars * 4.3))
    for index in range(count):
        formula = random_3sat(
            num_vars, clauses, np.random.default_rng(seed + index)
        )
        write_dimacs(formula, os.path.join(directory, f"i{index:02d}.cnf"))


# ---------------------------------------------------------------------------
# crash-batch: SIGKILL a hyqsat batch subprocess, re-run, compare
# ---------------------------------------------------------------------------


def _read_results(path: str) -> List[Dict]:
    if not os.path.exists(path):
        return []
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _batch_cmd(directory: str, output: str, journal: str, jobs: int,
               seed: int) -> List[str]:
    return [
        sys.executable, "-m", "repro.cli", "batch", directory,
        "--journal", journal,
        "--checkpoint-dir", os.path.join(directory, "ckpts"),
        "--checkpoint-every", "20",
        "--jobs", str(jobs),
        "--seed", str(seed),
        "-o", output,
    ]


def crash_batch(trials: int, jobs: int, num_vars: int, count: int) -> int:
    env = dict(os.environ, PYTHONPATH=SRC)
    violations = 0
    for trial in range(trials):
        seed = 1000 * trial
        with tempfile.TemporaryDirectory() as tmp:
            _write_instances(tmp, count, num_vars, seed)
            ref_out = os.path.join(tmp, "ref.jsonl")
            subprocess.run(
                _batch_cmd(tmp, ref_out, os.path.join(tmp, "ref.journal"),
                           jobs, seed),
                env=env, check=True, capture_output=True,
            )
            reference = {r["id"]: det_json_view(r)
                         for r in _read_results(ref_out)}

            journal = os.path.join(tmp, "crash.journal")
            crash_out = os.path.join(tmp, "crash1.jsonl")
            proc = subprocess.Popen(
                _batch_cmd(tmp, crash_out, journal, jobs, seed),
                env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            # Let at least one result get acked, then kill -9 mid-run.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if len(_read_results(crash_out)) >= 1 + trial % 2:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait()
            acked = {r["id"]: det_json_view(r)
                     for r in _read_results(crash_out)}

            restart_out = os.path.join(tmp, "crash2.jsonl")
            restart = subprocess.run(
                _batch_cmd(tmp, restart_out, journal, jobs, seed),
                env=env, capture_output=True, text=True,
            )
            results = _read_results(restart_out)
            ids = [r["id"] for r in results]
            recovered = {r["id"]: det_json_view(r) for r in results}

            label = f"crash-batch trial {trial} (killed={killed})"
            try:
                if restart.returncode != 0:
                    _fail(f"{label}: restart exited "
                          f"{restart.returncode}: {restart.stderr}")
                if len(ids) != len(set(ids)):
                    _fail(f"{label}: duplicate completions: {ids}")
                if set(recovered) != set(reference):
                    _fail(f"{label}: job set mismatch: "
                          f"{sorted(recovered)} != {sorted(reference)}")
                for job_id, view in acked.items():
                    if recovered[job_id] != view:
                        _fail(f"{label}: acked job {job_id} changed "
                              "after recovery")
                for job_id, view in reference.items():
                    if recovered[job_id] != view:
                        _fail(f"{label}: job {job_id} not bit-identical "
                              "to the uninterrupted run")
                billed = _qpu_busy_us(restart.stderr)
                expected = sum(v["qpu_time_us"] for v in reference.values())
                if abs(billed - expected) > 1e-6:
                    _fail(f"{label}: QPU billed {billed}us, "
                          f"expected {expected}us (double billing?)")
            except AssertionError as error:
                print(f"FAIL {error}")
                violations += 1
            else:
                print(f"ok   {label}: {len(acked)} acked pre-crash, "
                      f"{len(results)} recovered, billed once")
    return violations


def _qpu_busy_us(stderr_text: str) -> float:
    for line in stderr_text.splitlines():
        for token in line.split():
            if token.startswith("qpu_busy_us="):
                return float(token.split("=", 1)[1])
    return float("nan")


# ---------------------------------------------------------------------------
# torn-tail: randomized journal truncation / corruption sweep
# ---------------------------------------------------------------------------


def torn_tail(trials: int) -> int:
    import numpy as np

    from repro.benchgen.random_ksat import random_3sat
    from repro.sat import to_dimacs
    from repro.service import JobSpec, run_batch

    def specs():
        return [
            JobSpec(
                job_id=f"j{i}",
                dimacs=to_dimacs(
                    random_3sat(12, 52, np.random.default_rng(40 + i))
                ),
                seed=i,
            )
            for i in range(6)
        ]

    violations = 0
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "journal.jsonl")
        reference, _ = run_batch(specs(), journal_path=journal)
        ref_views = [det_view(o) for o in reference]
        pristine = open(journal, "rb").read()

        rng = np.random.default_rng(2026)
        for trial in range(trials):
            mode = "truncate" if trial % 2 == 0 else "corrupt"
            offset = int(rng.integers(0, len(pristine)))
            mutated = (
                pristine[:offset]
                if mode == "truncate"
                else pristine[:offset]
                + bytes([pristine[offset] ^ 0x5A])
                + pristine[offset + 1:]
            )
            with open(journal, "wb") as handle:
                handle.write(mutated)
            outcomes, _ = run_batch(specs(), journal_path=journal)
            label = f"torn-tail trial {trial} ({mode}@{offset})"
            ids = [o.job_id for o in outcomes]
            if len(ids) != len(set(ids)):
                print(f"FAIL {label}: duplicate completions")
                violations += 1
            elif [det_view(o) for o in outcomes] != ref_views:
                print(f"FAIL {label}: results diverged from reference")
                violations += 1
        if violations == 0:
            print(f"ok   torn-tail: {trials} trials, all bit-identical")
    return violations


# ---------------------------------------------------------------------------
# fault-storm: a device fleet under heavy injected faults
# ---------------------------------------------------------------------------


def fault_storm(trials: int) -> int:
    import numpy as np

    from repro.benchgen.random_ksat import random_3sat
    from repro.sat import to_dimacs
    from repro.service import JobSpec, run_batch

    violations = 0
    for trial in range(trials):
        specs = [
            JobSpec(
                job_id=f"storm{i}",
                dimacs=to_dimacs(
                    random_3sat(
                        20, 86, np.random.default_rng(700 + 10 * trial + i)
                    )
                ),
                seed=i,
                qa_faults="dropout=0.6,timeout=0.2",
                fault_seed=trial,
                fleet=3,
            )
            for i in range(4)
        ]
        first, _ = run_batch(specs)
        second, _ = run_batch(specs)
        label = f"fault-storm trial {trial}"
        bad = [o.job_id for o in first if o.state != "done"]
        if bad:
            print(f"FAIL {label}: jobs not done under storm: {bad}")
            violations += 1
        elif [det_view(o) for o in first] != [det_view(o) for o in second]:
            print(f"FAIL {label}: storm results not deterministic")
            violations += 1
        else:
            print(f"ok   {label}: {len(specs)} jobs done, deterministic")
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_crash = sub.add_parser("crash-batch", help="kill -9 a batch mid-run")
    p_crash.add_argument("--trials", type=int, default=2)
    p_crash.add_argument("--jobs", type=int, default=2)
    p_crash.add_argument("--vars", type=int, default=90)
    p_crash.add_argument("--count", type=int, default=4)

    p_torn = sub.add_parser("torn-tail", help="journal corruption sweep")
    p_torn.add_argument("--trials", type=int, default=50)

    p_storm = sub.add_parser("fault-storm", help="fleet under heavy faults")
    p_storm.add_argument("--trials", type=int, default=3)

    args = parser.parse_args(argv)
    if args.command == "crash-batch":
        violations = crash_batch(args.trials, args.jobs, args.vars, args.count)
    elif args.command == "torn-tail":
        violations = torn_tail(args.trials)
    else:
        violations = fault_storm(args.trials)
    if violations:
        print(f"chaos: {violations} invariant violation(s)")
        return 1
    print("chaos: all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
