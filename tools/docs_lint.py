"""Docs lint: broken links, phantom flags, undocumented solve flags.

Five checks over the repo's markdown set (README.md, DESIGN.md,
EXPERIMENTS.md, CONTRIBUTING.md, ROADMAP.md, docs/*.md):

1. **Relative links** — every ``[text](path)`` pointing inside the
   repo must resolve to an existing file (anchors and external URLs
   are skipped).
2. **Flag references** — every ``--flag`` token mentioned in the docs
   must be a flag some ``hyqsat`` subcommand actually defines (so docs
   cannot keep advertising a renamed or removed option).
3. **Solve-flag coverage** — every optional flag of ``hyqsat solve``
   must appear in README.md's flag table (the other direction of the
   same drift).
4. **Stale bytecode** — no package directory under ``src/`` may hold
   only ``__pycache__`` bytecode with no ``.py`` sources (a leftover
   from a deleted module that keeps importing locally).
5. **Metric-group coverage** — every metric *group* (name prefix such
   as ``hyqsat_cache_*``) declared in ``observability.schema`` must
   have at least one member documented in docs/TELEMETRY.md.  The
   per-metric exactness check lives in
   ``tests/observability/test_contract.py``; this catches a whole new
   group landing in the schema with no documentation section at all.

Run with ``make docs-check`` or::

    PYTHONPATH=src python tools/docs_lint.py

Exits non-zero with one line per problem.  Zero third-party
dependencies; flag extraction introspects the real argparse parser so
the lint can never disagree with ``--help``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files covered by the lint (ISSUE.md is per-PR scratch;
#: PAPER(S)/SNIPPETS are generated references with external links).
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CONTRIBUTING.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/TELEMETRY.md",
    "docs/SERVICE.md",
    "docs/GATEWAY.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FLAG_RE = re.compile(r"(?<![-\w])(--[a-z][a-z0-9-]+)\b")

#: Doc-mentioned flags that are not hyqsat CLI flags (pytest/pip/git
#: options quoted in command examples, etc.).
FLAG_ALLOWLIST: Set[str] = {
    "--benchmark-only",  # pytest-benchmark, quoted in Makefile docs
    "--quick",           # benchmarks.bench_hotpath / bench_observability
    "--output",          # benchmark scripts
    "--baseline",        # benchmarks.bench_observability
    "--help",
    "--dispatch",        # planned flag (ROADMAP open item 1), not shipped yet
}


def _doc_paths() -> List[Path]:
    return [REPO_ROOT / name for name in DOC_FILES if (REPO_ROOT / name).exists()]


def check_links(problems: List[str]) -> None:
    for path in _doc_paths():
        text = path.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                rel = path.relative_to(REPO_ROOT)
                problems.append(f"{rel}: broken link -> {match.group(1)}")


def _cli_flags() -> Set[str]:
    """Every optional flag any hyqsat subcommand defines."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser

    flags: Set[str] = set()
    parsers = [build_parser()]
    while parsers:
        parser = parsers.pop()
        for action in parser._actions:
            flags.update(s for s in action.option_strings if s.startswith("--"))
            choices = getattr(action, "choices", None)
            if isinstance(choices, dict) and all(
                hasattr(sub, "_actions") for sub in choices.values()
            ):
                parsers.extend(choices.values())
    return flags


def _solve_flags() -> Set[str]:
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._actions:
        choices = getattr(action, "choices", None)
        if choices and "solve" in choices:
            return {
                s
                for sub_action in choices["solve"]._actions
                for s in sub_action.option_strings
                if s.startswith("--") and s != "--help"
            }
    raise RuntimeError("no 'solve' subcommand found")


def check_flag_references(problems: List[str]) -> None:
    known = _cli_flags() | FLAG_ALLOWLIST
    for path in _doc_paths():
        text = path.read_text(encoding="utf-8")
        for flag in sorted(set(_FLAG_RE.findall(text))):
            if flag not in known:
                rel = path.relative_to(REPO_ROOT)
                problems.append(f"{rel}: references unknown flag {flag}")


def check_solve_flag_coverage(problems: List[str]) -> None:
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for flag in sorted(_solve_flags()):
        if flag not in readme:
            problems.append(f"README.md: solve flag {flag} missing from flag table")


def check_stale_bytecode(problems: List[str]) -> None:
    """Flag source dirs under src/ holding only bytecode.

    A package directory whose sole contents are ``__pycache__`` /
    ``.pyc`` files is a leftover from a deleted or renamed module —
    imports appear to work locally while the source is gone (the
    original ``repro/gateway`` stub shipped exactly this way).
    """
    src = REPO_ROOT / "src"
    for directory in sorted(p for p in src.rglob("*") if p.is_dir()):
        if directory.name == "__pycache__":
            continue
        entries = list(directory.iterdir())
        if not entries:
            continue
        has_source = any(
            p.suffix == ".py" or (p.is_dir() and p.name != "__pycache__")
            for p in entries
        )
        if not has_source:
            rel = directory.relative_to(REPO_ROOT)
            problems.append(f"{rel}: only bytecode, no .py sources (stale package?)")


def _metric_groups() -> Set[str]:
    """Metric-name prefixes declared in the schema (first two
    underscore-separated components, e.g. ``hyqsat_cache``)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.observability.schema import METRIC_NAMES

    return {"_".join(name.split("_", 2)[:2]) for name in METRIC_NAMES}


def check_metric_group_coverage(problems: List[str]) -> None:
    doc = REPO_ROOT / "docs" / "TELEMETRY.md"
    if not doc.exists():
        problems.append("docs/TELEMETRY.md: missing")
        return
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.observability.schema import metric_names_in_doc

    documented = metric_names_in_doc(doc.read_text(encoding="utf-8"))
    documented_groups = {
        "_".join(name.split("_", 2)[:2]) for name in documented
    }
    for group in sorted(_metric_groups() - documented_groups):
        problems.append(
            f"docs/TELEMETRY.md: metric group {group}_* from "
            "observability.schema has no documented members"
        )


def main() -> int:
    problems: List[str] = []
    check_links(problems)
    check_flag_references(problems)
    check_solve_flag_coverage(problems)
    check_stale_bytecode(problems)
    check_metric_group_coverage(problems)
    for problem in problems:
        print(problem)
    if problems:
        print(f"docs lint: {len(problems)} problem(s)")
        return 1
    print(f"docs lint: {len(_doc_paths())} files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
