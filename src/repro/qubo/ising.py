"""The two-degree objective function of Equation 2.

``H(X) = I + Σ B_i x_i + Σ_{i<j} J_ij x_i x_j`` over binary variables
``x ∈ {0, 1}``.  Variables are integer labels; formula variables use
their DIMACS index and auxiliary variables continue the numbering above
``num_vars``.

The paper works in this 0/1 ("QUBO") form throughout — the hardware
ranges it normalises to (``B ∈ [-2, 2]``, ``J ∈ [-1, 1]``, Section
II-D) are expressed on these coefficients — so this library does too.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

import networkx as nx
import numpy as np


def _edge(u: int, v: int) -> Tuple[int, int]:
    """Canonical (sorted) key for a quadratic term."""
    if u == v:
        raise ValueError(f"quadratic term requires distinct variables, got {u},{v}")
    return (u, v) if u < v else (v, u)


class QuadraticObjective:
    """A quadratic pseudo-Boolean objective over 0/1 variables.

    Mutable builder-style container: ``add_constant`` / ``add_linear`` /
    ``add_quadratic`` accumulate terms; arithmetic helpers (``+``,
    ``scaled``) return new objectives.  Zero coefficients are pruned so
    the variable set and problem graph reflect genuine structure.
    """

    __slots__ = ("offset", "linear", "quadratic")

    def __init__(
        self,
        offset: float = 0.0,
        linear: Optional[Mapping[int, float]] = None,
        quadratic: Optional[Mapping[Tuple[int, int], float]] = None,
    ):
        self.offset = float(offset)
        self.linear: Dict[int, float] = {}
        self.quadratic: Dict[Tuple[int, int], float] = {}
        if linear:
            for var, coeff in linear.items():
                self.add_linear(var, coeff)
        if quadratic:
            for (u, v), coeff in quadratic.items():
                self.add_quadratic(u, v, coeff)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_constant(self, value: float) -> "QuadraticObjective":
        """Add a constant (intercept) term; returns self for chaining."""
        self.offset += float(value)
        return self

    def add_linear(self, var: int, coeff: float) -> "QuadraticObjective":
        """Accumulate ``coeff * x_var``."""
        new = self.linear.get(var, 0.0) + float(coeff)
        if new == 0.0:
            self.linear.pop(var, None)
        else:
            self.linear[var] = new
        return self

    def add_quadratic(self, u: int, v: int, coeff: float) -> "QuadraticObjective":
        """Accumulate ``coeff * x_u * x_v``."""
        key = _edge(u, v)
        new = self.quadratic.get(key, 0.0) + float(coeff)
        if new == 0.0:
            self.quadratic.pop(key, None)
        else:
            self.quadratic[key] = new
        return self

    def add_objective(self, other: "QuadraticObjective", scale: float = 1.0) -> "QuadraticObjective":
        """Accumulate ``scale * other`` into self."""
        self.add_constant(scale * other.offset)
        for var, coeff in other.linear.items():
            self.add_linear(var, scale * coeff)
        for (u, v), coeff in other.quadratic.items():
            self.add_quadratic(u, v, scale * coeff)
        return self

    def __add__(self, other: "QuadraticObjective") -> "QuadraticObjective":
        return self.copy().add_objective(other)

    def scaled(self, factor: float) -> "QuadraticObjective":
        """A new objective equal to ``factor * self``."""
        return QuadraticObjective().add_objective(self, scale=factor)

    def copy(self) -> "QuadraticObjective":
        """Deep copy."""
        out = QuadraticObjective(self.offset)
        out.linear = dict(self.linear)
        out.quadratic = dict(self.quadratic)
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def variables(self) -> Set[int]:
        """All variables with a non-zero linear or quadratic coefficient."""
        out: Set[int] = set(self.linear)
        for u, v in self.quadratic:
            out.add(u)
            out.add(v)
        return out

    @property
    def num_interactions(self) -> int:
        """Number of non-zero quadratic terms."""
        return len(self.quadratic)

    def linear_of(self, var: int) -> float:
        """Coefficient B of ``x_var`` (0 if absent)."""
        return self.linear.get(var, 0.0)

    def quadratic_of(self, u: int, v: int) -> float:
        """Coefficient J of ``x_u x_v`` (0 if absent)."""
        return self.quadratic.get(_edge(u, v), 0.0)

    def max_abs_linear(self) -> float:
        """``max |B_i|`` (0 for an empty objective)."""
        return max((abs(c) for c in self.linear.values()), default=0.0)

    def max_abs_quadratic(self) -> float:
        """``max |J_ij|`` (0 for an empty objective)."""
        return max((abs(c) for c in self.quadratic.values()), default=0.0)

    def d_star(self) -> float:
        """The Eq. 6 normalisation denominator
        ``max(max |B|/2, max |J|)``."""
        return max(self.max_abs_linear() / 2.0, self.max_abs_quadratic())

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def energy(self, assignment: Mapping[int, object]) -> float:
        """Evaluate H at a 0/1 (or bool) assignment of every variable."""
        total = self.offset
        for var, coeff in self.linear.items():
            if assignment[var]:
                total += coeff
        for (u, v), coeff in self.quadratic.items():
            if assignment[u] and assignment[v]:
                total += coeff
        return total

    def to_arrays(
        self, order: Optional[List[int]] = None
    ) -> Tuple[float, np.ndarray, np.ndarray, List[int]]:
        """Dense form for vectorised evaluation.

        Returns ``(offset, b, J, order)`` where ``b[i]`` is the linear
        coefficient of ``order[i]`` and ``J`` is the symmetric matrix
        with ``J[i, j] = J[j, i] = coeff/2`` so that
        ``H(x) = offset + b·x + xᵀ J x`` for a 0/1 vector ``x``.
        """
        if order is None:
            order = sorted(self.variables)
        index = {var: i for i, var in enumerate(order)}
        n = len(order)
        b = np.zeros(n)
        J = np.zeros((n, n))
        for var, coeff in self.linear.items():
            b[index[var]] = coeff
        for (u, v), coeff in self.quadratic.items():
            i, j = index[u], index[v]
            J[i, j] += coeff / 2.0
            J[j, i] += coeff / 2.0
        return self.offset, b, J, order

    def energies(self, samples: np.ndarray, order: List[int]) -> np.ndarray:
        """Vectorised energy of a ``(num_samples, len(order))`` 0/1 array."""
        offset, b, J, _ = self.to_arrays(order)
        x = samples.astype(float)
        return offset + x @ b + np.einsum("si,ij,sj->s", x, J, x)

    def problem_graph(self) -> nx.Graph:
        """The Section II-D problem graph: vertices are variables with
        weight B, edges are non-zero quadratic terms with weight J."""
        graph = nx.Graph()
        for var in self.variables:
            graph.add_node(var, weight=self.linear.get(var, 0.0))
        for (u, v), coeff in self.quadratic.items():
            graph.add_edge(u, v, weight=coeff)
        return graph

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QuadraticObjective):
            return (
                self.offset == other.offset
                and self.linear == other.linear
                and self.quadratic == other.quadratic
            )
        return NotImplemented

    def is_close(self, other: "QuadraticObjective", tol: float = 1e-9) -> bool:
        """Approximate equality (coefficient-wise within ``tol``)."""
        if abs(self.offset - other.offset) > tol:
            return False
        keys = set(self.linear) | set(other.linear)
        if any(
            abs(self.linear.get(k, 0.0) - other.linear.get(k, 0.0)) > tol for k in keys
        ):
            return False
        edges = set(self.quadratic) | set(other.quadratic)
        return all(
            abs(self.quadratic.get(e, 0.0) - other.quadratic.get(e, 0.0)) <= tol
            for e in edges
        )

    def __repr__(self) -> str:
        return (
            f"QuadraticObjective(offset={self.offset}, "
            f"|linear|={len(self.linear)}, |quadratic|={len(self.quadratic)})"
        )


class LinearExpr:
    """A degree-<=1 expression ``c0 + c1 * x`` used to build clause
    objectives symbolically (the ``H_l`` literal polynomials of Eq. 4)."""

    __slots__ = ("const", "terms")

    def __init__(self, const: float = 0.0, terms: Optional[Mapping[int, float]] = None):
        self.const = float(const)
        self.terms: Dict[int, float] = dict(terms or {})

    @classmethod
    def literal(cls, var: int, positive: bool) -> "LinearExpr":
        """``H_l``: ``x`` for a positive literal, ``1 - x`` for a negative."""
        if positive:
            return cls(0.0, {var: 1.0})
        return cls(1.0, {var: -1.0})

    @classmethod
    def variable(cls, var: int) -> "LinearExpr":
        """The bare variable ``x_var``."""
        return cls(0.0, {var: 1.0})

    @classmethod
    def constant(cls, value: float) -> "LinearExpr":
        """A constant expression."""
        return cls(value, {})

    def multiply_into(
        self, other: "LinearExpr", objective: QuadraticObjective, scale: float = 1.0
    ) -> None:
        """Accumulate ``scale * self * other`` into ``objective``."""
        objective.add_constant(scale * self.const * other.const)
        for var, coeff in self.terms.items():
            objective.add_linear(var, scale * coeff * other.const)
        for var, coeff in other.terms.items():
            objective.add_linear(var, scale * coeff * self.const)
        for u, cu in self.terms.items():
            for v, cv in other.terms.items():
                if u == v:
                    # x * x == x for binary variables.
                    objective.add_linear(u, scale * cu * cv)
                else:
                    objective.add_quadratic(u, v, scale * cu * cv)

    def add_into(self, objective: QuadraticObjective, scale: float = 1.0) -> None:
        """Accumulate ``scale * self`` into ``objective``."""
        objective.add_constant(scale * self.const)
        for var, coeff in self.terms.items():
            objective.add_linear(var, scale * coeff)
