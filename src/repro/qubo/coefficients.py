"""Section IV-C coefficient adjustment (noise optimisation).

The hardware normalisation of Eq. 6 divides all coefficients by
``d* = max(max|B|/2, max|J|)``, which flattens the energy landscape of
sub-clauses whose own coefficients are small.  The paper's fix: compute
``d_{i,j}`` (Eq. 7) for each sub-clause objective at α = 1, then raise
that sub-clause's coefficient to ``α_{i,j} = d*/d_{i,j} >= 1``.  This
widens the energy gap of the weak sub-clauses without changing ``d*``
(the worked Eq. 8/9 example in the paper raises ``α_{1,2}`` from 1 to
2) and needs just one extra evaluation of the objective function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.qubo.encoding import FormulaEncoding


@dataclass(frozen=True)
class CoefficientAdjustment:
    """Result of the Section IV-C adjustment.

    Attributes
    ----------
    encoding:
        The re-weighted encoding (``α_{i,j} = d*/d_{i,j}``).
    d_star:
        The Eq. 6 denominator measured on the α = 1 objective.
    alphas:
        The chosen coefficients keyed by ``(clause_index, part)``.
    d_values:
        The Eq. 7 per-sub-clause maxima, same keys.
    """

    encoding: FormulaEncoding
    d_star: float
    alphas: Dict[Tuple[int, int], float]
    d_values: Dict[Tuple[int, int], float]

    @property
    def max_alpha(self) -> float:
        """Largest coefficient chosen (1.0 when nothing was adjusted)."""
        return max(self.alphas.values(), default=1.0)


def adjust_coefficients(encoding: FormulaEncoding) -> CoefficientAdjustment:
    """Apply the Section IV-C adjustment to an α = 1 encoding.

    The input encoding's coefficients are read as the baseline; the
    ``d*`` of its summed objective decides the scaling targets
    (``α_{i,j} = d*/d_{i,j}``).

    The paper's method "increases the small coefficients in H_C while
    keeping d* the same": on multi-clause formulas the amplified
    sub-objectives overlap on shared variables, so naively applying the
    α values can push the summed maximum coefficient past d* — and the
    Eq. 6 normalisation would then *shrink* the energy landscape.  To
    honour the constraint, the α boost is scaled back (bisection on
    ``α' = 1 + s·(α − 1)``) until the adjusted objective's d* is within
    the original's.
    """
    d_star = encoding.objective.d_star()
    alphas: Dict[Tuple[int, int], float] = {}
    d_values: Dict[Tuple[int, int], float] = {}
    for sub in encoding.sub_objectives:
        key = (sub.clause_index, sub.part)
        d_ij = sub.d_value()
        d_values[key] = d_ij
        if d_ij <= 0.0 or d_star <= 0.0:
            alphas[key] = 1.0
        else:
            # Only ever *increase* weak coefficients: cross-clause
            # cancellation can leave the summed d* below an individual
            # sub-clause's d_ij, and scaling that sub-clause down would
            # shrink its penalty (never intended by Section IV-C).
            alphas[key] = max(1.0, d_star / d_ij)

    def scaled_alphas(scale: float) -> Dict[Tuple[int, int], float]:
        return {
            key: 1.0 + scale * (alpha - 1.0) for key, alpha in alphas.items()
        }

    adjusted = encoding.with_coefficients(alphas)
    if d_star > 0.0 and adjusted.objective.d_star() > d_star * (1.0 + 1e-9):
        lo, hi = 0.0, 1.0
        for _ in range(30):
            mid = (lo + hi) / 2.0
            candidate = encoding.with_coefficients(scaled_alphas(mid))
            if candidate.objective.d_star() <= d_star * (1.0 + 1e-9):
                lo = mid
            else:
                hi = mid
        alphas = scaled_alphas(lo)
        adjusted = encoding.with_coefficients(alphas)

    return CoefficientAdjustment(
        encoding=adjusted, d_star=d_star, alphas=alphas, d_values=d_values
    )
