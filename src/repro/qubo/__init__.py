"""QUBO encoding of 3-SAT (Section II-C / IV-C of the paper).

- :class:`~repro.qubo.ising.QuadraticObjective` — the two-degree
  objective function of Equation 2 (offset + linear B + quadratic J).
- :mod:`repro.qubo.encoding` — clause decomposition (Eq. 3), sub-clause
  objectives (Eq. 4), and the summed formula objective (Eq. 5).
- :mod:`repro.qubo.coefficients` — the Section IV-C noise optimisation
  that raises sub-clause coefficients to ``d*/d_ij``.
- :mod:`repro.qubo.normalization` — the Eq. 6 hardware normalisation to
  ``B ∈ [-2, 2]``, ``J ∈ [-1, 1]``.
- :mod:`repro.qubo.gap` — exhaustive energy-gap evaluation used by the
  Figure 15 experiments and the property tests.
"""

from repro.qubo.coefficients import CoefficientAdjustment, adjust_coefficients
from repro.qubo.encoding import (
    FormulaEncoding,
    SubClauseObjective,
    encode_clause,
    encode_formula,
)
from repro.qubo.gap import energy_gap, min_energy, min_energy_given_x
from repro.qubo.ising import QuadraticObjective
from repro.qubo.normalization import normalize

__all__ = [
    "CoefficientAdjustment",
    "FormulaEncoding",
    "QuadraticObjective",
    "SubClauseObjective",
    "adjust_coefficients",
    "encode_clause",
    "encode_formula",
    "energy_gap",
    "min_energy",
    "min_energy_given_x",
    "normalize",
]
