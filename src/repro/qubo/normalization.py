"""Hardware normalisation (Equation 6).

QA hardware accepts coefficients only in fixed ranges
(``B ∈ [-2, 2]``, ``J ∈ [-1, 1]`` on D-Wave 2000Q, Section II-D).  The
objective is scaled by ``1/d*`` with
``d* = max(max_x |B_x|/2, max_{x1,x2} |J_{x1,x2}|)`` so both ranges are
met simultaneously.  The scaling divides the energy gap by ``d*`` —
which is exactly the noise amplification Section IV-C's coefficient
adjustment fights.
"""

from __future__ import annotations

from typing import Tuple

from repro.qubo.ising import QuadraticObjective

#: Hardware coefficient ranges of the Chimera QPU model (Section II-D).
LINEAR_RANGE: Tuple[float, float] = (-2.0, 2.0)
QUADRATIC_RANGE: Tuple[float, float] = (-1.0, 1.0)


def normalize(objective: QuadraticObjective) -> Tuple[QuadraticObjective, float]:
    """Scale ``objective`` into the hardware coefficient ranges.

    Returns ``(normalized, d_star)``.  Energies of the normalised
    objective are ``1/d_star`` times the original; ``d_star`` is
    returned so callers can rescale read-back energies to problem units.
    An objective that is already in range (``d* <= 1``) is returned
    unscaled with ``d_star = 1`` — hardware ranges only force shrinking,
    never stretching.
    """
    d_star = objective.d_star()
    if d_star <= 1.0:
        return objective.copy(), 1.0
    return objective.scaled(1.0 / d_star), d_star


def in_hardware_range(objective: QuadraticObjective, tol: float = 1e-9) -> bool:
    """Whether every coefficient respects the hardware ranges."""
    lo_b, hi_b = LINEAR_RANGE
    lo_j, hi_j = QUADRATIC_RANGE
    if any(not (lo_b - tol <= c <= hi_b + tol) for c in objective.linear.values()):
        return False
    return all(
        lo_j - tol <= c <= hi_j + tol for c in objective.quadratic.values()
    )
