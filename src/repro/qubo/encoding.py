"""3-SAT → objective-function encoding (Equations 3–5).

Every 3-literal clause ``c_k = l1 ∨ l2 ∨ l3`` is decomposed with a
fresh auxiliary variable ``a_k`` into

    c_{k,1} = a_k ↔ (l1 ∨ l2)        (Eq. 3)
    c_{k,2} = l3 ∨ a_k

whose penalty objectives are (Eq. 4, with ``H_l = x`` / ``1 - x``):

    H_{c_k,1} = a + H1 + H2 − 2aH1 − 2aH2 + H1H2
    H_{c_k,2} = 1 − a − H3 + aH3

Each sub-objective is zero exactly when its sub-clause is satisfied and
positive otherwise; the formula objective is the coefficient-weighted
sum of Eq. 5.  Clauses of width 1 or 2 need no auxiliary variable: the
direct product penalty ``Π (1 − H_li)`` is already at most quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.qubo.ising import LinearExpr, QuadraticObjective
from repro.sat.cnf import CNF, Clause


@dataclass(frozen=True)
class SubClauseObjective:
    """One Eq. 4 sub-objective with its Eq. 5 coefficient.

    Attributes
    ----------
    clause_index:
        Index of the originating clause in the encoded clause list.
    part:
        1 or 2 (``c_{k,1}`` / ``c_{k,2}``); width-<=2 clauses have a
        single part numbered 1.
    objective:
        The *unweighted* penalty objective.
    coefficient:
        The α weight applied when summing into the formula objective.
    """

    clause_index: int
    part: int
    objective: QuadraticObjective
    coefficient: float = 1.0

    def with_coefficient(self, alpha: float) -> "SubClauseObjective":
        """Same sub-objective with a different α."""
        if alpha <= 0:
            raise ValueError(f"sub-clause coefficient must be positive, got {alpha}")
        return SubClauseObjective(self.clause_index, self.part, self.objective, alpha)

    def d_value(self) -> float:
        """The Eq. 7 per-sub-clause maximum coefficient ``d_{i,j}``
        (measured on the unweighted objective)."""
        return self.objective.d_star()


@dataclass(frozen=True)
class FormulaEncoding:
    """A complete Eq. 5 encoding of a clause set.

    Attributes
    ----------
    objective:
        The summed objective ``Σ α_{k,j} H_{c_k,j}``.
    sub_objectives:
        The individual weighted parts (ablation and Sec. IV-C input).
    aux_of_clause:
        Auxiliary variable introduced for each encoded clause (None for
        width-<=2 clauses).
    num_formula_vars:
        Variables ``1..num_formula_vars`` are formula variables; any
        higher index is auxiliary.
    clauses:
        The encoded clauses, in order.
    """

    objective: QuadraticObjective
    sub_objectives: Tuple[SubClauseObjective, ...]
    aux_of_clause: Tuple[Optional[int], ...]
    num_formula_vars: int
    clauses: Tuple[Clause, ...]

    @property
    def aux_variables(self) -> Tuple[int, ...]:
        """All auxiliary variables, in clause order."""
        return tuple(a for a in self.aux_of_clause if a is not None)

    @property
    def num_variables(self) -> int:
        """Formula + auxiliary variable count in the objective."""
        return len(self.objective.variables)

    def with_coefficients(self, alphas: Dict[Tuple[int, int], float]) -> "FormulaEncoding":
        """Rebuild the summed objective with new α values.

        ``alphas`` maps ``(clause_index, part)`` to the coefficient;
        missing keys keep their current value.
        """
        new_subs: List[SubClauseObjective] = []
        total = QuadraticObjective()
        for sub in self.sub_objectives:
            alpha = alphas.get((sub.clause_index, sub.part), sub.coefficient)
            new_sub = sub.with_coefficient(alpha)
            new_subs.append(new_sub)
            total.add_objective(new_sub.objective, scale=new_sub.coefficient)
        return FormulaEncoding(
            objective=total,
            sub_objectives=tuple(new_subs),
            aux_of_clause=self.aux_of_clause,
            num_formula_vars=self.num_formula_vars,
            clauses=self.clauses,
        )


def encode_clause(
    clause: Clause, aux_var: Optional[int], clause_index: int = 0
) -> List[SubClauseObjective]:
    """Encode one clause into its Eq. 4 sub-objectives (α = 1).

    ``aux_var`` must be provided for 3-literal clauses and must be None
    for narrower ones.
    """
    lits = clause.lits
    if len(lits) > 3:
        raise ValueError(
            f"encode_clause expects width <= 3 (reduce with repro.sat.to_3sat), "
            f"got width {len(lits)}"
        )
    if clause.is_empty:
        raise ValueError("cannot encode the empty clause")
    if clause.is_tautology:
        raise ValueError(f"cannot encode tautological clause {clause}")

    exprs = [LinearExpr.literal(lit.var, lit.positive) for lit in lits]

    if len(lits) <= 2:
        if aux_var is not None:
            raise ValueError("width-<=2 clauses take no auxiliary variable")
        # Penalty Π (1 - H_li): 1 iff every literal is false.
        penalty = QuadraticObjective()
        one_minus = [
            LinearExpr(1.0 - e.const, {v: -c for v, c in e.terms.items()})
            for e in exprs
        ]
        if len(one_minus) == 1:
            one_minus[0].add_into(penalty)
        else:
            one_minus[0].multiply_into(one_minus[1], penalty)
        return [SubClauseObjective(clause_index, 1, penalty)]

    if aux_var is None:
        raise ValueError("3-literal clauses require an auxiliary variable")
    h1, h2, h3 = exprs
    a = LinearExpr.variable(aux_var)

    # H_{c_k,1} = a + H1 + H2 - 2 a H1 - 2 a H2 + H1 H2
    part1 = QuadraticObjective()
    a.add_into(part1)
    h1.add_into(part1)
    h2.add_into(part1)
    a.multiply_into(h1, part1, scale=-2.0)
    a.multiply_into(h2, part1, scale=-2.0)
    h1.multiply_into(h2, part1)

    # H_{c_k,2} = 1 - a - H3 + a H3
    part2 = QuadraticObjective(offset=1.0)
    a.add_into(part2, scale=-1.0)
    h3.add_into(part2, scale=-1.0)
    a.multiply_into(h3, part2)

    return [
        SubClauseObjective(clause_index, 1, part1),
        SubClauseObjective(clause_index, 2, part2),
    ]


def encode_formula(
    clauses: Sequence[Clause],
    num_formula_vars: int,
    first_aux_var: Optional[int] = None,
) -> FormulaEncoding:
    """Encode a clause list into the Eq. 5 formula objective (α = 1).

    Parameters
    ----------
    clauses:
        Width-<=3 clauses (use :func:`repro.sat.to_3sat` first if
        needed).  This can be a *subset* of a formula — HyQSAT's
        frontend encodes only the clause queue.
    num_formula_vars:
        The highest formula variable index (aux numbering starts above).
    first_aux_var:
        Override the first auxiliary index (defaults to
        ``num_formula_vars + 1``).
    """
    max_mentioned = max(
        (lit.var for clause in clauses for lit in clause), default=0
    )
    if max_mentioned > num_formula_vars:
        raise ValueError(
            f"clause mentions variable {max_mentioned} > num_formula_vars="
            f"{num_formula_vars}"
        )
    next_aux = first_aux_var if first_aux_var is not None else num_formula_vars + 1
    subs: List[SubClauseObjective] = []
    aux_list: List[Optional[int]] = []
    total = QuadraticObjective()
    for index, clause in enumerate(clauses):
        aux: Optional[int] = None
        if len(clause) == 3:
            aux = next_aux
            next_aux += 1
        for sub in encode_clause(clause, aux, clause_index=index):
            subs.append(sub)
            total.add_objective(sub.objective, scale=sub.coefficient)
        aux_list.append(aux)
    return FormulaEncoding(
        objective=total,
        sub_objectives=tuple(subs),
        aux_of_clause=tuple(aux_list),
        num_formula_vars=num_formula_vars,
        clauses=tuple(clauses),
    )


def encode_cnf(formula: CNF) -> FormulaEncoding:
    """Encode an entire :class:`~repro.sat.cnf.CNF` formula."""
    return encode_formula(list(formula.clauses), formula.num_vars)
