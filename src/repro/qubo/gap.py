"""Exhaustive energy evaluation and the Section IV-C energy gap.

The *energy gap* is "the minimum output of the objective function when
the clause (set) is unsatisfiable": the lowest energy over formula
assignments that violate at least one encoded clause, with auxiliary
variables chosen optimally.  A wider gap means noise is less likely to
drag the annealer into a state that misreports satisfiability.

Auxiliary variables appear only in the sub-objectives of their own
clause, so the inner minimisation over A decomposes per clause; the
outer enumeration over formula assignments is exponential and these
helpers are intentionally restricted to small instances (tests,
Figure 15 sweeps).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Tuple

from repro.qubo.encoding import FormulaEncoding
from repro.sat.assignment import Assignment

_MAX_EXHAUSTIVE_VARS = 22


def _formula_vars(encoding: FormulaEncoding) -> List[int]:
    # Union of objective and clause variables: coefficient cancellation
    # (e.g. encoding both (x) and (¬x)) can erase a variable from the
    # summed objective even though the clauses still mention it.
    mentioned = {
        v for v in encoding.objective.variables if v <= encoding.num_formula_vars
    }
    for clause in encoding.clauses:
        mentioned.update(clause.variables)
    return sorted(mentioned)


def min_energy_given_x(
    encoding: FormulaEncoding, x_assignment: Dict[int, int]
) -> Tuple[float, Dict[int, int]]:
    """Minimum energy over auxiliary variables for fixed formula bits.

    Returns ``(energy, full_assignment)`` where the full assignment
    includes the optimal auxiliary values.  Exploits that each
    auxiliary variable occurs in exactly one clause's sub-objectives,
    so each can be optimised independently.
    """
    full: Dict[int, int] = dict(x_assignment)
    # Group weighted sub-objectives by their auxiliary variable.
    by_aux: Dict[Optional[int], List] = {}
    for sub, aux in _subs_with_aux(encoding):
        by_aux.setdefault(aux, []).append(sub)

    energy = 0.0
    for aux, subs in by_aux.items():
        if aux is None:
            for sub in subs:
                energy += sub.coefficient * sub.objective.energy(full)
            continue
        best_value, best_energy = 0, None
        for candidate in (0, 1):
            full[aux] = candidate
            local = sum(
                sub.coefficient * sub.objective.energy(full) for sub in subs
            )
            if best_energy is None or local < best_energy:
                best_energy, best_value = local, candidate
        full[aux] = best_value
        energy += best_energy
    return energy, full


def _subs_with_aux(encoding: FormulaEncoding):
    """Pair each sub-objective with its clause's auxiliary variable."""
    for sub in encoding.sub_objectives:
        yield sub, encoding.aux_of_clause[sub.clause_index]


def min_energy(encoding: FormulaEncoding) -> Tuple[float, Assignment]:
    """Global minimum of the encoding over all variables.

    For a correct Eq. 5 encoding this is 0 exactly when the encoded
    clause set is satisfiable.
    """
    variables = _formula_vars(encoding)
    if len(variables) > _MAX_EXHAUSTIVE_VARS:
        raise ValueError(
            f"exhaustive evaluation limited to {_MAX_EXHAUSTIVE_VARS} formula "
            f"variables, got {len(variables)}"
        )
    best: Optional[Tuple[float, Dict[int, int]]] = None
    for bits in product((0, 1), repeat=len(variables)):
        x = dict(zip(variables, bits))
        energy, full = min_energy_given_x(encoding, x)
        if best is None or energy < best[0]:
            best = (energy, full)
    assert best is not None, "encoding has no formula variables"
    return best[0], Assignment({v: bool(b) for v, b in best[1].items()})


def energy_gap(encoding: FormulaEncoding) -> float:
    """Minimum energy over formula assignments violating some clause.

    Returns ``inf`` if every assignment satisfies all encoded clauses
    (no unsatisfying region exists to measure).
    """
    variables = _formula_vars(encoding)
    if len(variables) > _MAX_EXHAUSTIVE_VARS:
        raise ValueError(
            f"exhaustive evaluation limited to {_MAX_EXHAUSTIVE_VARS} formula "
            f"variables, got {len(variables)}"
        )
    gap = float("inf")
    for bits in product((0, 1), repeat=len(variables)):
        x = dict(zip(variables, bits))
        assignment = Assignment({v: bool(b) for v, b in x.items()})
        if all(assignment.satisfies_clause(c) for c in encoding.clauses):
            continue
        energy, _ = min_energy_given_x(encoding, x)
        gap = min(gap, energy)
    return gap
