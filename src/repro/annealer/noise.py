"""NISQ noise model for the annealer simulator.

Three noise channels bracket the effects the paper discusses
(Section I / IV-C): *coefficient noise* perturbs the programmed
biases/couplings before the anneal (flux noise, integrated control
errors — the channel the Section IV-C coefficient adjustment defends
against); *thermal noise* raises the sampler's final temperature so it
settles above the ground state with some probability; *readout flips*
corrupt individual qubit measurements after the anneal (the channel
Table III's 10% bit-flipping scalability study uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Noise channel strengths.

    Attributes
    ----------
    coefficient_std:
        Std-dev of i.i.d. Gaussian noise added to every programmed
        linear and quadratic coefficient (in post-normalisation
        hardware units, so 0.05 means 5% of the J range).
    readout_flip_prob:
        Per-qubit probability of flipping the measured value.
    thermal_beta:
        Final inverse temperature of the anneal; lower is hotter/
        noisier.  ``None`` lets the sampler pick its schedule freely
        (effectively noise-free settling).
    """

    coefficient_std: float = 0.0
    readout_flip_prob: float = 0.0
    thermal_beta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.coefficient_std < 0:
            raise ValueError("coefficient_std must be non-negative")
        if not 0.0 <= self.readout_flip_prob <= 1.0:
            raise ValueError("readout_flip_prob must be in [0, 1]")
        if self.thermal_beta is not None and self.thermal_beta <= 0:
            raise ValueError("thermal_beta must be positive")

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """The paper's 'noise-free HyQSAT simulator' setting (Table I)."""
        return cls(coefficient_std=0.0, readout_flip_prob=0.0, thermal_beta=None)

    @classmethod
    def dwave_2000q(cls) -> "NoiseModel":
        """A calibrated stand-in for the real-device runs (Table II):
        mild coefficient noise plus occasional readout flips, enough to
        reproduce the Figure 8 energy-distribution overlap."""
        return cls(coefficient_std=0.03, readout_flip_prob=0.01, thermal_beta=4.0)

    @classmethod
    def bit_flip(cls, probability: float) -> "NoiseModel":
        """Pure readout flipping (the Table III scalability setting)."""
        return cls(coefficient_std=0.0, readout_flip_prob=probability, thermal_beta=None)

    @property
    def is_noiseless(self) -> bool:
        """True when every channel is off."""
        return (
            self.coefficient_std == 0.0
            and self.readout_flip_prob == 0.0
            and self.thermal_beta is None
        )

    def perturb_coefficients(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply coefficient noise to an array of programmed values."""
        if self.coefficient_std == 0.0:
            return values
        return values + rng.normal(0.0, self.coefficient_std, size=values.shape)

    def flip_readout(
        self, bits: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply readout flips to a 0/1 bit array."""
        if self.readout_flip_prob == 0.0:
            return bits
        flips = rng.random(bits.shape) < self.readout_flip_prob
        return np.where(flips, 1 - bits, bits)
