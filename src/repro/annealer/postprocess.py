"""Logical-space post-processing (multi-qubit correction).

After chain breaks are resolved by majority vote, the unembedded state
can usually be improved by single-variable moves *in logical space* —
the "multi-qubit correction" / greedy-descent calibration family the
paper cites ([6], [58]).  Without it, a simulated (or real) annealer
reports energies dominated by chain-break artefacts rather than by the
satisfiability structure the HyQSAT backend interprets.

The descent is exact first-improvement local search on the logical
objective, visiting variables in a seeded random order until a local
minimum is reached (or the sweep cap hits).

:class:`LogicalDescender` precompiles the objective's dense arrays once
so a device processing many reads of the same request pays the
objective → matrix conversion a single time; the
:func:`logical_greedy_descent` function remains as the one-shot
wrapper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.qubo.ising import QuadraticObjective
from repro.sat.assignment import Assignment


class LogicalDescender:
    """Greedy descent over one logical objective, arrays built once.

    The variable order, bias vector, and dense symmetric coupling
    matrix are precomputed at construction; :meth:`descend` then costs
    only the sweeps themselves.  Use one instance per
    :class:`~repro.annealer.device.AnnealRequest` (the device does)
    instead of re-deriving the arrays for every read.
    """

    def __init__(self, objective: QuadraticObjective):
        self.objective = objective
        self.order: List[int] = sorted(objective.variables)
        self.index: Dict[int, int] = {var: i for i, var in enumerate(self.order)}
        n = len(self.order)
        self.num_variables = n
        self.bias = np.zeros(n)
        self.matrix = np.zeros((n, n))
        for var, coeff in objective.linear.items():
            self.bias[self.index[var]] = coeff
        for (u, v), coeff in objective.quadratic.items():
            self.matrix[self.index[u], self.index[v]] += coeff
            self.matrix[self.index[v], self.index[u]] += coeff

    def state_of(self, assignment: Assignment) -> np.ndarray:
        """Dense 0/1 state of ``assignment`` over this objective's
        variables (absent variables are treated as False)."""
        state = np.zeros(self.num_variables)
        for var, i in self.index.items():
            if assignment.get(var, False):
                state[i] = 1.0
        return state

    def energy_of(self, state: np.ndarray) -> float:
        """Objective energy of a dense 0/1 state."""
        return float(
            self.objective.offset
            + state @ self.bias
            + state @ (self.matrix @ state) / 2.0
        )

    def energies(self, states: np.ndarray) -> np.ndarray:
        """Objective energies of an ``(R, n)`` batch of dense states."""
        states = np.asarray(states, dtype=float)
        quad = np.einsum("ij,ij->i", states, states @ self.matrix)
        return self.objective.offset + states @ self.bias + 0.5 * quad

    def descend(
        self,
        assignment: Assignment,
        rng: np.random.Generator,
        max_sweeps: int = 32,
    ) -> Tuple[Assignment, float]:
        """Descend ``assignment`` to a local minimum of the objective.

        Returns ``(improved_assignment, energy)``; the input assignment
        is not mutated.
        """
        n = self.num_variables
        if n == 0:
            return assignment.copy(), self.objective.offset

        state = self.state_of(assignment)
        # Incremental local fields: flipping i changes every field by a
        # column of the coupling matrix, so a full sweep is O(n^2) worst
        # case instead of O(n^2) *per variable*.
        field = self.bias + self.matrix @ state
        for _ in range(max_sweeps):
            improved = False
            for i in rng.permutation(n):
                delta = (1.0 - 2.0 * state[i]) * field[i]
                if delta < -1e-12:
                    sign = 1.0 - 2.0 * state[i]
                    state[i] = 1.0 - state[i]
                    field += sign * self.matrix[i]
                    improved = True
            if not improved:
                break

        out = assignment.copy()
        for var, i in self.index.items():
            out.assign(var, bool(state[i]))
        energy = self.objective.energy(
            {var: int(state[self.index[var]]) for var in self.order}
        )
        return out, energy


def logical_greedy_descent(
    objective: QuadraticObjective,
    assignment: Assignment,
    rng: np.random.Generator,
    max_sweeps: int = 32,
) -> Tuple[Assignment, float]:
    """Descend ``assignment`` to a local minimum of ``objective``.

    One-shot convenience over :class:`LogicalDescender`; returns
    ``(improved_assignment, energy)`` and leaves the input unmutated.
    """
    return LogicalDescender(objective).descend(assignment, rng, max_sweeps=max_sweeps)
