"""Logical-space post-processing (multi-qubit correction).

After chain breaks are resolved by majority vote, the unembedded state
can usually be improved by single-variable moves *in logical space* —
the "multi-qubit correction" / greedy-descent calibration family the
paper cites ([6], [58]).  Without it, a simulated (or real) annealer
reports energies dominated by chain-break artefacts rather than by the
satisfiability structure the HyQSAT backend interprets.

The descent is exact first-improvement local search on the logical
objective, visiting variables in a seeded random order until a local
minimum is reached (or the sweep cap hits).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.qubo.ising import QuadraticObjective
from repro.sat.assignment import Assignment


def logical_greedy_descent(
    objective: QuadraticObjective,
    assignment: Assignment,
    rng: np.random.Generator,
    max_sweeps: int = 32,
) -> Tuple[Assignment, float]:
    """Descend ``assignment`` to a local minimum of ``objective``.

    Returns ``(improved_assignment, energy)``; the input assignment is
    not mutated.  Variables absent from the assignment are treated as
    False.
    """
    order = sorted(objective.variables)
    index = {var: i for i, var in enumerate(order)}
    n = len(order)
    if n == 0:
        return assignment.copy(), objective.offset

    state = np.zeros(n)
    for var, i in index.items():
        if assignment.get(var, False):
            state[i] = 1.0

    b = np.zeros(n)
    matrix = np.zeros((n, n))
    for var, coeff in objective.linear.items():
        b[index[var]] = coeff
    for (u, v), coeff in objective.quadratic.items():
        matrix[index[u], index[v]] += coeff
        matrix[index[v], index[u]] += coeff

    # Incremental local fields: flipping i changes every field by a
    # column of the coupling matrix, so a full sweep is O(n^2) worst
    # case instead of O(n^2) *per variable*.
    field = b + matrix @ state
    for _ in range(max_sweeps):
        improved = False
        for i in rng.permutation(n):
            delta = (1.0 - 2.0 * state[i]) * field[i]
            if delta < -1e-12:
                sign = 1.0 - 2.0 * state[i]
                state[i] = 1.0 - state[i]
                field += sign * matrix[i]
                improved = True
        if not improved:
            break

    out = assignment.copy()
    for var, i in index.items():
        out.assign(var, bool(state[i]))
    energy = objective.energy({var: int(state[index[var]]) for var in order})
    return out, energy
