"""The annealer device facade.

:class:`AnnealerDevice` bundles a hardware topology, a noise model, a
timing model, and the SA sampler behind the interface HyQSAT's
frontend/backend pair consumes: program an embedded problem, draw
samples, read back logical assignments with their *problem-unit*
energies and the modelled device time.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.annealer.embedded import EmbeddedProblem, build_embedded_problem
from repro.annealer.faults import (
    CalibrationDrift,
    FaultInjector,
    FaultModel,
    ProgrammingError,
    ReadoutTimeout,
)
from repro.annealer.noise import NoiseModel
from repro.annealer.postprocess import LogicalDescender
from repro.annealer.sampler import SamplerConfig, SimulatedAnnealingSampler
from repro.annealer.timing import QpuTimingModel
from repro.annealer.unembed import majority_vote_unembed
from repro.embedding.base import Edge, Embedding
from repro.qubo.ising import QuadraticObjective
from repro.sat.assignment import Assignment
from repro.topology.chimera import ChimeraGraph


@dataclass(frozen=True)
class AnnealRequest:
    """One problem programmed onto the device.

    ``objective`` is the *normalised* logical objective to run;
    ``energy_scale`` (the Eq. 6 ``d*``) converts read-back energies to
    problem units so the backend's confidence intervals are comparable
    across problems.  ``compiled`` optionally carries a precompiled
    :class:`EmbeddedProblem` (e.g. from the frontend's compilation
    cache); the device uses it when its recorded chain strength matches
    the device's own, skipping the embed-graph compile entirely.
    """

    objective: QuadraticObjective
    embedding: Embedding
    edge_couplers: Mapping[Edge, Sequence[Tuple[int, int]]]
    energy_scale: float = 1.0
    num_reads: int = 1
    compiled: Optional[EmbeddedProblem] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not math.isfinite(self.energy_scale):
            raise ValueError(
                f"energy_scale must be finite, got {self.energy_scale}"
            )
        if self.energy_scale <= 0:
            raise ValueError("energy_scale must be positive")
        if self.num_reads < 1:
            raise ValueError("num_reads must be >= 1")
        variables = self.objective.variables
        if not variables:
            raise ValueError(
                "objective has no variables: nothing to anneal (an empty "
                "or fully-conditioned clause queue must be skipped upstream)"
            )
        if len(self.embedding) == 0:
            raise ValueError("embedding is empty")
        missing = sorted(v for v in variables if v not in self.embedding)
        if missing:
            raise ValueError(
                f"objective variables without a chain: {missing[:5]}"
            )
        empty_chains = [
            v for v in self.embedding if not self.embedding.chain_of(v)
        ]
        if empty_chains:
            raise ValueError(
                f"embedding has empty chains for variables: {empty_chains[:5]}"
            )


@dataclass(frozen=True)
class AnnealSample:
    """One unembedded read.

    ``energy`` is the logical objective evaluated at the unembedded
    assignment, rescaled to problem units — the quantity Figure 8's
    distributions and the backend's bands are defined on.
    """

    assignment: Assignment
    energy: float
    chain_break_fraction: float


@dataclass(frozen=True)
class AnnealResult:
    """All samples of one device call plus modelled device time.

    ``dropped_reads`` counts reads lost to the fault injector's
    per-read dropout channel (0 on a fault-free device); the device
    still bills their time, as real hardware does.
    """

    samples: Tuple[AnnealSample, ...]
    qpu_time_us: float
    dropped_reads: int = 0

    @property
    def best(self) -> AnnealSample:
        """The lowest-energy sample."""
        return min(self.samples, key=lambda s: s.energy)

    @property
    def energies(self) -> List[float]:
        """Energies of all samples, in read order."""
        return [s.energy for s in self.samples]


class AnnealerDevice:
    """A simulated quantum annealer with a fixed topology and noise.

    When a :class:`~repro.annealer.faults.FaultModel` is supplied,
    :meth:`run` may raise the typed faults of
    :mod:`repro.annealer.faults`; wrap the device in
    :class:`~repro.resilience.ResilientDevice` to get retries,
    deadlines, and circuit breaking on top.
    """

    def __init__(
        self,
        hardware: Optional[ChimeraGraph] = None,
        noise: Optional[NoiseModel] = None,
        timing: Optional[QpuTimingModel] = None,
        sampler_config: Optional[SamplerConfig] = None,
        chain_strength: float = 1.0,
        multi_qubit_correction: bool = True,
        seed: int = 0,
        faults: Optional[FaultModel] = None,
        fault_seed: Optional[int] = None,
    ):
        self.hardware = hardware or ChimeraGraph(16, 16, 4)
        self.noise = noise or NoiseModel.noiseless()
        self.timing = timing or QpuTimingModel()
        self.sampler_config = sampler_config or SamplerConfig()
        self.chain_strength = chain_strength
        self.multi_qubit_correction = multi_qubit_correction
        self.seed = seed
        self._call_count = 0
        #: Cumulative modelled device time (µs) across every call,
        #: including calls lost to readout faults — the monotonic
        #: QPU-clock source for the observability layer on a bare
        #: (unwrapped) device.
        self.total_modelled_us = 0.0
        from repro.observability import DISABLED

        self.observability = DISABLED
        self.fault_injector: Optional[FaultInjector] = None
        if faults is not None and not faults.is_faultless:
            self.fault_injector = FaultInjector(
                faults, seed if fault_seed is None else fault_seed
            )

    def recalibrate(self) -> None:
        """Clear accumulated calibration drift (no-op without faults)."""
        if self.fault_injector is not None:
            self.fault_injector.recalibrate()

    def set_observability(self, observability) -> None:
        """Attach a tracing/metrics bundle (the hybrid solver calls
        this so device-side compiles appear in the span tree)."""
        from repro.observability import DISABLED, declare_solver_metrics

        self.observability = observability or DISABLED
        if self.observability.metrics is not None:
            declare_solver_metrics(self.observability.metrics)

    def run(self, request: AnnealRequest) -> AnnealResult:
        """Program, anneal, read out, and unembed.

        Raises
        ------
        ProgrammingError, ReadoutTimeout, CalibrationDrift
            Only when the device was built with a fault model; see
            :mod:`repro.annealer.faults` for the channel semantics.
        """
        call = None
        if self.fault_injector is not None:
            call = self.fault_injector.begin_call(request.num_reads)
            if call.programming_failed:
                raise ProgrammingError(
                    "problem failed to program onto the chip",
                    call_index=call.call_index,
                )
            if self.fault_injector.drifted_out:
                raise CalibrationDrift(
                    "device drifted out of calibration "
                    f"(|offset| = {abs(call.drift):.4f})",
                    call_index=call.call_index,
                    drift=call.drift,
                )

        obs = self.observability
        problem = request.compiled
        if problem is None or problem.chain_strength != self.chain_strength:
            with obs.tracer.span("compile", where="device"):
                problem = build_embedded_problem(
                    request.objective,
                    request.embedding,
                    self.hardware,
                    request.edge_couplers,
                    chain_strength=self.chain_strength,
                )
            if obs.metrics is not None:
                obs.metrics.counter("hyqsat_device_compile_total").labels(
                    source="device"
                ).inc()
        elif obs.metrics is not None:
            obs.metrics.counter("hyqsat_device_compile_total").labels(
                source="precompiled"
            ).inc()
        if call is not None and call.drift != 0.0:
            # Sub-threshold calibration drift: a persistent bias offset
            # on every programmed linear coefficient.
            problem = dataclasses.replace(
                problem, linear=problem.linear + call.drift
            )
        # A fresh per-call seed keeps repeated calls independent while
        # the device as a whole stays reproducible.
        self._call_count += 1
        call_seed = (self.seed * 1_000_003 + self._call_count) % (2**32)
        sampler = SimulatedAnnealingSampler(
            config=self.sampler_config, noise=self.noise, seed=call_seed
        )
        rng = np.random.default_rng(call_seed + 1)

        # The descender's dense logical arrays are built once per
        # request and shared across every read of this call.
        descender = (
            LogicalDescender(request.objective)
            if self.multi_qubit_correction
            else None
        )
        samples: List[AnnealSample] = []
        for bits in sampler.sample(problem, num_reads=request.num_reads):
            assignment, break_fraction = majority_vote_unembed(problem, bits, rng)
            if descender is not None:
                assignment, logical_energy = descender.descend(assignment, rng)
            else:
                logical_energy = request.objective.energy(
                    {v: int(assignment[v]) for v in request.objective.variables}
                )
            samples.append(
                AnnealSample(
                    assignment=assignment,
                    energy=logical_energy * request.energy_scale,
                    chain_break_fraction=break_fraction,
                )
            )
        full_time_us = self.timing.total_us(request.num_reads)
        self.total_modelled_us += full_time_us

        dropped = 0
        if call is not None:
            if call.timeout_after_reads is not None:
                raise ReadoutTimeout(
                    f"call timed out after {call.timeout_after_reads} of "
                    f"{request.num_reads} reads",
                    call_index=call.call_index,
                    partial=samples[: call.timeout_after_reads],
                    elapsed_us=full_time_us,
                )
            if call.dropped_reads:
                kept = [
                    s
                    for i, s in enumerate(samples)
                    if i not in set(call.dropped_reads)
                ]
                dropped = len(samples) - len(kept)
                if not kept:
                    raise ReadoutTimeout(
                        f"all {request.num_reads} reads dropped",
                        call_index=call.call_index,
                        partial=(),
                        elapsed_us=full_time_us,
                    )
                samples = kept
        return AnnealResult(
            samples=tuple(samples),
            qpu_time_us=full_time_us,
            dropped_reads=dropped,
        )
