"""Compiling a logical objective onto the embedded hardware graph.

Given a (normalised) logical objective and a chain embedding, the
physical problem is built the way a D-Wave front-end does:

- each logical linear bias ``B_v`` is spread uniformly over the qubits
  of v's chain;
- each logical quadratic coefficient ``J_uv`` is spread uniformly over
  the hardware couplers that join the two chains (found at embed time);
- every intra-chain hardware coupler receives an equality penalty of
  ``chain_strength`` — in 0/1 form, ``cs·(x_a + x_b − 2 x_a x_b)`` —
  which is zero when the chain agrees and positive when it breaks.

The result is a compact indexed problem over only the *used* qubits,
ready for the vectorised sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.embedding.base import Edge, Embedding
from repro.qubo.ising import QuadraticObjective
from repro.topology.chimera import ChimeraGraph


def batch_energies(
    linear: np.ndarray,
    couplings: sparse.csr_matrix,
    states: np.ndarray,
    offset: float = 0.0,
) -> np.ndarray:
    """Energies of a ``(R, n)`` batch of 0/1 states in one sparse pass.

    ``couplings`` must be the *symmetric* sparse coupling matrix (both
    ``(i, j)`` and ``(j, i)`` populated), so the quadratic term is
    ``x @ C @ x / 2``.  This is the batch-energy kernel shared by the
    sampler's best-replica selection and :meth:`EmbeddedProblem.energies`.
    """
    states = np.asarray(states, dtype=float)
    if states.ndim != 2:
        raise ValueError(f"states must be (R, n), got shape {states.shape}")
    quad = couplings @ states.T  # (n, R)
    return offset + states @ linear + 0.5 * np.einsum("ij,ji->i", states, quad)


@dataclass(frozen=True)
class EmbeddedProblem:
    """A physical QUBO over the used qubits, in dense-index form.

    Attributes
    ----------
    qubits:
        The used physical qubit ids; index ``i`` in the arrays refers
        to ``qubits[i]``.
    linear:
        Per-qubit bias vector (length ``len(qubits)``).
    couplings:
        ``(i, j, weight)`` rows over dense indices, including both
        problem couplers and chain couplers.
    chain_edges:
        The subset of coupling index pairs that are intra-chain.
    chain_of_index:
        Dense index -> logical variable.
    offset:
        Constant term of the logical objective (carried through so
        physical energies are comparable).
    chain_strength:
        The chain penalty this problem was compiled with (``None`` for
        hand-built problems); lets a device recognise a precompiled
        problem as matching its own setting.
    """

    qubits: Tuple[int, ...]
    linear: np.ndarray
    couplings: Tuple[Tuple[int, int, float], ...]
    chain_edges: Tuple[Tuple[int, int], ...]
    chain_of_index: Tuple[int, ...]
    offset: float
    chain_strength: Optional[float] = None

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits in play."""
        return len(self.qubits)

    @cached_property
    def coupling_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows_i, rows_j, weights)`` of the couplings, computed once.

        One row per physical coupler (``i < j`` direction only) — the
        layout the sampler's programming-noise channel draws over.
        """
        if not self.couplings:
            empty = np.zeros(0)
            return empty.astype(int), empty.astype(int), empty
        rows_i = np.array([c[0] for c in self.couplings])
        rows_j = np.array([c[1] for c in self.couplings])
        weights = np.array([c[2] for c in self.couplings])
        return rows_i, rows_j, weights

    @cached_property
    def couplings_csr(self) -> sparse.csr_matrix:
        """Symmetric CSR coupling matrix, computed once and cached.

        Both ``(i, j)`` and ``(j, i)`` carry the coupler weight, so
        local fields are one ``matrix @ states`` product and energies
        use the ``x @ C @ x / 2`` convention of :func:`batch_energies`.
        """
        n = self.num_qubits
        rows_i, rows_j, weights = self.coupling_arrays
        if weights.size == 0:
            return sparse.csr_matrix((n, n))
        return sparse.coo_matrix(
            (
                np.concatenate([weights, weights]),
                (np.concatenate([rows_i, rows_j]), np.concatenate([rows_j, rows_i])),
            ),
            shape=(n, n),
        ).tocsr()

    def energy(self, bits: np.ndarray) -> float:
        """Physical energy (including chain penalties) of a 0/1 vector."""
        state = np.asarray(bits, dtype=float)
        return float(
            batch_energies(self.linear, self.couplings_csr, state[None, :], self.offset)[0]
        )

    def energies(self, states: np.ndarray) -> np.ndarray:
        """Physical energies of a ``(R, n)`` batch of 0/1 states."""
        return batch_energies(self.linear, self.couplings_csr, states, self.offset)


def build_embedded_problem(
    objective: QuadraticObjective,
    embedding: Embedding,
    hardware: ChimeraGraph,
    edge_couplers: Mapping[Edge, Sequence[Tuple[int, int]]],
    chain_strength: float = 2.0,
) -> EmbeddedProblem:
    """Compile ``objective`` onto the hardware through ``embedding``.

    Raises ``ValueError`` if the objective mentions an unembedded
    variable or a quadratic term has no realising coupler.
    """
    if chain_strength <= 0:
        raise ValueError(f"chain_strength must be positive, got {chain_strength}")
    missing = [v for v in objective.variables if v not in embedding]
    if missing:
        raise ValueError(f"objective variables not embedded: {missing[:5]}")

    qubits: List[int] = []
    index_of: Dict[int, int] = {}
    chain_of_index: List[int] = []
    for var in embedding.variables:
        for qubit in embedding.chain_of(var):
            index_of[qubit] = len(qubits)
            qubits.append(qubit)
            chain_of_index.append(var)

    linear = np.zeros(len(qubits))
    coupling_acc: Dict[Tuple[int, int], float] = {}

    def add_coupling(i: int, j: int, weight: float) -> None:
        key = (i, j) if i < j else (j, i)
        coupling_acc[key] = coupling_acc.get(key, 0.0) + weight

    # Linear biases spread over chains.
    for var, bias in objective.linear.items():
        chain = embedding.chain_of(var)
        share = bias / len(chain)
        for qubit in chain:
            linear[index_of[qubit]] += share

    # Problem couplings spread over realising couplers.
    for (u, v), weight in objective.quadratic.items():
        key: Edge = (u, v) if u < v else (v, u)
        couplers = list(edge_couplers.get(key, ()))
        if not couplers:
            raise ValueError(f"no hardware coupler realises problem edge {key}")
        share = weight / len(couplers)
        for qa, qb in couplers:
            add_coupling(index_of[qa], index_of[qb], share)

    # Chain equality penalties on every intra-chain hardware coupler.
    chain_edge_keys: List[Tuple[int, int]] = []
    for var in embedding.variables:
        chain = embedding.chain_of(var)
        members = set(chain)
        for qubit in chain:
            for other in hardware.neighbors(qubit):
                if other in members and qubit < other:
                    i, j = index_of[qubit], index_of[other]
                    linear[i] += chain_strength
                    linear[j] += chain_strength
                    add_coupling(i, j, -2.0 * chain_strength)
                    chain_edge_keys.append((min(i, j), max(i, j)))

    couplings = tuple(
        (i, j, w) for (i, j), w in sorted(coupling_acc.items()) if w != 0.0
    )
    return EmbeddedProblem(
        qubits=tuple(qubits),
        linear=linear,
        couplings=couplings,
        chain_edges=tuple(sorted(set(chain_edge_keys))),
        chain_of_index=tuple(chain_of_index),
        offset=objective.offset,
        chain_strength=chain_strength,
    )
