"""Classical-quantum switching-latency model (Section VII-A).

The paper's discussion argues the CPU↔QPU switching overhead can be
hidden: with the CDCL part on an FPGA peripheral the communication
time vanishes, pulse pre-processing takes ~160 ns on customised FPGAs,
and real-time feedback bounds post-processing at ~500 ns — all within
the 130 µs QA execution window.  This model quantifies that argument:
it prices one hybrid iteration under either a network-attached QPU
(the paper's experimental setting, ~ms round trips) or the projected
FPGA-integrated deployment, so the Figure 1 / Table II accounting can
be re-run under both assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annealer.timing import QpuTimingModel


@dataclass(frozen=True)
class SwitchingLatencyModel:
    """Per-QA-call switching overheads (microseconds)."""

    communication_us: float = 0.0
    preprocessing_us: float = 0.16   # pulse generation, Section VII-A
    postprocessing_us: float = 0.5   # real-time feedback readout

    def __post_init__(self) -> None:
        for name in ("communication_us", "preprocessing_us", "postprocessing_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def internet_api(cls) -> "SwitchingLatencyModel":
        """The paper's experimental setting: D-Wave reached over the
        network (~10 ms round trip per problem)."""
        return cls(communication_us=10_000.0, preprocessing_us=100.0,
                   postprocessing_us=100.0)

    @classmethod
    def fpga_integrated(cls) -> "SwitchingLatencyModel":
        """The Section VII-A projection: CDCL on the control FPGA."""
        return cls(communication_us=0.0, preprocessing_us=0.16,
                   postprocessing_us=0.5)

    @property
    def per_call_us(self) -> float:
        """Total switching overhead of one QA call."""
        return self.communication_us + self.preprocessing_us + self.postprocessing_us

    def hidden_by_execution(self, timing: QpuTimingModel, num_reads: int = 1) -> bool:
        """Section VII-A's claim: the switching latency is covered by
        the QA execution time itself."""
        return self.per_call_us <= timing.total_us(num_reads)

    def total_overhead_us(self, qa_calls: int) -> float:
        """Accumulated switching overhead over a hybrid solve."""
        if qa_calls < 0:
            raise ValueError("qa_calls must be non-negative")
        return self.per_call_us * qa_calls
