"""QPU timing model.

Device time is *modelled*, not measured: we use the constants the paper
publishes for D-Wave 2000Q (Section VI-A sets the annealing time to
20 µs and the readout time to 110 µs; Figure 1 uses a 20 µs inter-sample
delay and a programming overhead per problem).  This keeps Table II /
Figure 1 / Figure 11 accounting faithful to the paper's own arithmetic
while the samples themselves come from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QpuTimingModel:
    """Per-sample and per-problem device-time constants (microseconds)."""

    anneal_us: float = 20.0
    readout_us: float = 110.0
    inter_sample_delay_us: float = 20.0
    programming_us: float = 10.0

    def __post_init__(self) -> None:
        for name in ("anneal_us", "readout_us", "inter_sample_delay_us", "programming_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def sample_us(self) -> float:
        """Time for one anneal-and-read cycle (~130 µs on 2000Q)."""
        return self.anneal_us + self.readout_us

    def total_us(self, num_reads: int) -> float:
        """Device time for one programmed problem with ``num_reads``
        samples, including inter-sample delays."""
        if num_reads < 0:
            raise ValueError(f"num_reads must be non-negative, got {num_reads}")
        if num_reads == 0:
            return self.programming_us
        delays = self.inter_sample_delay_us * (num_reads - 1)
        return self.programming_us + self.sample_us * num_reads + delays
