"""Fault injection for the annealer device.

The physics noise model (:mod:`repro.annealer.noise`) perturbs what a
*successful* anneal returns; this module models the calls that do not
succeed at all.  Live QPU service fails in ways the paper's deployment
story has to survive: problems that fail to program onto the chip
(flux programming / chain compile errors), calls that exceed their
deadline and come back with partial reads, devices that drift out of
calibration between recalibration cycles, and individual reads dropped
by the readout chain (Gabor et al. and Krüger & Mauerer document all
four on production D-Wave hardware).

Each channel is a typed, *retryable* exception plus a per-channel
probability in :class:`FaultModel`; :class:`FaultInjector` draws every
fault decision from one seeded RNG in a fixed per-call order, so a
given ``(problem, fault_seed)`` pair replays the identical fault
sequence — the property the resilience layer's determinism tests rely
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


class DeviceFault(RuntimeError):
    """Base class of injected device failures.

    ``retryable`` tells the resilience layer whether an immediate
    retry can possibly succeed (``CalibrationDrift`` additionally
    needs a :meth:`~FaultInjector.recalibrate` first).
    """

    retryable: bool = True

    def __init__(self, message: str, call_index: int = -1):
        super().__init__(message)
        self.call_index = call_index


class ProgrammingError(DeviceFault):
    """The problem failed to program onto the chip.

    Models flux-programming and chain-compile failures: the device
    never annealed, so only the programming overhead was spent.
    """


class ReadoutTimeout(DeviceFault):
    """The call exceeded its deadline; zero or more reads survived.

    ``partial`` carries the :class:`~repro.annealer.device.AnnealSample`
    reads completed before the timeout (possibly empty) and
    ``elapsed_us`` the modelled device time consumed by the doomed
    call — the resilience layer charges it against the QA budget and
    may salvage the partial reads instead of retrying.
    """

    def __init__(
        self,
        message: str,
        call_index: int = -1,
        partial: Tuple = (),
        elapsed_us: float = 0.0,
    ):
        super().__init__(message, call_index)
        self.partial = tuple(partial)
        self.elapsed_us = elapsed_us


class CalibrationDrift(DeviceFault):
    """The device drifted too far out of calibration to trust.

    Raised once the accumulated bias offset crosses the model's
    ``drift_fail_threshold``; every subsequent call fails the same way
    until the device is recalibrated.  ``drift`` is the accumulated
    offset at failure time.
    """

    requires_recalibration: bool = True

    def __init__(self, message: str, call_index: int = -1, drift: float = 0.0):
        super().__init__(message, call_index)
        self.drift = drift


def fault_channel(fault: DeviceFault) -> str:
    """Canonical channel name of a fault instance (stats keys)."""
    names = {
        ProgrammingError: "programming_error",
        ReadoutTimeout: "readout_timeout",
        CalibrationDrift: "calibration_drift",
    }
    for cls in type(fault).__mro__:
        if cls in names:
            return names[cls]
    return "device_fault"


@dataclass(frozen=True)
class FaultModel:
    """Per-channel fault probabilities and drift dynamics.

    Attributes
    ----------
    programming_fail_prob:
        Per-call probability the problem fails to program
        (:class:`ProgrammingError`).
    readout_timeout_prob:
        Per-call probability the call times out mid-readout
        (:class:`ReadoutTimeout` carrying the reads completed so far).
    read_dropout_prob:
        Per-read probability an individual read is dropped from the
        result; a call whose every read drops degenerates to a
        :class:`ReadoutTimeout` with no partial reads.
    drift_onset_prob:
        Per-call probability the calibration drifts one
        ``drift_bias_step`` further (signed; direction drawn once at
        onset).  Drift *persists across calls* until
        :meth:`FaultInjector.recalibrate`.
    drift_bias_step:
        Bias offset (hardware units) each drift event adds to every
        programmed linear coefficient.
    drift_fail_threshold:
        Absolute accumulated drift beyond which calls raise
        :class:`CalibrationDrift` instead of silently degrading.
    """

    programming_fail_prob: float = 0.0
    readout_timeout_prob: float = 0.0
    read_dropout_prob: float = 0.0
    drift_onset_prob: float = 0.0
    drift_bias_step: float = 0.02
    drift_fail_threshold: float = 0.1

    def __post_init__(self) -> None:
        for name in (
            "programming_fail_prob",
            "readout_timeout_prob",
            "read_dropout_prob",
            "drift_onset_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.drift_bias_step < 0:
            raise ValueError("drift_bias_step must be non-negative")
        if self.drift_fail_threshold <= 0:
            raise ValueError("drift_fail_threshold must be positive")

    @classmethod
    def none(cls) -> "FaultModel":
        """A fault-free device (the seed state's implicit assumption)."""
        return cls()

    @classmethod
    def uniform(cls, probability: float) -> "FaultModel":
        """Every stochastic channel at the same probability."""
        return cls(
            programming_fail_prob=probability,
            readout_timeout_prob=probability,
            read_dropout_prob=probability,
            drift_onset_prob=probability,
        )

    @property
    def is_faultless(self) -> bool:
        """True when no channel can ever fire."""
        return (
            self.programming_fail_prob == 0.0
            and self.readout_timeout_prob == 0.0
            and self.read_dropout_prob == 0.0
            and self.drift_onset_prob == 0.0
        )


#: ``parse_fault_spec`` channel shorthands (the CLI / job-file keys).
FAULT_SPEC_KEYS = {
    "prog": "programming_fail_prob",
    "timeout": "readout_timeout_prob",
    "dropout": "read_dropout_prob",
    "drift": "drift_onset_prob",
}


def parse_fault_spec(text: str) -> FaultModel:
    """Parse a fault-spec string into a :class:`FaultModel`.

    A bare probability (``"0.2"``) applies to every channel;
    comma-separated ``key=prob`` pairs set channels individually, with
    keys ``prog``, ``timeout``, ``dropout``, ``drift`` (see
    :data:`FAULT_SPEC_KEYS`).  Shared by the ``--qa-faults`` CLI flag
    and the service job files; raises :class:`ValueError` on malformed
    input.
    """
    try:
        return FaultModel.uniform(float(text))
    except ValueError:
        pass
    values = {}
    for part in text.split(","):
        if "=" not in part:
            raise ValueError(
                f"bad fault-spec entry {part!r}; expected key=prob with "
                f"keys {sorted(FAULT_SPEC_KEYS)}"
            )
        key, _, prob = part.partition("=")
        if key.strip() not in FAULT_SPEC_KEYS:
            raise ValueError(
                f"unknown fault channel {key!r}; known: {sorted(FAULT_SPEC_KEYS)}"
            )
        values[FAULT_SPEC_KEYS[key.strip()]] = float(prob)
    return FaultModel(**values)


@dataclass(frozen=True)
class CallFaults:
    """The fault decisions of one device call, drawn up front.

    Drawing every decision at ``begin_call`` time (in a fixed order)
    decouples the fault sequence from how far the device gets before
    failing, which is what makes replay exact.
    """

    call_index: int
    programming_failed: bool
    timeout_after_reads: Optional[int]
    dropped_reads: Tuple[int, ...]
    drift: float


class FaultInjector:
    """Draws per-call fault decisions from a seeded RNG.

    One injector serves one device.  Per call the draw order is fixed
    (programming, timeout, per-read dropouts, drift), and each call's
    RNG is derived from ``(seed, call_index)``, so the fault sequence
    for call *k* is independent of the number of random values earlier
    calls consumed.
    """

    def __init__(self, model: FaultModel, seed: int = 0):
        self.model = model
        self.seed = seed
        self.calls = 0
        self.drift = 0.0
        self._drift_direction = 0.0

    def begin_call(self, num_reads: int) -> CallFaults:
        """Draw the fault decisions of the next call."""
        self.calls += 1
        model = self.model
        rng = np.random.default_rng(
            (self.seed * 9_576_890_767 + self.calls) % (2**63)
        )
        programming_failed = bool(rng.random() < model.programming_fail_prob)
        timeout_after: Optional[int] = None
        if rng.random() < model.readout_timeout_prob:
            timeout_after = int(rng.integers(0, num_reads))
        dropped: List[int] = []
        if model.read_dropout_prob > 0.0:
            mask = rng.random(num_reads) < model.read_dropout_prob
            dropped = [int(i) for i in np.nonzero(mask)[0]]
        if rng.random() < model.drift_onset_prob:
            if self._drift_direction == 0.0:
                self._drift_direction = 1.0 if rng.random() < 0.5 else -1.0
            else:
                rng.random()  # keep the draw count per call fixed
            self.drift += self._drift_direction * model.drift_bias_step
        return CallFaults(
            call_index=self.calls,
            programming_failed=programming_failed,
            timeout_after_reads=timeout_after,
            dropped_reads=tuple(dropped),
            drift=self.drift,
        )

    @property
    def drifted_out(self) -> bool:
        """True when accumulated drift exceeds the failure threshold."""
        return abs(self.drift) > self.model.drift_fail_threshold

    def recalibrate(self) -> None:
        """Reset the calibration drift (the operator's recal cycle)."""
        self.drift = 0.0
        self._drift_direction = 0.0
