"""Quantum annealer simulator.

Substitutes for the D-Wave 2000Q QPU (see DESIGN.md): the logical
objective is compiled onto the embedded hardware graph — chains held
together by ferromagnetic couplers, problem edges on real couplers —
and sampled with Metropolis simulated annealing under a configurable
noise model (coefficient noise before the anneal, readout bit flips
after).  Chain breaks are resolved by majority vote, and a timing model
accounts device time with the paper's published constants (20 µs
anneal, 110 µs readout, Section VI-A).
"""

from repro.annealer.device import AnnealerDevice, AnnealRequest, AnnealResult, AnnealSample
from repro.annealer.embedded import EmbeddedProblem, batch_energies, build_embedded_problem
from repro.annealer.faults import (
    CalibrationDrift,
    DeviceFault,
    FaultInjector,
    FaultModel,
    ProgrammingError,
    ReadoutTimeout,
    parse_fault_spec,
)
from repro.annealer.noise import NoiseModel
from repro.annealer.postprocess import LogicalDescender, logical_greedy_descent
from repro.annealer.sampler import SamplerConfig, SimulatedAnnealingSampler
from repro.annealer.switching import SwitchingLatencyModel
from repro.annealer.timing import QpuTimingModel
from repro.annealer.unembed import majority_vote_unembed

__all__ = [
    "AnnealRequest",
    "AnnealResult",
    "AnnealSample",
    "AnnealerDevice",
    "CalibrationDrift",
    "DeviceFault",
    "EmbeddedProblem",
    "FaultInjector",
    "FaultModel",
    "LogicalDescender",
    "NoiseModel",
    "ProgrammingError",
    "QpuTimingModel",
    "ReadoutTimeout",
    "SamplerConfig",
    "SimulatedAnnealingSampler",
    "SwitchingLatencyModel",
    "batch_energies",
    "build_embedded_problem",
    "logical_greedy_descent",
    "majority_vote_unembed",
    "parse_fault_spec",
]
