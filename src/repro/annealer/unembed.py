"""Chain-break resolution: majority-vote unembedding.

Each logical variable is read out from its chain; if the chain's
qubits disagree (a *chain break*), the majority value wins, with ties
broken by a supplied RNG — the standard D-Wave post-processing the
paper's related-work section cites ([62], [63]).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.annealer.embedded import EmbeddedProblem
from repro.sat.assignment import Assignment


def majority_vote_unembed(
    problem: EmbeddedProblem,
    bits: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[Assignment, float]:
    """Collapse a physical read into a logical assignment.

    Returns ``(assignment, chain_break_fraction)`` where the fraction
    is the share of logical variables whose chain disagreed.
    """
    votes: Dict[int, list] = {}
    for index, var in enumerate(problem.chain_of_index):
        votes.setdefault(var, []).append(int(bits[index]))

    assignment = Assignment()
    breaks = 0
    for var, chain_bits in votes.items():
        ones = sum(chain_bits)
        size = len(chain_bits)
        if 0 < ones < size:
            breaks += 1
        if ones * 2 > size:
            value = True
        elif ones * 2 < size:
            value = False
        else:
            value = bool(rng.integers(0, 2))
        assignment.assign(var, value)

    fraction = breaks / len(votes) if votes else 0.0
    return assignment, fraction
