"""Metropolis simulated-annealing sampler over an embedded problem.

The stand-in for the QPU's anneal: starting from a random state, spins
are flipped under a geometric inverse-temperature (beta) schedule.  Two
sweep modes are provided:

- ``sequential`` — textbook single-spin Metropolis, exact but Python-
  loop bound; used by the tests as the reference dynamics.
- ``parallel`` — vectorised "diluted" parallel Metropolis: every spin
  computes its local field at once, acceptance is decided per spin, and
  a random half of the accepted flips is applied (the dilution breaks
  the two-cycle oscillations exact parallel updates suffer).  This is
  the default; it is orders of magnitude faster in numpy and settles to
  the same low-energy states on the problem sizes HyQSAT embeds.

On top of the parallel mode, **replica batching** (``batch_reads``, on
by default) folds all ``num_reads × num_restarts`` independent anneal
trajectories into one ``(n, R)`` float32 state matrix and runs a
*single* vectorised schedule pass: per-sweep local fields are one
sparse ``matrix @ states`` product, Metropolis acceptance and dilution
merge into a single uniform draw per spin, greedy descent
batches the same way, and each read is recovered as its best-energy
restart via the batch-energy kernel
(:func:`repro.annealer.embedded.batch_energies`).  The per-spin flip
probability is *exactly* that of the per-read reference loop
(``0.5 * min(1, exp(-beta * delta))``), so the batched trajectories
are statistically equivalent, but they consume the RNG stream in a
different shape and are therefore not bit-identical with the per-read
path.  Batched sampling remains fully deterministic for a fixed seed.

The sampler is deterministic given its seed, and the noise model hooks
in at two points: coefficient perturbation before the run and readout
flips after it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.annealer.embedded import EmbeddedProblem, batch_energies
from repro.annealer.noise import NoiseModel


@dataclass(frozen=True)
class SamplerConfig:
    """Anneal-schedule parameters."""

    num_sweeps: int = 256
    beta_min: float = 0.05
    beta_max: float = 5.0
    sweep_mode: str = "parallel"  # "parallel" | "sequential"
    greedy_descent: bool = True
    max_descent_sweeps: int = 64
    #: Independent anneal restarts folded into each read (the best by
    #: physical energy is returned).  The paper's noise-free simulator
    #: runs "with a long timeout to avoid simulation error" — i.e. it
    #: is given enough attempts to reach the true ground state; higher
    #: restart counts emulate that regime.
    num_restarts: int = 1
    #: Anneal all ``num_reads × num_restarts`` replicas at once as one
    #: ``(R, n)`` state matrix (parallel mode only).  Off falls back to
    #: the per-read reference loop.
    batch_reads: bool = True

    def __post_init__(self) -> None:
        if self.num_sweeps < 1:
            raise ValueError("num_sweeps must be >= 1")
        if self.beta_min <= 0 or self.beta_max < self.beta_min:
            raise ValueError("need 0 < beta_min <= beta_max")
        if self.sweep_mode not in ("parallel", "sequential"):
            raise ValueError(f"unknown sweep_mode {self.sweep_mode!r}")
        if self.max_descent_sweeps < 0:
            raise ValueError("max_descent_sweeps must be non-negative")
        if self.num_restarts < 1:
            raise ValueError("num_restarts must be >= 1")


class SimulatedAnnealingSampler:
    """Samples low-energy states of an :class:`EmbeddedProblem`."""

    def __init__(
        self,
        config: Optional[SamplerConfig] = None,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
    ):
        self.config = config or SamplerConfig()
        self.noise = noise or NoiseModel.noiseless()
        self.seed = seed

    def sample(
        self, problem: EmbeddedProblem, num_reads: int = 1
    ) -> List[np.ndarray]:
        """Draw ``num_reads`` bit vectors (0/1 per used qubit)."""
        if num_reads < 1:
            raise ValueError("num_reads must be >= 1")
        rng = np.random.default_rng(self.seed)
        n = problem.num_qubits
        if n == 0:
            return [np.zeros(0, dtype=np.int8) for _ in range(num_reads)]

        linear, matrix = self._programmed_arrays(problem, rng)
        betas = self._schedule()
        if self.config.batch_reads and self.config.sweep_mode == "parallel":
            return self._sample_batched(num_reads, linear, matrix, betas, rng)
        reads: List[np.ndarray] = []
        for _ in range(num_reads):
            best_bits: Optional[np.ndarray] = None
            best_energy = float("inf")
            for _ in range(self.config.num_restarts):
                bits = rng.integers(0, 2, size=n).astype(np.int8)
                if self.config.sweep_mode == "parallel":
                    bits = self._anneal_parallel(bits, linear, matrix, betas, rng)
                else:
                    bits = self._anneal_sequential(bits, linear, matrix, betas, rng)
                if self.config.greedy_descent:
                    bits = self._descend(bits, linear, matrix, rng)
                if self.config.num_restarts == 1:
                    best_bits = bits
                    break
                state = bits.astype(float)
                energy = float(linear @ state + state @ (matrix @ state) / 2.0)
                if energy < best_energy:
                    best_energy, best_bits = energy, bits
            bits = self.noise.flip_readout(best_bits, rng).astype(np.int8)
            reads.append(bits)
        return reads

    # ------------------------------------------------------------------

    def _sample_batched(
        self,
        num_reads: int,
        linear: np.ndarray,
        matrix: sparse.csr_matrix,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> List[np.ndarray]:
        """One vectorised schedule pass over all replicas at once.

        ``num_reads × num_restarts`` replicas anneal as a single state
        matrix held in ``(n, R)`` column-major-replica layout (each
        replica is a column, so the sparse ``matrix @ states`` product
        feeds the dense element-wise updates without transposes); each
        read then keeps its lowest-energy restart via the batch-energy
        kernel — no Python loop over couplings.

        The batch runs in float32 with a *merged* acceptance draw: one
        uniform per spin decides accept-and-dilute at once (see
        :meth:`_anneal_batch`), with exactly the per-spin flip
        probability of the per-read path's two draws.  The dynamics are
        therefore statistically equivalent to (but not bit-identical
        with) the per-read reference loop, and remain fully
        deterministic for a fixed seed.
        """
        n = linear.shape[0]
        restarts = self.config.num_restarts
        replicas = num_reads * restarts
        linear32 = linear.astype(np.float32)
        matrix32 = matrix.astype(np.float32)
        states = rng.integers(0, 2, size=(n, replicas)).astype(np.float32)
        states = self._anneal_batch(states, linear32, matrix32, betas, rng)
        if self.config.greedy_descent:
            states = self._descend_batch(states, linear32, matrix32, rng)
        final = states.T.astype(float)  # (R, n), float64 for selection
        if restarts == 1:
            chosen = final
        else:
            energies = batch_energies(linear, matrix, final)
            grouped = energies.reshape(num_reads, restarts)
            picks = grouped.argmin(axis=1) + np.arange(num_reads) * restarts
            chosen = final[picks]
        reads: List[np.ndarray] = []
        for row in chosen:
            bits = row.astype(np.int8)
            reads.append(self.noise.flip_readout(bits, rng).astype(np.int8))
        return reads

    def _programmed_arrays(
        self, problem: EmbeddedProblem, rng: np.random.Generator
    ) -> Tuple[np.ndarray, sparse.csr_matrix]:
        """Bias vector and symmetric sparse coupling matrix with
        programming noise applied (the pre-anneal channel).

        Noiseless programming reuses the problem's cached CSR directly;
        otherwise one noise draw per physical coupler is applied
        symmetrically to a fresh matrix.
        """
        n = problem.num_qubits
        if self.noise.coefficient_std == 0.0:
            return problem.linear.astype(float), problem.couplings_csr
        linear = problem.linear.astype(float)
        linear = self.noise.perturb_coefficients(linear, rng)
        rows_i, rows_j, weights = problem.coupling_arrays
        if weights.size:
            weights = self.noise.perturb_coefficients(weights, rng)
            matrix = sparse.coo_matrix(
                (
                    np.concatenate([weights, weights]),
                    (
                        np.concatenate([rows_i, rows_j]),
                        np.concatenate([rows_j, rows_i]),
                    ),
                ),
                shape=(n, n),
            ).tocsr()
        else:
            matrix = sparse.csr_matrix((n, n))
        return linear, matrix

    def _schedule(self) -> np.ndarray:
        """Geometric beta ladder; thermal noise caps the final beta."""
        beta_max = self.config.beta_max
        if self.noise.thermal_beta is not None:
            beta_max = min(beta_max, self.noise.thermal_beta)
        return np.geomspace(self.config.beta_min, beta_max, self.config.num_sweeps)

    def _anneal_parallel(
        self,
        bits: np.ndarray,
        linear: np.ndarray,
        matrix: sparse.csr_matrix,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Diluted parallel Metropolis on a single ``(n,)`` state.

        ``matrix`` is the symmetric ``(n, n)`` CSR coupling matrix (both
        coupler directions populated), so the local field is one
        ``matrix @ state`` product.
        """
        state = bits.astype(float)
        for beta in betas:
            field = linear + matrix @ state
            delta = (1.0 - 2.0 * state) * field  # energy change per flip
            accept = (delta <= 0.0) | (
                rng.random(state.shape) < np.exp(-beta * np.clip(delta, 0.0, 50.0))
            )
            dilution = rng.random(state.shape) < 0.5
            flips = accept & dilution
            state = np.where(flips, 1.0 - state, state)
        return state.astype(np.int8)

    def _anneal_batch(
        self,
        states: np.ndarray,
        linear: np.ndarray,
        matrix: sparse.csr_matrix,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Diluted parallel Metropolis on an ``(n, R)`` replica matrix
        (float32; replicas are columns).

        The state is kept as a ±1 magnetisation matrix ``m = 1 - 2s``,
        under which the energy change of flipping spin ``i`` is
        ``delta_i = m_i * (c_i - (matrix @ m)_i / 2)`` with
        ``c = linear + rowsum(matrix) / 2``.  Both the ``-1/2`` scale
        and the constant field ``c`` are folded into an *augmented*
        sparse matrix (one extra column holding ``c``, matched by an
        all-ones row in the state), so the per-sweep work is one sparse
        product for all replicas plus five fused in-place element
        passes.  Acceptance and dilution merge into a single uniform
        draw per spin — flip iff ``2u < exp(-beta * max(delta, 0))``,
        exactly the per-read reference's
        ``0.5 * min(1, exp(-beta * delta))`` flip probability — and the
        uniforms for many sweeps are drawn (and pre-doubled) in bulk
        chunks to amortise generator call overhead.
        """
        n, num_replicas = states.shape
        zero = np.float32(0.0)
        c = linear + np.float32(0.5) * np.asarray(
            matrix.sum(axis=1), dtype=np.float32
        ).ravel()
        augmented = sparse.hstack(
            [np.float32(-0.5) * matrix, sparse.csr_matrix(c[:, None])],
            format="csr",
        ).astype(np.float32)
        full = np.empty((n + 1, num_replicas), dtype=np.float32)
        full[:n] = np.float32(1.0) - states - states  # ±1 magnetisation
        full[n] = 1.0  # constant row feeding the c column
        m = full[:n]  # writable view; row n stays 1
        num_sweeps = len(betas)
        chunk = max(1, int(16_000_000 // max(1, n * num_replicas)))
        start = 0
        while start < num_sweeps:
            count = min(chunk, num_sweeps - start)
            doubled_u = rng.random((count, n, num_replicas), dtype=np.float32)
            doubled_u += doubled_u
            for j in range(count):
                delta = augmented @ full  # c - (matrix @ m)/2, all replicas
                delta *= m
                np.maximum(delta, zero, out=delta)
                delta *= np.float32(-betas[start + j])
                np.exp(delta, out=delta)  # 2 * flip threshold per spin
                # Branch-free flip: m *= copysign(1, 2u - threshold)
                # negates exactly the spins with 2u < threshold (masked
                # ufunc writes are an order of magnitude slower here).
                np.subtract(doubled_u[j], delta, out=delta)
                np.copysign(np.float32(1.0), delta, out=delta)
                m *= delta
            start += count
        return np.float32(0.5) * (np.float32(1.0) - m)  # back to 0/1

    def _descend(
        self,
        bits: np.ndarray,
        linear: np.ndarray,
        matrix: sparse.csr_matrix,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Zero-temperature greedy descent to the nearest local minimum.

        The standard post-anneal calibration step (greedy descent,
        Ayanzadeh et al. [6]): flips are only accepted when they
        strictly lower the energy, applied with 0.5 dilution so the
        vectorised update converges instead of oscillating.  ``matrix``
        is the symmetric CSR coupling matrix, as in
        :meth:`_anneal_parallel`.
        """
        state = bits.astype(float)
        for _ in range(self.config.max_descent_sweeps):
            field = linear + matrix @ state
            delta = (1.0 - 2.0 * state) * field
            improving = delta < -1e-12
            if not improving.any():
                break
            flips = improving & (rng.random(state.shape) < 0.5)
            if not flips.any():
                continue
            state = np.where(flips, 1.0 - state, state)
        return state.astype(np.int8)

    def _descend_batch(
        self,
        states: np.ndarray,
        linear: np.ndarray,
        matrix: sparse.csr_matrix,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Batched greedy descent on an ``(n, R)`` replica matrix
        (float32; replicas are columns).

        Converged replicas simply stop producing improving flips; the
        sweep loop ends when no replica can improve (or the cap hits).
        """
        one = np.float32(1.0)
        half = np.float32(0.5)
        eps = np.float32(-1e-6)
        for _ in range(self.config.max_descent_sweeps):
            fields = linear[:, None] + matrix @ states
            delta = (one - states - states) * fields
            improving = delta < eps
            if not improving.any():
                break
            flips = improving & (
                rng.random(states.shape, dtype=np.float32) < half
            )
            if not flips.any():
                continue
            states = np.where(flips, one - states, states)
        return states

    def _anneal_sequential(
        self,
        bits: np.ndarray,
        linear: np.ndarray,
        matrix: sparse.csr_matrix,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Single-spin Metropolis reference dynamics on an ``(n,)``
        state.  ``matrix`` is the symmetric CSR coupling matrix; its raw
        ``indptr``/``indices``/``data`` arrays drive the per-spin field
        lookups."""
        state = bits.astype(float)
        n = state.shape[0]
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        for beta in betas:
            order = rng.permutation(n)
            for i in order:
                lo, hi = indptr[i], indptr[i + 1]
                field = linear[i] + data[lo:hi] @ state[indices[lo:hi]]
                delta = (1.0 - 2.0 * state[i]) * field
                if delta <= 0.0 or rng.random() < np.exp(-beta * min(delta, 50.0)):
                    state[i] = 1.0 - state[i]
        return state.astype(np.int8)
