"""Metropolis simulated-annealing sampler over an embedded problem.

The stand-in for the QPU's anneal: starting from a random state, spins
are flipped under a geometric inverse-temperature (beta) schedule.  Two
sweep modes are provided:

- ``sequential`` — textbook single-spin Metropolis, exact but Python-
  loop bound; used by the tests as the reference dynamics.
- ``parallel`` — vectorised "diluted" parallel Metropolis: every spin
  computes its local field at once, acceptance is decided per spin, and
  a random half of the accepted flips is applied (the dilution breaks
  the two-cycle oscillations exact parallel updates suffer).  This is
  the default; it is orders of magnitude faster in numpy and settles to
  the same low-energy states on the problem sizes HyQSAT embeds.

The sampler is deterministic given its seed, and the noise model hooks
in at two points: coefficient perturbation before the run and readout
flips after it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.annealer.embedded import EmbeddedProblem
from repro.annealer.noise import NoiseModel


@dataclass(frozen=True)
class SamplerConfig:
    """Anneal-schedule parameters."""

    num_sweeps: int = 256
    beta_min: float = 0.05
    beta_max: float = 5.0
    sweep_mode: str = "parallel"  # "parallel" | "sequential"
    greedy_descent: bool = True
    max_descent_sweeps: int = 64
    #: Independent anneal restarts folded into each read (the best by
    #: physical energy is returned).  The paper's noise-free simulator
    #: runs "with a long timeout to avoid simulation error" — i.e. it
    #: is given enough attempts to reach the true ground state; higher
    #: restart counts emulate that regime.
    num_restarts: int = 1

    def __post_init__(self) -> None:
        if self.num_sweeps < 1:
            raise ValueError("num_sweeps must be >= 1")
        if self.beta_min <= 0 or self.beta_max < self.beta_min:
            raise ValueError("need 0 < beta_min <= beta_max")
        if self.sweep_mode not in ("parallel", "sequential"):
            raise ValueError(f"unknown sweep_mode {self.sweep_mode!r}")
        if self.max_descent_sweeps < 0:
            raise ValueError("max_descent_sweeps must be non-negative")
        if self.num_restarts < 1:
            raise ValueError("num_restarts must be >= 1")


class SimulatedAnnealingSampler:
    """Samples low-energy states of an :class:`EmbeddedProblem`."""

    def __init__(
        self,
        config: Optional[SamplerConfig] = None,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
    ):
        self.config = config or SamplerConfig()
        self.noise = noise or NoiseModel.noiseless()
        self.seed = seed

    def sample(
        self, problem: EmbeddedProblem, num_reads: int = 1
    ) -> List[np.ndarray]:
        """Draw ``num_reads`` bit vectors (0/1 per used qubit)."""
        if num_reads < 1:
            raise ValueError("num_reads must be >= 1")
        rng = np.random.default_rng(self.seed)
        n = problem.num_qubits
        if n == 0:
            return [np.zeros(0, dtype=np.int8) for _ in range(num_reads)]

        linear, matrix = self._programmed_arrays(problem, rng)
        betas = self._schedule()
        reads: List[np.ndarray] = []
        for _ in range(num_reads):
            best_bits: Optional[np.ndarray] = None
            best_energy = float("inf")
            for _ in range(self.config.num_restarts):
                bits = rng.integers(0, 2, size=n).astype(np.int8)
                if self.config.sweep_mode == "parallel":
                    bits = self._anneal_parallel(bits, linear, matrix, betas, rng)
                else:
                    bits = self._anneal_sequential(bits, linear, matrix, betas, rng)
                if self.config.greedy_descent:
                    bits = self._descend(bits, linear, matrix, rng)
                if self.config.num_restarts == 1:
                    best_bits = bits
                    break
                state = bits.astype(float)
                energy = float(linear @ state + state @ (matrix @ state) / 2.0)
                if energy < best_energy:
                    best_energy, best_bits = energy, bits
            bits = self.noise.flip_readout(best_bits, rng).astype(np.int8)
            reads.append(bits)
        return reads

    # ------------------------------------------------------------------

    def _programmed_arrays(
        self, problem: EmbeddedProblem, rng: np.random.Generator
    ) -> Tuple[np.ndarray, sparse.csr_matrix]:
        """Bias vector and symmetric sparse coupling matrix with
        programming noise applied (the pre-anneal channel)."""
        n = problem.num_qubits
        linear = problem.linear.astype(float).copy()
        linear = self.noise.perturb_coefficients(linear, rng)
        if problem.couplings:
            rows_i = np.array([c[0] for c in problem.couplings])
            rows_j = np.array([c[1] for c in problem.couplings])
            weights = np.array([c[2] for c in problem.couplings])
            # One noise draw per physical coupler, applied symmetrically.
            weights = self.noise.perturb_coefficients(weights, rng)
            matrix = sparse.coo_matrix(
                (
                    np.concatenate([weights, weights]),
                    (
                        np.concatenate([rows_i, rows_j]),
                        np.concatenate([rows_j, rows_i]),
                    ),
                ),
                shape=(n, n),
            ).tocsr()
        else:
            matrix = sparse.csr_matrix((n, n))
        return linear, matrix

    def _schedule(self) -> np.ndarray:
        """Geometric beta ladder; thermal noise caps the final beta."""
        beta_max = self.config.beta_max
        if self.noise.thermal_beta is not None:
            beta_max = min(beta_max, self.noise.thermal_beta)
        return np.geomspace(self.config.beta_min, beta_max, self.config.num_sweeps)

    def _anneal_parallel(
        self,
        bits: np.ndarray,
        linear: np.ndarray,
        matrix: np.ndarray,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        state = bits.astype(float)
        for beta in betas:
            field = linear + matrix @ state
            delta = (1.0 - 2.0 * state) * field  # energy change per flip
            accept = (delta <= 0.0) | (
                rng.random(state.shape) < np.exp(-beta * np.clip(delta, 0.0, 50.0))
            )
            dilution = rng.random(state.shape) < 0.5
            flips = accept & dilution
            state = np.where(flips, 1.0 - state, state)
        return state.astype(np.int8)

    def _descend(
        self,
        bits: np.ndarray,
        linear: np.ndarray,
        matrix: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Zero-temperature greedy descent to the nearest local minimum.

        The standard post-anneal calibration step (greedy descent,
        Ayanzadeh et al. [6]): flips are only accepted when they
        strictly lower the energy, applied with 0.5 dilution so the
        vectorised update converges instead of oscillating.
        """
        state = bits.astype(float)
        for _ in range(self.config.max_descent_sweeps):
            field = linear + matrix @ state
            delta = (1.0 - 2.0 * state) * field
            improving = delta < -1e-12
            if not improving.any():
                break
            flips = improving & (rng.random(state.shape) < 0.5)
            if not flips.any():
                continue
            state = np.where(flips, 1.0 - state, state)
        return state.astype(np.int8)

    def _anneal_sequential(
        self,
        bits: np.ndarray,
        linear: np.ndarray,
        matrix: np.ndarray,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        state = bits.astype(float)
        n = state.shape[0]
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        for beta in betas:
            order = rng.permutation(n)
            for i in order:
                lo, hi = indptr[i], indptr[i + 1]
                field = linear[i] + data[lo:hi] @ state[indices[lo:hi]]
                delta = (1.0 - 2.0 * state[i]) * field
                if delta <= 0.0 or rng.random() < np.exp(-beta * min(delta, 50.0)):
                    state[i] = 1.0 - state[i]
        return state.astype(np.int8)
