"""Statistical backend: energy-distribution modelling (Section V-A).

- :class:`~repro.ml.gnb.GaussianNaiveBayes` — a from-scratch GNB
  classifier fitted on QA output energies of known-satisfiable and
  known-unsatisfiable problems (Figure 8).
- :mod:`repro.ml.intervals` — the 90%-posterior confidence-interval
  partition that turns an energy into one of the four satisfaction
  bands the feedback strategies dispatch on.
"""

from repro.ml.gnb import GaussianNaiveBayes
from repro.ml.intervals import Band, ConfidenceBands, fit_bands

__all__ = ["Band", "ConfidenceBands", "GaussianNaiveBayes", "fit_bands"]
