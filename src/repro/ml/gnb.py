"""Gaussian Naive Bayes, implemented from scratch on numpy.

The paper fits a GNB model to the one-dimensional energy distribution
of satisfiable vs. unsatisfiable problems (Figure 8).  This
implementation is general over feature dimension so the tests can
exercise it beyond the 1-D use, but stays deliberately small: fit
per-class Gaussian means/variances plus priors, predict with the
log-posterior.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

_VAR_FLOOR = 1e-9


class GaussianNaiveBayes:
    """Per-class independent-Gaussian likelihood classifier."""

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self.classes_: Optional[np.ndarray] = None
        self.theta_: Optional[np.ndarray] = None  # (n_classes, n_features) means
        self.var_: Optional[np.ndarray] = None
        self.class_prior_: Optional[np.ndarray] = None

    def fit(self, X: Sequence, y: Sequence) -> "GaussianNaiveBayes":
        """Fit means, variances and priors.

        ``X`` is (n_samples, n_features) or a 1-D array of a single
        feature; ``y`` holds arbitrary hashable labels.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        n_classes, n_features = len(self.classes_), X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        epsilon = self.var_smoothing * max(X.var(axis=0).max(), _VAR_FLOOR)
        for idx, label in enumerate(self.classes_):
            rows = X[y == label]
            self.theta_[idx] = rows.mean(axis=0)
            self.var_[idx] = rows.var(axis=0) + epsilon + _VAR_FLOOR
            self.class_prior_[idx] = rows.shape[0] / X.shape[0]
        return self

    def _check_fitted(self) -> None:
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted")

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        jll = np.zeros((X.shape[0], len(self.classes_)))
        for idx in range(len(self.classes_)):
            prior = np.log(self.class_prior_[idx])
            var = self.var_[idx]
            mean = self.theta_[idx]
            log_pdf = -0.5 * (
                np.log(2.0 * np.pi * var) + (X - mean) ** 2 / var
            ).sum(axis=1)
            jll[:, idx] = prior + log_pdf
        return jll

    def predict_log_proba(self, X: Sequence) -> np.ndarray:
        """Log posterior P(class | x), rows normalised."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        jll = self._joint_log_likelihood(X)
        log_norm = np.logaddexp.reduce(jll, axis=1, keepdims=True)
        return jll - log_norm

    def predict_proba(self, X: Sequence) -> np.ndarray:
        """Posterior P(class | x)."""
        return np.exp(self.predict_log_proba(X))

    def predict(self, X: Sequence) -> np.ndarray:
        """Most-probable class labels."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        jll = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(jll, axis=1)]

    def score(self, X: Sequence, y: Sequence) -> float:
        """Mean accuracy on labelled data."""
        y = np.asarray(y)
        return float((self.predict(X) == y).mean())

    def posterior_of(self, label, x: float) -> float:
        """Posterior of ``label`` for a single 1-D feature value."""
        self._check_fitted()
        idx = int(np.where(self.classes_ == label)[0][0])
        return float(self.predict_proba([[x]])[0, idx])
