"""Confidence-interval partition of the energy axis (Section V-A).

A fitted two-class GNB over energies induces a posterior
``P(satisfiable | E)`` that decreases with E.  The paper chooses 90% as
the partition factor: the *near-satisfiable* band ends at the energy
where P(sat | E) drops below 0.9 and the *near-unsatisfiable* band
starts where P(unsat | E) exceeds 0.9.  Four bands result::

    Satisfiable          E == 0
    Near satisfiable     0 < E <= t_sat
    Uncertain            t_sat < E <= t_unsat
    Near unsatisfiable   E > t_unsat

The paper's D-Wave 2000Q calibration lands at ``t_sat = 4.5`` and
``t_unsat = 8`` — kept as the defaults for uncalibrated use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ml.gnb import GaussianNaiveBayes

#: The paper's published calibration for D-Wave 2000Q.
PAPER_T_SAT = 4.5
PAPER_T_UNSAT = 8.0
PAPER_CONFIDENCE = 0.9

_ZERO_TOL = 1e-6


class Band(enum.Enum):
    """The four satisfaction-probability bands."""

    SATISFIABLE = "satisfiable"
    NEAR_SATISFIABLE = "near_satisfiable"
    UNCERTAIN = "uncertain"
    NEAR_UNSATISFIABLE = "near_unsatisfiable"


@dataclass(frozen=True)
class ConfidenceBands:
    """Energy-axis partition points.

    ``t_sat`` closes the near-satisfiable band, ``t_unsat`` opens the
    near-unsatisfiable band; ``t_sat <= t_unsat`` always holds.
    """

    t_sat: float = PAPER_T_SAT
    t_unsat: float = PAPER_T_UNSAT

    def __post_init__(self) -> None:
        if self.t_sat < 0 or self.t_unsat < self.t_sat:
            raise ValueError(
                f"need 0 <= t_sat <= t_unsat, got ({self.t_sat}, {self.t_unsat})"
            )

    def classify(self, energy: float) -> Band:
        """Band of an energy value (problem units)."""
        if energy <= _ZERO_TOL:
            return Band.SATISFIABLE
        if energy <= self.t_sat:
            return Band.NEAR_SATISFIABLE
        if energy <= self.t_unsat:
            return Band.UNCERTAIN
        return Band.NEAR_UNSATISFIABLE

    @property
    def uncertain_width(self) -> float:
        """Width of the uncertain band (the Figure 15 (b) metric)."""
        return self.t_unsat - self.t_sat


def fit_bands(
    sat_energies: Sequence[float],
    unsat_energies: Sequence[float],
    confidence: float = PAPER_CONFIDENCE,
    grid_points: int = 2048,
) -> Tuple[ConfidenceBands, GaussianNaiveBayes]:
    """Calibrate partition points from labelled energy samples.

    Fits the Figure 8 GNB on the pooled energies, then scans an energy
    grid for the last point with P(sat|E) >= confidence (``t_sat``) and
    the first point with P(unsat|E) >= confidence (``t_unsat``).

    Returns the bands and the fitted model.  Degenerate separations
    (distributions swapped or fully overlapping) fall back to the
    paper's published constants.
    """
    if not 0.5 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0.5, 1), got {confidence}")
    sat = np.asarray(list(sat_energies), dtype=float)
    unsat = np.asarray(list(unsat_energies), dtype=float)
    if sat.size == 0 or unsat.size == 0:
        raise ValueError("need samples of both classes")

    X = np.concatenate([sat, unsat])
    y = np.concatenate([np.ones(sat.size, dtype=int), np.zeros(unsat.size, dtype=int)])
    model = GaussianNaiveBayes().fit(X, y)

    lo = float(min(X.min(), 0.0))
    hi = float(X.max())
    if hi <= lo:
        hi = lo + 1.0
    grid = np.linspace(lo, hi, grid_points)
    p_sat = model.predict_proba(grid)[:, list(model.classes_).index(1)]

    above = np.where(p_sat >= confidence)[0]
    below = np.where(1.0 - p_sat >= confidence)[0]
    if above.size == 0 or below.size == 0 or grid[above[-1]] > grid[below[0]]:
        return ConfidenceBands(), model

    t_sat = float(max(0.0, grid[above[-1]]))
    t_unsat = float(grid[below[0]])
    if t_unsat < t_sat:
        t_unsat = t_sat
    return ConfidenceBands(t_sat=t_sat, t_unsat=t_unsat), model
