"""The telemetry contract: span tree, event catalog, metric catalog.

This module is the in-code twin of ``docs/TELEMETRY.md``.  Everything
the observability layer may emit is enumerated here:

- :data:`SPAN_CHILDREN` — the legal parent -> child span edges of one
  hybrid solve (``None`` is the root);
- :data:`EVENT_PARENTS` — which span each event type may appear under;
- :data:`METRICS` — every metric name with its type, labels, unit, and
  help string;
- :func:`declare_solver_metrics` — pre-registers the whole catalog on
  a :class:`~repro.observability.metrics.MetricsRegistry`.

The trace-contract tests (``tests/observability/test_contract.py``)
assert both directions of the contract: a seeded solve emits only
spans/events/edges listed here, and every metric name documented in
``docs/TELEMETRY.md`` matches this catalog exactly — so the doc cannot
drift from the code without CI failing.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple

from repro.observability.metrics import (
    FRACTION_BUCKETS,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)

# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

#: Legal span nesting of one hybrid solve.  Key = parent span name
#: (None = trace root), value = allowed child span names.
SPAN_CHILDREN: Dict[Optional[str], FrozenSet[str]] = {
    None: frozenset({"solve", "service.batch", "gateway.session"}),
    # One gateway connection, hello to disconnect.  Like
    # ``service.job`` spans it is emitted from a single thread (the
    # gateway's event loop); per-job telemetry hangs off it as events,
    # never child spans, because jobs outlive connections.
    "gateway.session": frozenset(),
    # One service run (a batch or a serve session).  ``service.job``
    # spans are emitted retrospectively by the service coordinator as
    # each job finalises (the tracer is single-threaded, so worker
    # threads never touch it); their wall duration is therefore ~0 and
    # the job's real timings live in the ``wait_s`` / ``run_s`` attrs.
    "service.batch": frozenset({"service.job"}),
    "service.job": frozenset(),
    "solve": frozenset({"iteration"}),
    "iteration": frozenset({"select", "embed", "anneal", "classify", "feedback"}),
    # The frontend-side chain compile (cache miss with a known chain
    # strength) and the device-side fallback compile share one name,
    # distinguished by the ``where`` attribute.
    "embed": frozenset({"compile"}),
    "anneal": frozenset({"compile"}),
    "select": frozenset(),
    "classify": frozenset(),
    "feedback": frozenset(),
    "compile": frozenset(),
}

#: All span names (derived).
SPAN_NAMES: FrozenSet[str] = frozenset(
    name for children in SPAN_CHILDREN.values() for name in children
)

# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------

#: Which span each event may be attached to.
EVENT_PARENTS: Dict[str, FrozenSet[str]] = {
    "cdcl.propagate": frozenset({"iteration"}),
    "cdcl.conflict": frozenset({"iteration"}),
    "cdcl.restart": frozenset({"iteration"}),
    "qa.retry": frozenset({"anneal"}),
    "qa.unavailable": frozenset({"anneal"}),
    "qa.degraded": frozenset({"iteration"}),
    "checkpoint.saved": frozenset({"iteration"}),
    "breaker.transition": frozenset({"anneal"}),
    "service.admit": frozenset({"service.batch"}),
    "service.reject": frozenset({"service.batch"}),
    "service.expire": frozenset({"service.batch"}),
    "service.dedup": frozenset({"service.batch"}),
    "service.cancel": frozenset({"service.batch"}),
    "service.recover": frozenset({"service.batch"}),
    "service.retry": frozenset({"service.batch"}),
    "service.cache_hit": frozenset({"service.batch"}),
    "service.warm_start": frozenset({"service.batch"}),
    "device.quarantine": frozenset({"anneal"}),
    "device.failover": frozenset({"anneal"}),
    "gateway.connect": frozenset({"gateway.session"}),
    "gateway.disconnect": frozenset({"gateway.session"}),
    "gateway.submit": frozenset({"gateway.session"}),
    "gateway.reject": frozenset({"gateway.session"}),
    "gateway.cancel": frozenset({"gateway.session"}),
}

EVENT_NAMES: FrozenSet[str] = frozenset(EVENT_PARENTS)

# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class MetricSpec(NamedTuple):
    """One catalog entry (see docs/TELEMETRY.md for prose semantics)."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: Tuple[str, ...]
    unit: str
    help: str
    buckets: Optional[Tuple[float, ...]] = None


#: Buckets for per-call problem energies (problem units; Figure 8's
#: axis).  Negative energies occur on fully-satisfied sub-objectives.
ENERGY_BUCKETS = (-1.0, -0.5, -0.1, 0.0, 0.1, 0.5, 1.0, 2.0, 5.0)

METRICS: Tuple[MetricSpec, ...] = (
    # -- QA service -----------------------------------------------------
    MetricSpec(
        "hyqsat_qa_calls_total", "counter", (), "calls",
        "QA calls that returned samples",
    ),
    MetricSpec(
        "hyqsat_qa_failures_total", "counter", ("reason",), "calls",
        "QA calls lost to faults or refused by the resilience layer, by reason",
    ),
    MetricSpec(
        "hyqsat_qa_retries_total", "counter", (), "attempts",
        "Retry attempts beyond the first, across all QA calls",
    ),
    MetricSpec(
        "hyqsat_qa_dropped_reads_total", "counter", (), "reads",
        "Reads lost to the per-read dropout channel",
    ),
    MetricSpec(
        "hyqsat_qpu_time_us_total", "counter", (), "microseconds",
        "Modelled device time of successful QA calls",
    ),
    MetricSpec(
        "hyqsat_qa_budget_spent_us", "gauge", (), "microseconds",
        "Modelled device time charged against the resilience QA budget",
    ),
    MetricSpec(
        "hyqsat_breaker_transitions_total", "counter",
        ("from_state", "to_state"), "transitions",
        "Circuit-breaker state transitions",
    ),
    MetricSpec(
        "hyqsat_breaker_state", "gauge", (), "state",
        "Current breaker state (0=closed, 1=half_open, 2=open)",
    ),
    MetricSpec(
        "hyqsat_degraded", "gauge", (), "bool",
        "1 when a persistent QA failure switched the run to pure CDCL",
    ),
    # -- hybrid loop ----------------------------------------------------
    MetricSpec(
        "hyqsat_warmup_iterations", "gauge", (), "iterations",
        "Length of the sqrt(K) warm-up stage",
    ),
    MetricSpec(
        "hyqsat_strategy_total", "counter", ("strategy",), "calls",
        "Feedback strategies applied, by strategy name",
    ),
    MetricSpec(
        "hyqsat_band_total", "counter", ("band",), "calls",
        "GNB energy-band classifications, by band",
    ),
    MetricSpec(
        "hyqsat_embedded_clauses_total", "counter", (), "clauses",
        "Formula clauses embedded across all QA calls",
    ),
    MetricSpec(
        "hyqsat_frontend_cache_hits_total", "counter", (), "lookups",
        "Frontend compilation-cache hits",
    ),
    MetricSpec(
        "hyqsat_frontend_cache_misses_total", "counter", (), "lookups",
        "Frontend compilation-cache misses",
    ),
    MetricSpec(
        "hyqsat_device_compile_total", "counter", ("source",), "compiles",
        "Embedded-problem compiles by source (precompiled|device)",
    ),
    MetricSpec(
        "hyqsat_phase_seconds", "histogram", ("phase",), "seconds",
        "Wall-clock latency of one hybrid-iteration phase",
        buckets=LATENCY_BUCKETS_S,
    ),
    MetricSpec(
        "hyqsat_chain_break_fraction", "histogram", (), "fraction",
        "Best-sample chain-break fraction per QA call",
        buckets=FRACTION_BUCKETS,
    ),
    MetricSpec(
        "hyqsat_qa_energy", "histogram", (), "problem-units",
        "Best-sample energy per QA call (problem units)",
        buckets=ENERGY_BUCKETS,
    ),
    # -- CDCL engine ----------------------------------------------------
    MetricSpec(
        "hyqsat_cdcl_iterations_total", "counter", (), "iterations",
        "Search iterations (decision/propagation/conflict rounds)",
    ),
    MetricSpec(
        "hyqsat_cdcl_conflicts_total", "counter", (), "conflicts",
        "Conflicts analysed",
    ),
    MetricSpec(
        "hyqsat_cdcl_propagations_total", "counter", (), "assignments",
        "Unit propagations",
    ),
    MetricSpec(
        "hyqsat_cdcl_decisions_total", "counter", (), "decisions",
        "Decision literals picked",
    ),
    MetricSpec(
        "hyqsat_cdcl_restarts_total", "counter", (), "restarts",
        "Search restarts",
    ),
    MetricSpec(
        "hyqsat_cdcl_learned_clauses_total", "counter", (), "clauses",
        "Clauses learned",
    ),
    MetricSpec(
        "hyqsat_cdcl_propagations_per_s", "gauge", (), "assignments/s",
        "CDCL propagation throughput of the last solve (wall clock)",
    ),
    MetricSpec(
        "hyqsat_cdcl_conflicts_per_s", "gauge", (), "conflicts/s",
        "CDCL conflict throughput of the last solve (wall clock)",
    ),
    # -- solver service --------------------------------------------------
    MetricSpec(
        "hyqsat_service_jobs_total", "counter", ("state",), "jobs",
        "Jobs finalised by the service, by terminal state",
    ),
    MetricSpec(
        "hyqsat_service_dedup_hits_total", "counter", (), "jobs",
        "Jobs served another job's result via canonical-CNF dedup",
    ),
    MetricSpec(
        "hyqsat_service_queue_depth", "gauge", (), "jobs",
        "Jobs currently queued (admitted, not yet dispatched)",
    ),
    MetricSpec(
        "hyqsat_service_queue_wait_seconds", "histogram", (), "seconds",
        "Wall-clock time a dispatched job spent queued",
        buckets=LATENCY_BUCKETS_S,
    ),
    MetricSpec(
        "hyqsat_service_job_run_seconds", "histogram", (), "seconds",
        "Wall-clock time a job spent executing on a worker",
        buckets=LATENCY_BUCKETS_S,
    ),
    MetricSpec(
        "hyqsat_service_qpu_grants_total", "counter", (), "grants",
        "Exclusive QPU windows granted (a coalesced group counts once)",
    ),
    MetricSpec(
        "hyqsat_service_qpu_coalesced_total", "counter", (), "requests",
        "Anneal requests served by joining an identical request's window",
    ),
    MetricSpec(
        "hyqsat_service_qpu_busy_us", "gauge", (), "microseconds",
        "Modelled device time the shared QPU spent occupied",
    ),
    # -- durability tier --------------------------------------------------
    MetricSpec(
        "hyqsat_service_recoveries_total", "counter", (), "jobs",
        "Acked jobs re-emitted from the journal instead of re-solving",
    ),
    MetricSpec(
        "hyqsat_service_store_evictions_total", "counter", (), "entries",
        "Finished outcomes evicted from the bounded result store (LRU)",
    ),
    MetricSpec(
        "hyqsat_service_worker_retries_total", "counter", (), "jobs",
        "Jobs requeued after their worker process died",
    ),
    MetricSpec(
        "hyqsat_journal_records_total", "counter", ("kind",), "records",
        "Journal records appended, by kind (submit|start|retry|done)",
    ),
    MetricSpec(
        "hyqsat_journal_fsyncs_total", "counter", (), "fsyncs",
        "Journal fsync batches flushed to stable storage",
    ),
    MetricSpec(
        "hyqsat_journal_replayed_total", "counter", (), "records",
        "Journaled acked outcomes replayed on recovery",
    ),
    MetricSpec(
        "hyqsat_journal_torn_records_total", "counter", (), "records",
        "Invalid journal tail records dropped during recovery",
    ),
    MetricSpec(
        "hyqsat_device_health", "gauge", ("device",), "score",
        "Per-device EWMA health score of the annealer fleet (0..1)",
    ),
    MetricSpec(
        "hyqsat_device_quarantines_total", "counter", ("device",), "transitions",
        "Fleet members moved into quarantine, by device",
    ),
    # -- persistent result cache ------------------------------------------
    MetricSpec(
        "hyqsat_cache_hits_total", "counter", (), "lookups",
        "Exact solve-key hits served bit-identically from the persistent cache",
    ),
    MetricSpec(
        "hyqsat_cache_misses_total", "counter", (), "lookups",
        "Cache lookups that found no exact or subsumption answer",
    ),
    MetricSpec(
        "hyqsat_cache_subsumption_hits_total", "counter", ("kind",), "lookups",
        "Subsumption-layer hits, by certificate kind (model|unsat)",
    ),
    MetricSpec(
        "hyqsat_cache_warm_starts_total", "counter", (), "jobs",
        "Solves seeded with a clause-bank donor's learned clauses",
    ),
    MetricSpec(
        "hyqsat_cache_warm_start_conflicts_saved_total", "counter", (),
        "conflicts",
        "Conflicts saved by warm starts (donor conflicts minus actual)",
    ),
    MetricSpec(
        "hyqsat_cache_evictions_total", "counter", (), "entries",
        "Exact-result rows dropped by the cache's LRU cap or TTL",
    ),
    MetricSpec(
        "hyqsat_cache_entries", "gauge", (), "entries",
        "Exact-result rows currently in the persistent cache",
    ),
    # -- gateway & heterogeneous fleet ------------------------------------
    MetricSpec(
        "hyqsat_gateway_connections_total", "counter", (), "connections",
        "Client connections accepted since start",
    ),
    MetricSpec(
        "hyqsat_gateway_active_connections", "gauge", (), "connections",
        "Connections currently open",
    ),
    MetricSpec(
        "hyqsat_gateway_messages_total", "counter", ("type",), "messages",
        "Client messages received, by wire type (invalid = unparseable)",
    ),
    MetricSpec(
        "hyqsat_gateway_stream_events_total", "counter", ("type",), "messages",
        "Server messages sent, by wire type",
    ),
    MetricSpec(
        "hyqsat_gateway_jobs_total", "counter", ("state",), "jobs",
        "Gateway jobs reaching a terminal state, by state",
    ),
    MetricSpec(
        "hyqsat_gateway_rate_limited_total", "counter", (), "submissions",
        "Submissions rejected by a tenant's token bucket",
    ),
    MetricSpec(
        "hyqsat_gateway_quota_denied_total", "counter", (), "submissions",
        "Submissions rejected on an exhausted tenant QA budget",
    ),
    MetricSpec(
        "hyqsat_gateway_backpressure_rejects_total", "counter", (), "submissions",
        "Submissions shed because the admission queue was full",
    ),
    MetricSpec(
        "hyqsat_fleet_devices", "gauge", (), "devices",
        "QPUs in the gateway's heterogeneous fleet",
    ),
    MetricSpec(
        "hyqsat_fleet_routed_total", "counter", ("device",), "jobs",
        "Jobs placed per fleet device by the topology-aware router",
    ),
    MetricSpec(
        "hyqsat_fleet_routing_fallbacks_total", "counter", (), "jobs",
        "Jobs that fit no device fully and took the best partial embedding",
    ),
)

METRIC_NAMES: FrozenSet[str] = frozenset(spec.name for spec in METRICS)

#: The labelled phases of ``hyqsat_phase_seconds``.
PHASES: Tuple[str, ...] = ("select", "embed", "anneal", "classify", "feedback")

#: Breaker-state encoding of the ``hyqsat_breaker_state`` gauge.
BREAKER_STATE_CODES: Dict[str, int] = {"closed": 0, "half_open": 1, "open": 2}


def declare_solver_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Register every catalog metric (idempotent).

    Called by the hybrid solver when metrics are enabled so exporters
    and the doc-drift test always see the complete catalog, including
    counters that never fire on a given run.
    """
    for spec in METRICS:
        if spec.kind == "counter":
            registry.counter(spec.name, spec.help, spec.labels)
        elif spec.kind == "gauge":
            registry.gauge(spec.name, spec.help, spec.labels)
        elif spec.kind == "histogram":
            registry.histogram(
                spec.name,
                spec.help,
                spec.labels,
                buckets=spec.buckets or LATENCY_BUCKETS_S,
            )
        else:  # pragma: no cover - catalog typo guard
            raise ValueError(f"unknown metric kind {spec.kind!r}")
    return registry


def declare_gateway_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Register the catalog for a gateway process (idempotent).

    The catalog is one namespace, so this is the same full
    registration as :func:`declare_solver_metrics` — a separate entry
    point only so gateway code reads as declaring its own group and
    keeps working if the groups ever split.
    """
    return declare_solver_metrics(registry)


# ---------------------------------------------------------------------------
# Doc cross-checking
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"`(hyqsat_[a-z0-9_]+)`")


def metric_names_in_doc(text: str) -> List[str]:
    """Backtick-quoted ``hyqsat_*`` metric names found in a document.

    Histogram series suffixes (``_bucket``/``_sum``/``_count``) are
    normalised away so the worked examples in docs/TELEMETRY.md don't
    register as phantom metrics.
    """
    names = set()
    for match in _METRIC_NAME_RE.finditer(text):
        name = match.group(1)
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in (
                n.name for n in METRICS
            ):
                name = name[: -len(suffix)]
                break
        names.add(name)
    return sorted(names)
