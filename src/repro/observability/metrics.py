"""Counters, gauges, and histograms with Prometheus/JSON export.

A zero-dependency metrics vocabulary in the Prometheus style:

- :class:`Counter` — monotonically increasing float (``inc``);
- :class:`Gauge` — settable float (``set`` / ``inc``);
- :class:`Histogram` — cumulative fixed-bucket distribution
  (``observe``) with ``sum`` and ``count``.

Each metric lives in a :class:`MetricsRegistry` keyed by name; metrics
declared with label names fan out into per-label-value children via
``.labels(key=value)``.  The registry renders to the Prometheus text
exposition format (:meth:`MetricsRegistry.to_prometheus`) and to a
plain dict/JSON form (:meth:`MetricsRegistry.to_json`).

The solver's complete metric catalog lives in
:mod:`repro.observability.schema` (and is documented in
``docs/TELEMETRY.md``); :func:`repro.observability.schema.
declare_solver_metrics` pre-registers every catalog metric so exports
and the doc-drift test see the full set even on runs where a given
counter never fires (e.g. fault counters on a fault-free device).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

LabelValues = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for wall-clock phase latencies (seconds).
LATENCY_BUCKETS_S = (
    1e-5,
    1e-4,
    1e-3,
    5e-3,
    1e-2,
    5e-2,
    1e-1,
    5e-1,
    1.0,
    5.0,
)

#: Default buckets for fractions in [0, 1] (e.g. chain-break share).
FRACTION_BUCKETS = (0.0, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0)


def _label_key(labelnames: Sequence[str], labels: Mapping[str, Any]) -> LabelValues:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


class _Metric:
    """Shared machinery of the three metric types."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[LabelValues, "_Metric"] = {}

    def labels(self, **labels: Any) -> "_Metric":
        """Child metric for one combination of label values."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name} has no labels")
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> "_Metric":
        return type(self)(self.name, self.help)

    def _check_unlabelled(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} is labelled by {self.labelnames}; "
                "use .labels(...) first"
            )

    @property
    def children(self) -> Dict[LabelValues, "_Metric"]:
        """Per-label-value children (empty for unlabelled metrics)."""
        return self._children


class Counter(_Metric):
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        self._check_unlabelled()
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge(_Metric):
    """Settable instantaneous value."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the value."""
        self._check_unlabelled()
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self._check_unlabelled()
        self.value += amount


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket is always
    present.  ``counts[i]`` is the number of observations <=
    ``buckets[i]`` (cumulative).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ):
        super().__init__(name, help, labelnames)
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._check_unlabelled()
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named collection of metrics with get-or-create accessors.

    Re-requesting an existing name returns the same object; asking for
    it under a different type or label set raises, so every
    instrumentation point stays consistent with the declared catalog.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # -- get-or-create -------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.kind != cls.kind:
                raise ValueError(
                    f"metric {name} already registered as {existing.kind}"
                )
            # Call sites may re-request a declared metric without
            # repeating its label names; an explicit mismatch raises.
            if labelnames and tuple(labelnames) != existing.labelnames:
                raise ValueError(
                    f"metric {name} labels mismatch: "
                    f"{existing.labelnames} vs {tuple(labelnames)}"
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # -- introspection -------------------------------------------------

    def names(self) -> List[str]:
        """Sorted registered metric names."""
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        """The metric registered under ``name`` (None if absent)."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- export --------------------------------------------------------

    @staticmethod
    def _label_str(key: LabelValues) -> str:
        if not key:
            return ""
        inner = ",".join(f'{name}="{value}"' for name, value in key)
        return "{" + inner + "}"

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            series: List[Tuple[LabelValues, _Metric]]
            if metric.labelnames:
                series = sorted(metric.children.items())
            else:
                series = [((), metric)]
            for key, child in series:
                label_str = self._label_str(key)
                if isinstance(child, Histogram):
                    bounds = [*(str(b) for b in child.buckets), "+Inf"]
                    for bound, count in zip(bounds, child.counts):
                        bucket_key = key + (("le", bound),)
                        lines.append(
                            f"{name}_bucket{self._label_str(bucket_key)} {count}"
                        )
                    lines.append(f"{name}_sum{label_str} {child.sum}")
                    lines.append(f"{name}_count{label_str} {child.count}")
                else:
                    lines.append(f"{name}{label_str} {child.value}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        out: Dict[str, Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: Dict[str, Any] = {
                "type": metric.kind,
                "help": metric.help,
            }
            if metric.labelnames:
                entry["labels"] = list(metric.labelnames)
                entry["series"] = [
                    {
                        "labels": dict(key),
                        **self._series_value(child),
                    }
                    for key, child in sorted(metric.children.items())
                ]
            else:
                entry.update(self._series_value(metric))
            out[name] = entry
        return out

    @staticmethod
    def _series_value(metric: _Metric) -> Dict[str, Any]:
        if isinstance(metric, Histogram):
            return {
                "buckets": list(metric.buckets),
                "counts": list(metric.counts),
                "sum": metric.sum,
                "count": metric.count,
            }
        return {"value": metric.value}

    def dump_json(self) -> str:
        """:meth:`to_json` rendered as an indented JSON string."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)
