"""Structured tracing for the hybrid solve loop.

A :class:`Tracer` emits typed records — *spans* (named intervals with a
parent, forming a tree) and *events* (named points attached to the
enclosing span) — with two clocks per record:

- **wall clock**: monotonic seconds (``time.perf_counter``) relative to
  tracer creation; this is real CPU time of the pure-Python pipeline.
- **modelled QPU clock**: microseconds of modelled device time (the
  :class:`~repro.annealer.timing.QpuTimingModel` accounting), injected
  via :meth:`Tracer.set_qpu_clock`.  It only advances across device
  calls, so a span's ``qpu_dur_us`` isolates the annealer share of an
  interval exactly — the distinction Figure 11's breakdown is built on.

Spans nest through an explicit stack: ``start_span`` parents the new
span under the innermost open span, so call sites never pass parent
ids around.  Records are handed to a *sink* — an in-memory list
(:class:`ListSink`) or a JSONL file (:class:`JsonlSink`) — when the
span **ends** (children therefore appear before their parents in the
stream, as in most trace formats; :mod:`repro.analysis.trace_report`
rebuilds the tree from ids).

The complete record schema — every span name, event name, attribute,
and unit — is documented in ``docs/TELEMETRY.md`` and mirrored in
:mod:`repro.observability.schema`; the trace-contract tests enforce
that the two stay in sync.

The disabled path is a singleton :data:`NULL_TRACER` whose methods are
no-ops returning a shared null span, so instrumentation points cost an
attribute check (``tracer.enabled``) or one trivial call when tracing
is off; ``benchmarks/bench_observability.py`` measures the residual
overhead (acceptance: <= 2% on the hybrid solve hot path).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, IO, Iterable, List, Optional

#: Trace format identifier written in the leading meta record; bump on
#: any breaking change to the record schema.
TRACE_SCHEMA_VERSION = "hyqsat-trace/1"


class ListSink:
    """Collects records in memory (``records`` attribute)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record."""
        self.records.append(record)

    def close(self) -> None:
        """No-op (memory sink)."""


class JsonlSink:
    """Writes each record as one JSON line.

    Accepts a path (opened lazily, closed by :meth:`close`) or an
    already-open text handle (left open on :meth:`close` unless it was
    path-opened here).
    """

    def __init__(self, path_or_handle) -> None:
        self._path: Optional[str] = None
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        if hasattr(path_or_handle, "write"):
            self._handle = path_or_handle
        else:
            self._path = str(path_or_handle)

    def write(self, record: Dict[str, Any]) -> None:
        """Serialise one record as a JSON line."""
        if self._handle is None:
            self._handle = open(self._path, "w", encoding="utf-8")
            self._owns_handle = True
        json.dump(record, self._handle, separators=(",", ":"), sort_keys=True)
        self._handle.write("\n")

    def close(self) -> None:
        """Flush and (for path-opened files) close the output."""
        if self._handle is not None:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()
                self._handle = None


class Span:
    """One open (or finished) trace interval.

    Usable imperatively (``span = tracer.start_span(...); span.end()``)
    or as a context manager.  ``set(**attrs)`` merges attributes at any
    point before the span ends.
    """

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "t_wall_s",
        "t_qpu_us",
        "attrs",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        t_wall_s: float,
        t_qpu_us: float,
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_wall_s = t_wall_s
        self.t_qpu_us = t_qpu_us
        self.attrs = attrs
        self._ended = False

    def set(self, **attrs: Any) -> "Span":
        """Merge attributes into the span."""
        self.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> None:
        """Close the span and emit its record."""
        if not self._ended:
            self._ended = True
            if attrs:
                self.attrs.update(attrs)
            self.tracer._end_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self.end()


class _NullSpan:
    """The do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Shared as the module singleton :data:`NULL_TRACER`; instrumented
    code may either call through it (cheap) or skip instrumentation
    entirely after checking :attr:`enabled` (cheapest — the CDCL
    per-iteration path does this).
    """

    enabled = False

    def start_span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared null span."""
        return _NULL_SPAN

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared null span (context-manager form)."""
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        """Drop the event."""

    def set_qpu_clock(self, clock: Callable[[], float]) -> None:
        """Ignore the clock."""

    def close(self) -> None:
        """No-op."""


NULL_TRACER = NullTracer()


class Tracer:
    """Span/event emitter with an explicit nesting stack.

    Parameters
    ----------
    sink:
        Record consumer; defaults to an in-memory :class:`ListSink`
        (exposed as :attr:`records`).
    qpu_clock:
        Zero-argument callable returning the current modelled device
        time in microseconds; settable later via :meth:`set_qpu_clock`
        (the hybrid solver injects its device's accumulator).
    """

    enabled = True

    def __init__(
        self,
        sink=None,
        qpu_clock: Optional[Callable[[], float]] = None,
    ):
        self.sink = sink if sink is not None else ListSink()
        self._qpu_clock: Callable[[], float] = qpu_clock or (lambda: 0.0)
        self._t0 = time.perf_counter()
        self._next_id = 1
        self._stack: List[Span] = []
        self._closed = False
        self.sink.write(
            {
                "type": "meta",
                "schema": TRACE_SCHEMA_VERSION,
                "clocks": {"wall": "seconds", "qpu": "microseconds"},
            }
        )

    # -- clocks --------------------------------------------------------

    def set_qpu_clock(self, clock: Callable[[], float]) -> None:
        """Install the modelled-QPU-time source (microseconds)."""
        self._qpu_clock = clock

    def _now_wall(self) -> float:
        return time.perf_counter() - self._t0

    def _now_qpu(self) -> float:
        return float(self._qpu_clock())

    # -- spans ---------------------------------------------------------

    @property
    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span (None at the root)."""
        return self._stack[-1].span_id if self._stack else None

    def start_span(self, name: str, **attrs: Any) -> Span:
        """Open a span under the innermost open span."""
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=self.current_span_id,
            t_wall_s=self._now_wall(),
            t_qpu_us=self._now_qpu(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    #: ``with tracer.span("name"): ...`` — Span is its own context
    #: manager, so the two spellings share one implementation.
    span = start_span

    def _end_span(self, span: Span) -> None:
        # Tolerate out-of-order ends (e.g. an exception skipped a
        # child's end): close every span opened after this one first.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop().end()
        if self._stack:
            self._stack.pop()
        self.sink.write(
            {
                "type": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "t_wall_s": round(span.t_wall_s, 9),
                "wall_dur_s": round(self._now_wall() - span.t_wall_s, 9),
                "t_qpu_us": round(span.t_qpu_us, 6),
                "qpu_dur_us": round(self._now_qpu() - span.t_qpu_us, 6),
                "attrs": span.attrs,
            }
        )

    # -- events --------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point record attached to the innermost open span."""
        self.sink.write(
            {
                "type": "event",
                "name": name,
                "span": self.current_span_id,
                "t_wall_s": round(self._now_wall(), 9),
                "t_qpu_us": round(self._now_qpu(), 6),
                "attrs": dict(attrs),
            }
        )

    # -- lifecycle -----------------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """In-memory records (ListSink only)."""
        return getattr(self.sink, "records", [])

    def close(self) -> None:
        """End dangling spans and flush/close the sink."""
        if self._closed:
            return
        while self._stack:
            self._stack[-1].end()
        self._closed = True
        self.sink.close()


def read_trace(path_or_lines) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a record list.

    Accepts a file path or an iterable of JSON lines; blank lines are
    skipped.  Raises ``ValueError`` when the leading meta record is
    missing or declares an unknown schema.
    """
    if isinstance(path_or_lines, (str, bytes)) or hasattr(
        path_or_lines, "__fspath__"
    ):
        with open(path_or_lines, "r", encoding="utf-8") as handle:
            lines: Iterable[str] = handle.readlines()
    else:
        lines = path_or_lines
    records = [json.loads(line) for line in lines if line.strip()]
    if not records or records[0].get("type") != "meta":
        raise ValueError("not a hyqsat trace: missing meta record")
    if records[0].get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {records[0].get('schema')!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    return records
