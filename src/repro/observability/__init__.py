"""Structured observability for the hybrid solve loop.

A lightweight, zero-dependency tracing + metrics subsystem threaded
through the whole stack (frontend, annealer, resilience proxy, CDCL
engine, hybrid loop):

- :mod:`repro.observability.tracer` — typed span/event records with
  wall-clock *and* modelled-QPU-clock durations, written as JSONL;
- :mod:`repro.observability.metrics` — counters/gauges/histograms with
  Prometheus-text and JSON exporters;
- :mod:`repro.observability.schema` — the authoritative span tree and
  metric catalog (the in-code twin of ``docs/TELEMETRY.md``).

Everything hangs off an :class:`Observability` bundle passed into
:class:`~repro.core.hyqsat.HyQSatSolver`; the default is the shared
:data:`DISABLED` bundle whose tracer is a no-op and whose metrics slot
is ``None``, so uninstrumented runs pay (benchmarked) nothing.

Typical use::

    from repro.observability import Observability

    obs = Observability.tracing("run.jsonl", metrics=True)
    result = HyQSatSolver(formula, observability=obs).solve()
    obs.close()                       # flush the JSONL trace
    print(obs.metrics.to_prometheus())
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.observability.metrics import (
    Counter,
    FRACTION_BUCKETS,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.observability.schema import (
    BREAKER_STATE_CODES,
    EVENT_PARENTS,
    METRIC_NAMES,
    METRICS,
    PHASES,
    SPAN_CHILDREN,
    SPAN_NAMES,
    declare_gateway_metrics,
    declare_solver_metrics,
    metric_names_in_doc,
)
from repro.observability.tracer import (
    JsonlSink,
    ListSink,
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_SCHEMA_VERSION,
    Tracer,
    read_trace,
)


class Observability:
    """Tracer + metrics bundle threaded through the solver stack.

    ``tracer`` is never None (the null tracer stands in when tracing is
    off); ``metrics`` is None when metrics are disabled so hot paths
    can skip instrumentation with one identity check.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        """True when any instrumentation is active."""
        return self.tracer.enabled or self.metrics is not None

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared no-op bundle (also module-level :data:`DISABLED`)."""
        return DISABLED

    @classmethod
    def tracing(cls, sink=None, metrics: bool = False) -> "Observability":
        """Tracing bundle; ``sink`` is a path/handle (JSONL) or a sink
        object, defaulting to in-memory records."""
        if sink is None or isinstance(sink, (ListSink, JsonlSink)):
            trace_sink = sink
        else:
            trace_sink = JsonlSink(sink)
        return cls(
            tracer=Tracer(sink=trace_sink),
            metrics=MetricsRegistry() if metrics else None,
        )

    @classmethod
    def profiling(cls) -> "Observability":
        """Metrics-only bundle (the CLI's ``--profile`` mode)."""
        return cls(metrics=MetricsRegistry())

    def close(self) -> None:
        """Flush/close the tracer's sink (no-op when disabled)."""
        self.tracer.close()


#: The shared disabled bundle used wherever no observability is passed.
DISABLED = Observability()


def profile_rows(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Per-phase aggregate timings from ``hyqsat_phase_seconds``.

    Returns one row per phase (in pipeline order) with ``count``,
    ``total_s``, and ``mean_ms`` — the ``--profile`` summary the CLI
    prints.
    """
    histogram = registry.get("hyqsat_phase_seconds")
    rows: List[Dict[str, Any]] = []
    if histogram is None:
        return rows
    by_phase = {dict(key)["phase"]: child for key, child in histogram.children.items()}
    for phase in PHASES:
        child = by_phase.get(phase)
        if child is None or child.count == 0:
            continue
        rows.append(
            {
                "phase": phase,
                "count": child.count,
                "total_s": round(child.sum, 6),
                "mean_ms": round(1e3 * child.sum / child.count, 4),
            }
        )
    return rows


__all__ = [
    "BREAKER_STATE_CODES",
    "Counter",
    "DISABLED",
    "EVENT_PARENTS",
    "FRACTION_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LATENCY_BUCKETS_S",
    "ListSink",
    "METRICS",
    "METRIC_NAMES",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "PHASES",
    "SPAN_CHILDREN",
    "SPAN_NAMES",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "declare_gateway_metrics",
    "declare_solver_metrics",
    "metric_names_in_doc",
    "profile_rows",
    "read_trace",
]
