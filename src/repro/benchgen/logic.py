"""Tseitin CNF construction for combinational logic.

Shared by the circuit-fault-analysis (CFA), integer-factorisation (IF)
and adder-equivalence (CRY) generators: a builder that allocates
variables, adds gate constraints in width-<=3 Tseitin form, and
assembles arithmetic blocks (half/full adders, ripple-carry adders,
array multipliers).

Literals are signed DIMACS ints throughout; a *net* is such a literal,
so negation is free (``-net``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Clause


class CnfBuilder:
    """Incremental CNF builder with gate primitives.

    Every gate method returns the output net (a fresh positive
    variable) and appends the Tseitin clauses that force it to equal
    the gate function.  All emitted clauses have width <= 3, so the
    resulting formula is directly HyQSAT-ready.
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[Clause] = []

    @property
    def num_vars(self) -> int:
        """Variables allocated so far."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Clauses added so far."""
        return len(self._clauses)

    def new_var(self) -> int:
        """A fresh positive net."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> List[int]:
        """``count`` fresh nets."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a raw clause (signed DIMACS literals)."""
        self._clauses.append(Clause(lits))

    def assert_true(self, net: int) -> None:
        """Unit clause forcing ``net`` to 1."""
        self.add_clause([net])

    def assert_false(self, net: int) -> None:
        """Unit clause forcing ``net`` to 0."""
        self.add_clause([-net])

    def constant(self, value: bool) -> int:
        """A net frozen to a constant."""
        net = self.new_var()
        self.add_clause([net] if value else [-net])
        return net

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------

    def not_gate(self, a: int) -> int:
        """Logical negation (free: just the negated literal)."""
        return -a

    def and_gate(self, a: int, b: int) -> int:
        """z = a AND b."""
        z = self.new_var()
        self.add_clause([-z, a])
        self.add_clause([-z, b])
        self.add_clause([z, -a, -b])
        return z

    def or_gate(self, a: int, b: int) -> int:
        """z = a OR b."""
        z = self.new_var()
        self.add_clause([z, -a])
        self.add_clause([z, -b])
        self.add_clause([-z, a, b])
        return z

    def xor_gate(self, a: int, b: int) -> int:
        """z = a XOR b."""
        z = self.new_var()
        self.add_clause([-z, a, b])
        self.add_clause([-z, -a, -b])
        self.add_clause([z, -a, b])
        self.add_clause([z, a, -b])
        return z

    def mux_gate(self, sel: int, a: int, b: int) -> int:
        """z = a if sel else b."""
        z = self.new_var()
        self.add_clause([-sel, -a, z])
        self.add_clause([-sel, a, -z])
        self.add_clause([sel, -b, z])
        self.add_clause([sel, b, -z])
        return z

    def equal_gate(self, a: int, b: int) -> int:
        """z = (a == b), i.e. XNOR."""
        return -self.xor_gate(a, b)

    def majority_gate(self, a: int, b: int, c: int) -> int:
        """z = majority(a, b, c) — the textbook carry function."""
        z = self.new_var()
        self.add_clause([-z, a, b])
        self.add_clause([-z, a, c])
        self.add_clause([-z, b, c])
        self.add_clause([z, -a, -b])
        self.add_clause([z, -a, -c])
        self.add_clause([z, -b, -c])
        return z

    def or_many(self, nets: Sequence[int]) -> int:
        """z = OR of any number of nets (balanced tree of or_gate)."""
        nets = list(nets)
        if not nets:
            return self.constant(False)
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.or_gate(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def and_many(self, nets: Sequence[int]) -> int:
        """z = AND of any number of nets."""
        nets = list(nets)
        if not nets:
            return self.constant(True)
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.and_gate(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    # ------------------------------------------------------------------
    # Arithmetic blocks
    # ------------------------------------------------------------------

    def half_adder(self, a: int, b: int) -> Tuple[int, int]:
        """(sum, carry) of a + b."""
        return self.xor_gate(a, b), self.and_gate(a, b)

    def full_adder(self, a: int, b: int, c: int) -> Tuple[int, int]:
        """(sum, carry) of a + b + c, carry via majority."""
        s = self.xor_gate(self.xor_gate(a, b), c)
        carry = self.majority_gate(a, b, c)
        return s, carry

    def full_adder_factored(self, a: int, b: int, c: int) -> Tuple[int, int]:
        """Same function, alternative structure: carry =
        (a AND b) OR (c AND (a XOR b)) — used by the CRY equivalence
        miters as the second implementation."""
        ab_xor = self.xor_gate(a, b)
        s = self.xor_gate(ab_xor, c)
        carry = self.or_gate(self.and_gate(a, b), self.and_gate(c, ab_xor))
        return s, carry

    def ripple_carry_adder(
        self,
        a_bits: Sequence[int],
        b_bits: Sequence[int],
        factored: bool = False,
    ) -> List[int]:
        """Sum bits (LSB first, length max+1) of two binary numbers."""
        width = max(len(a_bits), len(b_bits))
        zero = self.constant(False)
        a = list(a_bits) + [zero] * (width - len(a_bits))
        b = list(b_bits) + [zero] * (width - len(b_bits))
        adder = self.full_adder_factored if factored else self.full_adder
        out: List[int] = []
        carry = self.constant(False)
        for i in range(width):
            s, carry = adder(a[i], b[i], carry)
            out.append(s)
        out.append(carry)
        return out

    def multiplier(
        self, a_bits: Sequence[int], b_bits: Sequence[int]
    ) -> List[int]:
        """Array multiplier: product bits (LSB first,
        length len(a)+len(b))."""
        zero = self.constant(False)
        acc: List[int] = [zero] * (len(a_bits) + len(b_bits))
        for j, b_bit in enumerate(b_bits):
            row = [self.and_gate(a_bit, b_bit) for a_bit in a_bits]
            shifted = [zero] * j + row
            acc = self._add_into(acc, shifted)
        return acc[: len(a_bits) + len(b_bits)]

    def _add_into(self, acc: List[int], addend: List[int]) -> List[int]:
        width = max(len(acc), len(addend))
        zero = self.constant(False)
        acc = acc + [zero] * (width - len(acc))
        addend = list(addend) + [zero] * (width - len(addend))
        out: List[int] = []
        carry = self.constant(False)
        for i in range(width):
            s, carry = self.full_adder(acc[i], addend[i], carry)
            out.append(s)
        out.append(carry)
        return out

    def assert_equals_constant(self, bits: Sequence[int], value: int) -> None:
        """Force a bit vector (LSB first) to a constant integer."""
        if value < 0:
            raise ValueError("value must be non-negative")
        for i, bit in enumerate(bits):
            if (value >> i) & 1:
                self.assert_true(bit)
            else:
                self.assert_false(bit)
        if value >> len(bits):
            raise ValueError(
                f"value {value} does not fit in {len(bits)} bits"
            )

    def build(self) -> CNF:
        """The accumulated formula."""
        return CNF(self._clauses, num_vars=self._num_vars)
