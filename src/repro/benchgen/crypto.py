"""Adder-equivalence miters (the CRY "Cmpadd" benchmark).

Cmpadd-style cryptographic-hardware verification: prove two adder
implementations equivalent by asking SAT for a counterexample.  The
two copies here are a textbook ripple-carry adder with majority-gate
carries and a re-factored variant whose carry is
``(a AND b) OR (c AND (a XOR b))``; the functions are identical, so the
miter is unsatisfiable.  ``inject_bug=True`` flips one full adder's
carry input polarity in the second copy, which makes the miter
satisfiable (the counterexample is the test the verifier reports).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.benchgen.logic import CnfBuilder
from repro.sat.cnf import CNF


def adder_equivalence_cnf(width: int, bug_position: int = -1) -> CNF:
    """Miter of two ``width``-bit adders; ``bug_position >= 0`` corrupts
    that full adder in the second implementation."""
    if width < 1:
        raise ValueError("width must be >= 1")
    builder = CnfBuilder()
    a = builder.new_vars(width)
    b = builder.new_vars(width)

    sum1 = builder.ripple_carry_adder(a, b, factored=False)

    # Second implementation, built inline so a bug can be injected.
    carry = builder.constant(False)
    sum2: List[int] = []
    for i in range(width):
        cin = -carry if i == bug_position else carry
        s, carry = builder.full_adder_factored(a[i], b[i], cin)
        sum2.append(s)
    sum2.append(carry)

    differences = [
        builder.xor_gate(s1, s2) for s1, s2 in zip(sum1, sum2)
    ]
    builder.assert_true(builder.or_many(differences))  # some bit differs
    return builder.build()


def adder_equivalence_instance(
    width: int,
    rng: np.random.Generator,
    inject_bug: bool = False,
) -> CNF:
    """A CRY-style equivalence-checking instance.

    Without a bug the miter is UNSAT (the adders are equivalent); with
    ``inject_bug`` a random stage is corrupted and the instance is SAT.
    """
    bug = int(rng.integers(0, width)) if inject_bug else -1
    return adder_equivalence_cnf(width, bug_position=bug)
