"""Blocks-world planning instances (the BP benchmark).

SATLIB's bw (blocks world) family encodes STRIPS planning as SAT: does
a plan of T steps transform the initial tower configuration into the
goal configuration?  The linear encoding used here has

- state variables ``on(b, y, t)`` — block b sits on y (a block or the
  table) at step t,
- action variables ``move(b, y, t)`` — block b is moved onto y between
  steps t and t+1,

with exactly-one-action, precondition, effect, frame, and state-
consistency axioms.  At-least-one clauses are wide, so the instance is
finished with :func:`repro.sat.to_3sat` — which is also why BP is the
paper's showcase for inputs that arrive as k-SAT.

These instances are dominated by unit propagation (the paper notes BP
solves in ~7 iterations), matching the original benchmark's behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sat.cnf import CNF, Clause
from repro.sat.ksat import to_3sat

TABLE = 0  # position id of the table


def random_towers(num_blocks: int, rng: np.random.Generator) -> List[List[int]]:
    """A random configuration: a list of towers (bottom first),
    blocks numbered 1..num_blocks."""
    blocks = list(rng.permutation(np.arange(1, num_blocks + 1)))
    towers: List[List[int]] = []
    cursor = 0
    while cursor < num_blocks:
        height = int(rng.integers(1, num_blocks - cursor + 1))
        towers.append([int(b) for b in blocks[cursor : cursor + height]])
        cursor += height
    return towers


def _support_of(towers: List[List[int]], num_blocks: int) -> Dict[int, int]:
    """block -> what it sits on (TABLE or block id)."""
    support: Dict[int, int] = {}
    for tower in towers:
        below = TABLE
        for block in tower:
            support[block] = below
            below = block
    return support


class _BlocksEncoding:
    """Variable numbering for the blocks-world encoding."""

    def __init__(self, num_blocks: int, horizon: int):
        self.num_blocks = num_blocks
        self.horizon = horizon
        self.positions = [TABLE] + list(range(1, num_blocks + 1))
        self._next = 1
        self._on: Dict[Tuple[int, int, int], int] = {}
        self._move: Dict[Tuple[int, int, int], int] = {}
        for t in range(horizon + 1):
            for b in range(1, num_blocks + 1):
                for y in self.positions:
                    if y != b:
                        self._on[(b, y, t)] = self._next
                        self._next += 1
        for t in range(horizon):
            for b in range(1, num_blocks + 1):
                for y in self.positions:
                    if y != b:
                        self._move[(b, y, t)] = self._next
                        self._next += 1

    @property
    def num_vars(self) -> int:
        return self._next - 1

    def on(self, block: int, support: int, t: int) -> int:
        return self._on[(block, support, t)]

    def move(self, block: int, dest: int, t: int) -> int:
        return self._move[(block, dest, t)]

    def moves_of_block(self, block: int, t: int) -> List[int]:
        return [
            self.move(block, y, t) for y in self.positions if y != block
        ]

    def all_moves(self, t: int) -> List[int]:
        return [
            self.move(b, y, t)
            for b in range(1, self.num_blocks + 1)
            for y in self.positions
            if y != b
        ]


def blocks_world_cnf(
    initial: List[List[int]],
    goal: List[List[int]],
    horizon: int,
    num_blocks: int,
) -> CNF:
    """The (pre-reduction) planning CNF; may contain wide clauses."""
    enc = _BlocksEncoding(num_blocks, horizon)
    clauses: List[Clause] = []
    blocks = list(range(1, num_blocks + 1))

    init_support = _support_of(initial, num_blocks)
    goal_support = _support_of(goal, num_blocks)

    # Initial and goal states as units.
    for b in blocks:
        for y in enc.positions:
            if y == b:
                continue
            sign = 1 if init_support[b] == y else -1
            clauses.append(Clause([sign * enc.on(b, y, 0)]))
            gsign = 1 if goal_support[b] == y else -1
            clauses.append(Clause([gsign * enc.on(b, y, horizon)]))

    for t in range(horizon + 1):
        for b in blocks:
            # Each block on at least one support (wide) ...
            clauses.append(Clause([enc.on(b, y, t) for y in enc.positions if y != b]))
            # ... and at most one.
            supports = [y for y in enc.positions if y != b]
            for i in range(len(supports)):
                for j in range(i + 1, len(supports)):
                    clauses.append(
                        Clause([-enc.on(b, supports[i], t), -enc.on(b, supports[j], t)])
                    )
        # At most one block directly on any block.
        for y in blocks:
            stackers = [b for b in blocks if b != y]
            for i in range(len(stackers)):
                for j in range(i + 1, len(stackers)):
                    clauses.append(
                        Clause([-enc.on(stackers[i], y, t), -enc.on(stackers[j], y, t)])
                    )

    for t in range(horizon):
        moves = enc.all_moves(t)
        # Exactly one action per step: at least one (wide) + pairwise.
        clauses.append(Clause(moves))
        for i in range(len(moves)):
            for j in range(i + 1, len(moves)):
                clauses.append(Clause([-moves[i], -moves[j]]))
        for b in blocks:
            for y in enc.positions:
                if y == b:
                    continue
                act = enc.move(b, y, t)
                # Preconditions: b clear, destination clear.
                for c in blocks:
                    if c != b:
                        clauses.append(Clause([-act, -enc.on(c, b, t)]))
                    if y != TABLE and c != y and c != b:
                        clauses.append(Clause([-act, -enc.on(c, y, t)]))
                # Effect.
                clauses.append(Clause([-act, enc.on(b, y, t + 1)]))
        # Frame axioms: support changes require a move of that block.
        for b in blocks:
            move_lits = enc.moves_of_block(b, t)
            for y in enc.positions:
                if y == b:
                    continue
                clauses.append(
                    Clause([-enc.on(b, y, t), enc.on(b, y, t + 1)] + move_lits)
                )
    return CNF(clauses, num_vars=enc.num_vars)


def blocks_world_instance(
    num_blocks: int,
    horizon: Optional[int],
    rng: np.random.Generator,
) -> CNF:
    """A BP-style 3-SAT instance (post k-SAT reduction).

    ``horizon=None`` picks ``2 * num_blocks`` steps, enough for any
    reconfiguration (unstack everything, restack), so the instance is
    satisfiable.
    """
    if num_blocks < 2:
        raise ValueError("need at least 2 blocks")
    initial = random_towers(num_blocks, rng)
    goal = random_towers(num_blocks, rng)
    steps = horizon if horizon is not None else 2 * num_blocks
    wide = blocks_world_cnf(initial, goal, steps, num_blocks)
    return to_3sat(wide).formula
