"""Benchmark instance generators for the paper's seven domains.

The paper evaluates on SATLIB / SAT-2002 instances; those archives are
not redistributable here, so each family is *generated* from the same
instance distribution (DESIGN.md documents the substitution):

- :mod:`repro.benchgen.random_ksat` — uniform random 3-SAT (the AI
  UF-series benchmarks).
- :mod:`repro.benchgen.graph_coloring` — flat-graph 3-colouring (GC).
- :mod:`repro.benchgen.circuit` — circuit fault analysis miters (CFA).
- :mod:`repro.benchgen.planning` — blocks-world planning (BP).
- :mod:`repro.benchgen.inductive` — inductive inference (II).
- :mod:`repro.benchgen.factoring` — integer factorisation (IF).
- :mod:`repro.benchgen.crypto` — adder-equivalence miters (CRY).
- :mod:`repro.benchgen.suites` — the Table I benchmark suite.
"""

from repro.benchgen.circuit import circuit_fault_instance
from repro.benchgen.crypto import adder_equivalence_instance
from repro.benchgen.factoring import factoring_instance
from repro.benchgen.graph_coloring import flat_graph_coloring_instance
from repro.benchgen.inductive import inductive_inference_instance
from repro.benchgen.planning import blocks_world_instance
from repro.benchgen.random_ksat import random_3sat, random_ksat
from repro.benchgen.suites import BENCHMARKS, BenchmarkSpec, generate_suite

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "adder_equivalence_instance",
    "blocks_world_instance",
    "circuit_fault_instance",
    "factoring_instance",
    "flat_graph_coloring_instance",
    "generate_suite",
    "inductive_inference_instance",
    "random_3sat",
    "random_ksat",
]
