"""Uniform random k-SAT generation (the SATLIB "uf" AI benchmarks).

The AI1–AI5 benchmarks are uniform random 3-SAT at the hard
clause/variable ratio ~4.3 (UF150-645 ... UF250-1065).  SATLIB's uf
series is *filtered satisfiable*: instances are drawn uniformly and
kept only if a complete solver proves them satisfiable.  The
``planted`` option instead hides a solution (cheaper, but known to
produce easier instances); the suite generator uses filtering to stay
faithful.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sat.cnf import CNF, Clause


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int,
    rng: np.random.Generator,
    planted: Optional[np.ndarray] = None,
) -> CNF:
    """Draw a uniform random k-SAT formula.

    Each clause picks ``k`` distinct variables and independent signs;
    duplicate clauses are redrawn so the formula has exactly
    ``num_clauses`` distinct clauses.  With ``planted`` (a boolean
    array indexed 1..n), clauses falsified by the hidden assignment are
    rejected, guaranteeing satisfiability.
    """
    if num_vars < k:
        raise ValueError(f"need at least k={k} variables, got {num_vars}")
    if k < 1:
        raise ValueError("k must be >= 1")
    max_distinct = _count_possible_clauses(num_vars, k)
    if num_clauses > max_distinct:
        raise ValueError(
            f"cannot draw {num_clauses} distinct {k}-clauses over "
            f"{num_vars} variables (max {max_distinct})"
        )

    clauses = []
    seen = set()
    variables = np.arange(1, num_vars + 1)
    while len(clauses) < num_clauses:
        chosen = rng.choice(variables, size=k, replace=False)
        signs = rng.integers(0, 2, size=k)
        lits = tuple(
            sorted(int(v) if s else -int(v) for v, s in zip(chosen, signs))
        )
        if lits in seen:
            continue
        if planted is not None and not any(
            planted[abs(l)] == (l > 0) for l in lits
        ):
            continue
        seen.add(lits)
        clauses.append(Clause(lits))
    return CNF(clauses, num_vars=num_vars)


def random_3sat(
    num_vars: int,
    num_clauses: int,
    rng: np.random.Generator,
    planted: Optional[np.ndarray] = None,
) -> CNF:
    """Uniform random 3-SAT (see :func:`random_ksat`)."""
    return random_ksat(num_vars, num_clauses, 3, rng, planted=planted)


def random_planted_3sat(
    num_vars: int, num_clauses: int, rng: np.random.Generator
) -> CNF:
    """Random 3-SAT with a hidden satisfying assignment."""
    planted = rng.integers(0, 2, size=num_vars + 1).astype(bool)
    return random_3sat(num_vars, num_clauses, rng, planted=planted)


def _count_possible_clauses(num_vars: int, k: int) -> int:
    from math import comb

    return comb(num_vars, k) * (2 ** k)
