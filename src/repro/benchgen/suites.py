"""The Table I benchmark suite.

Fourteen benchmarks across seven domains mirror the paper's Table I.
Instance sizes are scaled down from the paper's (a pure-Python CDCL
stands in for MiniSAT's C++, and the simulated annealer for the QPU —
see DESIGN.md), but each family keeps its structural character:
clause/variable ratio for the AI series, planted colourings for GC,
unsatisfiable miters for CFA/CRY, propagation-dominated planning for
BP, and arithmetic circuits for IF.

``generate_suite`` deterministically materialises any benchmark's
problem list from a seed; AI instances are filtered satisfiable the
way SATLIB's uf series is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.benchgen.circuit import circuit_fault_instance
from repro.benchgen.crypto import adder_equivalence_instance
from repro.benchgen.factoring import factoring_instance
from repro.benchgen.graph_coloring import flat_graph_coloring_instance
from repro.benchgen.inductive import inductive_inference_instance
from repro.benchgen.planning import blocks_world_instance
from repro.benchgen.random_ksat import random_3sat
from repro.sat.cnf import CNF


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table I row.

    ``paper_reduction_avg`` records the paper's reported average
    iteration reduction for EXPERIMENTS.md comparisons.
    """

    name: str
    domain: str
    generator: Callable[[np.random.Generator], CNF]
    num_problems: int
    filter_satisfiable: Optional[bool] = None
    paper_reduction_avg: Optional[float] = None
    paper_reduction_geomean: Optional[float] = None

    def generate(self, index: int, seed: int = 0) -> CNF:
        """Deterministically generate problem ``index`` of this suite."""
        rng = np.random.default_rng((seed * 10_007 + index) * 65_537 + _stable_hash(self.name))
        if self.filter_satisfiable is None:
            return self.generator(rng)
        from repro.cdcl.presets import minisat_solver

        for _ in range(200):
            formula = self.generator(rng)
            result = minisat_solver(formula, max_conflicts=200_000).solve()
            if result.is_sat == self.filter_satisfiable and (
                result.is_sat or result.is_unsat
            ):
                return formula
        raise RuntimeError(
            f"could not draw a {'SAT' if self.filter_satisfiable else 'UNSAT'} "
            f"instance for {self.name} in 200 attempts"
        )


def _stable_hash(name: str) -> int:
    value = 0
    for ch in name:
        value = (value * 131 + ord(ch)) % 1_000_000_007
    return value


def _uf(n: int, m: int) -> Callable[[np.random.Generator], CNF]:
    return lambda rng: random_3sat(n, m, rng)


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            "GC1", "Graph Coloring",
            lambda rng: flat_graph_coloring_instance(30, 60, rng),
            num_problems=10, paper_reduction_avg=2.75, paper_reduction_geomean=2.42,
        ),
        BenchmarkSpec(
            "GC2", "Graph Coloring",
            lambda rng: flat_graph_coloring_instance(40, 80, rng),
            num_problems=10, paper_reduction_avg=3.22, paper_reduction_geomean=2.79,
        ),
        BenchmarkSpec(
            "GC3", "Graph Coloring",
            lambda rng: flat_graph_coloring_instance(50, 100, rng),
            num_problems=10, paper_reduction_avg=3.35, paper_reduction_geomean=2.91,
        ),
        BenchmarkSpec(
            "CFA", "Circuit Fault Analysis",
            lambda rng: circuit_fault_instance(10, 50, rng, detectable=False),
            num_problems=4, paper_reduction_avg=83.21, paper_reduction_geomean=17.28,
        ),
        BenchmarkSpec(
            "BP", "Block Planning",
            lambda rng: blocks_world_instance(3, None, rng),
            num_problems=5, paper_reduction_avg=7.00, paper_reduction_geomean=6.74,
        ),
        BenchmarkSpec(
            "II", "Inductive Inference",
            lambda rng: inductive_inference_instance(8, 3, 24, rng),
            num_problems=8, paper_reduction_avg=6.82, paper_reduction_geomean=3.05,
        ),
        BenchmarkSpec(
            "IF1", "Integer Factorization",
            lambda rng: factoring_instance(4, rng, satisfiable=True),
            num_problems=8, paper_reduction_avg=33.92, paper_reduction_geomean=19.25,
        ),
        BenchmarkSpec(
            "IF2", "Integer Factorization",
            lambda rng: factoring_instance(5, rng, satisfiable=True),
            num_problems=6, paper_reduction_avg=3.06, paper_reduction_geomean=2.40,
        ),
        BenchmarkSpec(
            "CRY", "Cryptography",
            lambda rng: adder_equivalence_instance(8, rng, inject_bug=False),
            num_problems=5, paper_reduction_avg=37.56, paper_reduction_geomean=37.48,
        ),
        BenchmarkSpec(
            "AI1", "Artificial Intelligence", _uf(50, 218),
            num_problems=10, filter_satisfiable=True,
            paper_reduction_avg=4.13, paper_reduction_geomean=3.32,
        ),
        BenchmarkSpec(
            "AI2", "Artificial Intelligence", _uf(75, 325),
            num_problems=10, filter_satisfiable=True,
            paper_reduction_avg=3.65, paper_reduction_geomean=2.70,
        ),
        BenchmarkSpec(
            "AI3", "Artificial Intelligence", _uf(100, 430),
            num_problems=10, filter_satisfiable=True,
            paper_reduction_avg=4.38, paper_reduction_geomean=2.97,
        ),
        BenchmarkSpec(
            "AI4", "Artificial Intelligence", _uf(125, 538),
            num_problems=10, filter_satisfiable=True,
            paper_reduction_avg=8.89, paper_reduction_geomean=3.86,
        ),
        BenchmarkSpec(
            "AI5", "Artificial Intelligence", _uf(150, 645),
            num_problems=10, filter_satisfiable=True,
            paper_reduction_avg=6.72, paper_reduction_geomean=3.10,
        ),
    ]
}


def generate_suite(
    name: str, seed: int = 0, num_problems: Optional[int] = None
) -> List[CNF]:
    """All problem instances of one benchmark."""
    spec = BENCHMARKS[name]
    count = num_problems if num_problems is not None else spec.num_problems
    return [spec.generate(i, seed=seed) for i in range(count)]
