"""Inductive inference instances (the II benchmarks).

The SATLIB ii family encodes boolean-function identification: find a
hypothesis (here a k-term DNF over d attributes) consistent with a set
of labelled examples.  Hypothesis variables ``p(t,a)`` / ``n(t,a)``
say attribute ``a`` appears positively / negatively in term ``t``.

- a positive example must be covered by some term (via aux cover
  variables, width-3-friendly),
- a negative example must be excluded by every term (a wide clause per
  term, reduced afterwards),
- terms must not be contradictory (``p`` and ``n`` together).

Examples are sampled and labelled by a hidden DNF, so instances are
satisfiable whenever ``num_terms`` is at least the hidden term count.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sat.cnf import CNF, Clause
from repro.sat.ksat import to_3sat


def _hidden_dnf(
    num_attrs: int, num_terms: int, rng: np.random.Generator
) -> List[List[int]]:
    """Hidden DNF: each term is a list of signed attribute indices."""
    terms: List[List[int]] = []
    for _ in range(num_terms):
        width = int(rng.integers(1, max(2, num_attrs // 2)))
        attrs = rng.choice(np.arange(1, num_attrs + 1), size=width, replace=False)
        terms.append(
            [int(a) if rng.integers(0, 2) else -int(a) for a in attrs]
        )
    return terms


def _dnf_value(terms: List[List[int]], example: np.ndarray) -> bool:
    return any(
        all(example[abs(l)] == (l > 0) for l in term) for term in terms
    )


def inductive_inference_cnf(
    examples: List[Tuple[np.ndarray, bool]],
    num_attrs: int,
    num_terms: int,
) -> CNF:
    """CNF for "a k-term DNF consistent with the examples exists"."""
    # Variable layout: p(t,a), n(t,a), then cover(t,e) auxiliaries.
    def p(t: int, a: int) -> int:
        return t * 2 * num_attrs + a

    def n(t: int, a: int) -> int:
        return t * 2 * num_attrs + num_attrs + a

    base = num_terms * 2 * num_attrs
    positives = [i for i, (_, label) in enumerate(examples) if label]

    def cover(t: int, pe: int) -> int:
        return base + t * len(positives) + pe + 1

    clauses: List[Clause] = []
    for t in range(num_terms):
        for a in range(1, num_attrs + 1):
            clauses.append(Clause([-p(t, a), -n(t, a)]))  # not contradictory

    for pe, example_index in enumerate(positives):
        example, _ = examples[example_index]
        # Some term covers the positive example (wide; reduced later).
        clauses.append(Clause([cover(t, pe) for t in range(num_terms)]))
        for t in range(num_terms):
            for a in range(1, num_attrs + 1):
                # cover(t,e) forbids literals that disagree with e.
                if example[a]:
                    clauses.append(Clause([-cover(t, pe), -n(t, a)]))
                else:
                    clauses.append(Clause([-cover(t, pe), -p(t, a)]))

    for example, label in examples:
        if label:
            continue
        for t in range(num_terms):
            # Term t must exclude the negative example: it contains a
            # literal the example falsifies (wide; reduced later).
            lits = []
            for a in range(1, num_attrs + 1):
                lits.append(p(t, a) if not example[a] else n(t, a))
            clauses.append(Clause(lits))

    num_vars = base + num_terms * len(positives)
    return CNF(clauses, num_vars=num_vars)


def inductive_inference_instance(
    num_attrs: int,
    num_terms: int,
    num_examples: int,
    rng: np.random.Generator,
) -> CNF:
    """An II-style 3-SAT instance (satisfiable by construction)."""
    if num_attrs < 2 or num_terms < 1 or num_examples < 1:
        raise ValueError("need >= 2 attributes, >= 1 term, >= 1 example")
    hidden = _hidden_dnf(num_attrs, num_terms, rng)
    examples: List[Tuple[np.ndarray, bool]] = []
    for _ in range(num_examples):
        example = np.zeros(num_attrs + 1, dtype=bool)
        example[1:] = rng.integers(0, 2, size=num_attrs).astype(bool)
        examples.append((example, _dnf_value(hidden, example)))
    wide = inductive_inference_cnf(examples, num_attrs, num_terms)
    return to_3sat(wide).formula
