"""Circuit fault analysis instances (the CFA benchmark).

The SATLIB ssa ("single-stuck-at") family encodes automatic test
pattern generation: is there an input vector on which a circuit with a
stuck-at fault differs from the fault-free circuit?  A *detectable*
fault gives a satisfiable instance (the test vector); an *undetectable*
fault — one on logic that is functionally redundant — gives an
unsatisfiable one.  The paper's CFA benchmark is unsatisfiable
(Section VI-B), so the default here is the undetectable construction.

Generation: draw a random combinational circuit, then

- ``detectable=False``: splice a functionally-redundant sub-circuit
  (``net OR (net AND other)`` == ``net``) into a random net and stick
  the redundant AND's output at 0 in the faulty copy — the functions
  stay equal, so the miter is UNSAT;
- ``detectable=True``: stick a live net of the faulty copy at a
  constant, which differs on some input for almost every draw (the
  generator verifies small circuits and redraws if the fault happens
  to be redundant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.benchgen.logic import CnfBuilder
from repro.sat.cnf import CNF

_OPS = ("and", "or", "xor")


@dataclass(frozen=True)
class RandomCircuit:
    """A random combinational circuit over ``num_inputs`` inputs.

    ``gates[i] = (op, a, b)`` where a/b index either inputs
    (0..num_inputs-1) or earlier gates (num_inputs + j), possibly
    negated via negative index encoding (-1 - idx).
    """

    num_inputs: int
    gates: Tuple[Tuple[str, int, int], ...]

    @property
    def num_nets(self) -> int:
        """Inputs + gate outputs."""
        return self.num_inputs + len(self.gates)

    def evaluate(
        self,
        inputs: List[bool],
        stuck_gate: Optional[int] = None,
        stuck_value: bool = False,
    ) -> List[bool]:
        """Value of every net for an input vector (reference model);
        ``stuck_gate`` forces that gate's output to ``stuck_value``."""
        values = list(inputs)
        for index, (op, a, b) in enumerate(self.gates):
            va = self._read(values, a)
            vb = self._read(values, b)
            if op == "and":
                out = va and vb
            elif op == "or":
                out = va or vb
            else:
                out = va != vb
            if stuck_gate is not None and index == stuck_gate:
                out = stuck_value
            values.append(out)
        return values

    def fault_is_detectable(self, stuck_gate: int, stuck_value: bool) -> bool:
        """Whether some input vector exposes the stuck-at fault
        (exhaustive over inputs; generator-scale circuits only)."""
        import itertools

        for bits in itertools.product((False, True), repeat=self.num_inputs):
            good = self.evaluate(list(bits))[-1]
            bad = self.evaluate(list(bits), stuck_gate, stuck_value)[-1]
            if good != bad:
                return True
        return False

    @staticmethod
    def _read(values: List[bool], ref: int) -> bool:
        if ref < 0:
            return not values[-1 - ref]
        return values[ref]


def random_circuit(
    num_inputs: int, num_gates: int, rng: np.random.Generator
) -> RandomCircuit:
    """A random circuit whose last gate is the output."""
    if num_inputs < 2 or num_gates < 1:
        raise ValueError("need >= 2 inputs and >= 1 gate")
    gates: List[Tuple[str, int, int]] = []
    for g in range(num_gates):
        available = num_inputs + g
        a, b = rng.integers(0, available, size=2)
        if rng.random() < 0.25:
            a = -1 - int(a)
        if rng.random() < 0.25:
            b = -1 - int(b)
        op = _OPS[int(rng.integers(0, len(_OPS)))]
        gates.append((op, int(a), int(b)))
    return RandomCircuit(num_inputs=num_inputs, gates=tuple(gates))


def _encode_copy(
    builder: CnfBuilder,
    circuit: RandomCircuit,
    input_nets: List[int],
    stuck_gate: Optional[int] = None,
    stuck_value: bool = False,
    redundant_gate: Optional[int] = None,
    redundant_other: Optional[int] = None,
    redundant_stuck: bool = False,
) -> int:
    """Encode one copy of the circuit; returns the output net.

    ``stuck_gate`` replaces that gate's output with a constant (a
    stuck-at fault on live logic).  ``redundant_gate`` instead wraps
    that gate's output ``g`` as ``g OR (g AND other)`` — functionally
    the identity — and ``redundant_stuck`` sticks the inner AND at 0,
    which leaves the function unchanged (an undetectable fault buried
    mid-circuit, so the equivalence proof must reason through all the
    downstream logic).
    """
    nets: List[int] = list(input_nets)
    for index, (op, a, b) in enumerate(circuit.gates):
        na = -nets[-1 - a] if a < 0 else nets[a]
        nb = -nets[-1 - b] if b < 0 else nets[b]
        if op == "and":
            out = builder.and_gate(na, nb)
        elif op == "or":
            out = builder.or_gate(na, nb)
        else:
            out = builder.xor_gate(na, nb)
        if stuck_gate is not None and index == stuck_gate:
            out = builder.constant(stuck_value)
        if redundant_gate is not None and index == redundant_gate:
            if redundant_stuck:
                inner = builder.constant(False)  # AND output stuck at 0
            else:
                inner = builder.and_gate(out, nets[redundant_other])
            out = builder.or_gate(out, inner)
        nets.append(out)
    return nets[-1]


def circuit_fault_instance(
    num_inputs: int,
    num_gates: int,
    rng: np.random.Generator,
    detectable: bool = False,
) -> CNF:
    """An ATPG miter: SAT iff the injected stuck-at fault is detectable.

    ``detectable=False`` (the paper's CFA setting) injects the fault on
    provably-redundant logic, making the instance UNSAT by
    construction.
    """
    circuit = random_circuit(num_inputs, num_gates, rng)
    builder = CnfBuilder()
    inputs = builder.new_vars(num_inputs)

    if detectable:
        good_out = _encode_copy(builder, circuit, inputs)
        # Random stuck-at faults are often logically masked in small
        # random circuits; redraw until the fault is observable (the
        # ssa family's detectable instances are, by construction).
        stuck_gate, stuck_value = 0, False
        for _ in range(64):
            stuck_gate = int(rng.integers(0, len(circuit.gates)))
            stuck_value = bool(rng.integers(0, 2))
            if num_inputs > 14 or circuit.fault_is_detectable(
                stuck_gate, stuck_value
            ):
                break
        faulty_out = _encode_copy(
            builder, circuit, inputs, stuck_gate=stuck_gate,
            stuck_value=stuck_value,
        )
    else:
        # Redundant OR(g, AND(g, x)) wrapper buried mid-circuit; the
        # faulty copy sticks the inner AND at 0.  Both functions are
        # identical, so the miter is UNSAT — but proving it requires
        # reasoning through everything downstream of the wrapper.
        gate = int(rng.integers(0, max(1, len(circuit.gates) // 2)))
        other = int(rng.integers(0, num_inputs))
        good_out = _encode_copy(
            builder, circuit, inputs,
            redundant_gate=gate, redundant_other=other, redundant_stuck=False,
        )
        faulty_out = _encode_copy(
            builder, circuit, inputs,
            redundant_gate=gate, redundant_other=other, redundant_stuck=True,
        )

    difference = builder.xor_gate(good_out, faulty_out)
    builder.assert_true(difference)
    return builder.build()
