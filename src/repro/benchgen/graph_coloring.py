"""Flat-graph 3-colouring instances (the GC benchmarks).

SATLIB's flat-series (flat150-360 etc.) encode 3-colourability of
"flat" random graphs — graphs generated with a hidden 3-colouring so
the instances are satisfiable but hard.  The standard direct encoding
over variables ``x_{v,c}`` ("vertex v has colour c"):

- one *at-least-one-colour* clause per vertex (width 3),
- three pairwise *at-most-one-colour* clauses per vertex (width 2),
- three *different-colours* clauses per edge (width 2).

For GC1 (150 vertices, 360 edges) this yields exactly the paper's
450 variables and 150 + 450 + 1080 = 1680 clauses.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.sat.cnf import CNF, Clause

NUM_COLOURS = 3


def _colour_var(vertex: int, colour: int) -> int:
    """1-based DIMACS variable for (vertex, colour), vertices 0-based."""
    return vertex * NUM_COLOURS + colour + 1


def flat_graph(
    num_vertices: int, num_edges: int, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """A random graph with a hidden 3-colouring (edges only between
    colour classes), the "flat" construction."""
    max_cross = _max_cross_edges(num_vertices)
    if num_edges > max_cross:
        raise ValueError(
            f"{num_edges} edges exceed the 3-partite maximum {max_cross} "
            f"for {num_vertices} vertices"
        )
    colours = rng.integers(0, NUM_COLOURS, size=num_vertices)
    # Guarantee all classes non-empty for small graphs.
    for c in range(min(NUM_COLOURS, num_vertices)):
        colours[c] = c
    edges: Set[Tuple[int, int]] = set()
    while len(edges) < num_edges:
        u, v = rng.integers(0, num_vertices, size=2)
        if u == v or colours[u] == colours[v]:
            continue
        edge = (min(int(u), int(v)), max(int(u), int(v)))
        edges.add(edge)
    return sorted(edges)


def _max_cross_edges(num_vertices: int) -> int:
    base = num_vertices // NUM_COLOURS
    sizes = [
        base + (1 if i < num_vertices % NUM_COLOURS else 0)
        for i in range(NUM_COLOURS)
    ]
    total = 0
    for i in range(NUM_COLOURS):
        for j in range(i + 1, NUM_COLOURS):
            total += sizes[i] * sizes[j]
    return total


def colouring_cnf(num_vertices: int, edges: List[Tuple[int, int]]) -> CNF:
    """Direct 3-colouring encoding of a graph."""
    clauses: List[Clause] = []
    for v in range(num_vertices):
        lits = [_colour_var(v, c) for c in range(NUM_COLOURS)]
        clauses.append(Clause(lits))  # at least one colour
        for c1 in range(NUM_COLOURS):
            for c2 in range(c1 + 1, NUM_COLOURS):
                clauses.append(
                    Clause([-_colour_var(v, c1), -_colour_var(v, c2)])
                )
    for u, v in edges:
        for c in range(NUM_COLOURS):
            clauses.append(Clause([-_colour_var(u, c), -_colour_var(v, c)]))
    return CNF(clauses, num_vars=num_vertices * NUM_COLOURS)


def flat_graph_coloring_instance(
    num_vertices: int, num_edges: int, rng: np.random.Generator
) -> CNF:
    """A satisfiable flat-graph 3-colouring CNF (GC-style)."""
    return colouring_cnf(num_vertices, flat_graph(num_vertices, num_edges, rng))
