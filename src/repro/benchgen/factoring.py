"""Integer factorisation instances (the IF benchmarks).

The EzFact/Lisa families encode ``A x B = N`` through a multiplier
circuit: the instance is satisfiable exactly when N has a non-trivial
factorisation whose factors fit the chosen bit widths.  Semiprimes
give hard satisfiable instances; primes give unsatisfiable ones.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.benchgen.logic import CnfBuilder
from repro.sat.cnf import CNF


def is_prime(n: int) -> bool:
    """Deterministic trial-division primality (fine for bench sizes)."""
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    d = 3
    while d * d <= n:
        if n % d == 0:
            return False
        d += 2
    return True


def random_prime(bits: int, rng: np.random.Generator) -> int:
    """A random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("primes need at least 2 bits")
    lo, hi = 1 << (bits - 1), (1 << bits) - 1
    while True:
        candidate = int(rng.integers(lo, hi + 1)) | 1
        if candidate <= hi and is_prime(candidate):
            return candidate


def random_semiprime(
    factor_bits: int, rng: np.random.Generator
) -> Tuple[int, int, int]:
    """(N, p, q) with N = p*q, p and q random ``factor_bits``-bit primes."""
    p = random_prime(factor_bits, rng)
    q = random_prime(factor_bits, rng)
    return p * q, p, q


def factoring_cnf(n: int, a_bits: int, b_bits: int) -> CNF:
    """CNF of ``A x B = n`` with A > 1 and B > 1.

    SAT iff n has a factorisation p*q with 1 < p < 2^a_bits and
    1 < q < 2^b_bits.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    builder = CnfBuilder()
    a = builder.new_vars(a_bits)
    b = builder.new_vars(b_bits)
    product = builder.multiplier(a, b)
    builder.assert_equals_constant(product, n)
    # Exclude the trivial factorisations A=1 or B=1: some bit above
    # the LSB must be set (kept width-<=3 via OR trees).
    builder.assert_true(builder.or_many(a[1:]))
    builder.assert_true(builder.or_many(b[1:]))
    return builder.build()


def factoring_instance(
    factor_bits: int,
    rng: np.random.Generator,
    satisfiable: bool = True,
) -> CNF:
    """An IF-style instance.

    ``satisfiable=True`` encodes a random semiprime (the planted
    factorisation is the witness); ``False`` encodes a random prime of
    comparable size, which has no non-trivial factorisation at all.
    """
    if satisfiable:
        n, _, _ = random_semiprime(factor_bits, rng)
        return factoring_cnf(n, factor_bits, factor_bits)
    n = random_prime(2 * factor_bits - 1, rng)
    return factoring_cnf(n, factor_bits, factor_bits)
