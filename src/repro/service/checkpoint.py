"""Checkpoint store for resumable hybrid solves.

A checkpoint is a JSON snapshot of a hybrid solve's complete search
state — the CDCL engine's trail, clause database (original *and*
learned), watches, heuristic scores, RNG state and restart counters
(via ``capture_search_state`` on either engine), plus the hybrid
layer's ``HybridStats`` — taken every ``checkpoint_every`` conflicts
once the √K warm-up has completed.  A job that crashes, expires, or is
preempted resumes mid-search from its last checkpoint, and because the
snapshot is exact the resumed run is **bit-identical** to an
uninterrupted one (pinned by ``tests/chaos/test_checkpoint_resume.py``
on both engines).

Files are written atomically (temp file + fsync + rename) and carry a
CRC-32 of the canonical payload, so a crash mid-write leaves either
the previous valid checkpoint or a detectably-corrupt temp file —
never a half-written snapshot that silently resumes wrong.

:class:`CheckpointManager` is the per-directory view the solver
service uses (one ``<job_id>.ckpt`` per job); the module-level
``save_checkpoint`` / ``load_checkpoint`` operate on explicit paths
for the ``hyqsat solve --checkpoint-path`` case.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import Optional

#: Checkpoint file schema identifier; bump on breaking changes.
CHECKPOINT_SCHEMA = "hyqsat-checkpoint/1"

_ID_SANITISE = re.compile(r"[^A-Za-z0-9._-]")


def save_checkpoint(path: str, state: dict) -> None:
    """Atomically write ``state`` as a checksummed checkpoint file."""
    canon = json.dumps(state, sort_keys=True, separators=(",", ":"))
    check = format(zlib.crc32(canon.encode("utf-8")) & 0xFFFFFFFF, "08x")
    document = json.dumps(
        {"schema": CHECKPOINT_SCHEMA, "ck": check, "state": state},
        sort_keys=True,
        separators=(",", ":"),
    )
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(document)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Optional[dict]:
    """Load a checkpoint, or ``None`` when missing, torn, or corrupt.

    Corruption is never fatal: a solve with an unreadable checkpoint
    simply starts from scratch (same answer, more work).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("schema") != CHECKPOINT_SCHEMA:
        return None
    state = document.get("state")
    canon = json.dumps(state, sort_keys=True, separators=(",", ":"))
    expected = format(zlib.crc32(canon.encode("utf-8")) & 0xFFFFFFFF, "08x")
    if document.get("ck") != expected:
        return None
    return state


def discard_checkpoint(path: str) -> None:
    """Remove a checkpoint (and any stale temp file); missing is fine."""
    for target in (path, path + ".tmp"):
        try:
            os.remove(target)
        except FileNotFoundError:
            pass


class CheckpointManager:
    """Per-directory checkpoint store keyed by job id."""

    def __init__(self, directory: str):
        self.directory = directory

    def path_for(self, job_id: str) -> str:
        safe = _ID_SANITISE.sub("_", job_id) or "job"
        return os.path.join(self.directory, f"{safe}.ckpt")

    def save(self, job_id: str, state: dict) -> None:
        save_checkpoint(self.path_for(job_id), state)

    def load(self, job_id: str) -> Optional[dict]:
        return load_checkpoint(self.path_for(job_id))

    def discard(self, job_id: str) -> None:
        discard_checkpoint(self.path_for(job_id))
