"""Result store with canonical-CNF deduplication.

Jobs are keyed by :meth:`repro.service.jobs.JobSpec.solve_key` — the
order-invariant formula fingerprint plus every outcome-relevant option.
The first job to claim a key becomes its *primary* and actually solves;
any later job with the same key becomes a *follower* and is handed the
primary's outcome when it lands (state ``deduped``, ``dedup_of`` naming
the primary).  Claims cover in-flight work, so two duplicates submitted
together still solve only once.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.service.jobs import JobOutcome


class ResultStore:
    """Thread-safe solve-key → outcome map with in-flight claims."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: key → primary job id (claimed the moment the primary is admitted)
        self._claims: Dict[str, str] = {}
        #: key → primary outcome (set when the primary finishes)
        self._done: Dict[str, JobOutcome] = {}
        #: key → followers waiting on the primary: (job_id, callback)
        self._waiters: Dict[str, List[Tuple[str, Callable]]] = {}
        self.dedup_hits = 0

    def lookup_or_claim(self, key: str, job_id: str) -> Optional[str]:
        """Claim ``key`` for ``job_id`` or report the existing primary.

        Returns ``None`` when ``job_id`` is now the primary and must
        solve; otherwise the primary's job id (the caller should attach
        a waiter or fetch the finished outcome).
        """
        with self._lock:
            primary = self._claims.get(key)
            if primary is None:
                self._claims[key] = job_id
                return None
            self.dedup_hits += 1
            return primary

    def finished(self, key: str) -> Optional[JobOutcome]:
        """The primary's outcome, if it already landed."""
        with self._lock:
            return self._done.get(key)

    def add_waiter(
        self, key: str, job_id: str, callback: Callable[[JobOutcome], None]
    ) -> bool:
        """Register a follower callback; fires with the *primary's*
        outcome.  Returns False (callback NOT registered) when the
        outcome is already available — the caller should use
        :meth:`finished` instead, avoiding a register/fire race."""
        with self._lock:
            if key in self._done:
                return False
            self._waiters.setdefault(key, []).append((job_id, callback))
            return True

    def fulfil(self, key: str, outcome: JobOutcome) -> List[Tuple[str, Callable]]:
        """Record the primary's outcome and detach its waiters.

        Returns the waiter list so the caller invokes callbacks outside
        the store lock.  A failed primary releases the claim instead of
        caching: followers get the failure, but a *future* identical
        submission may retry fresh.
        """
        with self._lock:
            waiters = self._waiters.pop(key, [])
            if outcome.state == "done":
                self._done[key] = outcome
            else:
                self._claims.pop(key, None)
            return waiters

    def release(self, key: str, job_id: str) -> List[Tuple[str, Callable]]:
        """Drop ``job_id``'s claim without an outcome (primary was
        cancelled/expired before running).  Returns orphaned waiters;
        the caller must re-dispatch or fail them."""
        with self._lock:
            if self._claims.get(key) == job_id and key not in self._done:
                self._claims.pop(key, None)
                return self._waiters.pop(key, [])
            return []
