"""Result store with canonical-CNF deduplication.

Jobs are keyed by :meth:`repro.service.jobs.JobSpec.solve_key` — the
order-invariant formula fingerprint plus every outcome-relevant option.
The first job to claim a key becomes its *primary* and actually solves;
any later job with the same key becomes a *follower* and is handed the
primary's outcome when it lands (state ``deduped``, ``dedup_of`` naming
the primary).  Claims cover in-flight work, so two duplicates submitted
together still solve only once.

Memory is bounded: with ``max_entries`` set, finished outcomes are
kept in an LRU (least-recently-*hit*) order and the oldest entry — and
its claim — is evicted once the cap is exceeded, counting into
``evictions`` (surfaced as ``hyqsat_service_store_evictions_total``).
An evicted key simply re-solves on its next submission.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.service.jobs import JobOutcome


class ResultStore:
    """Thread-safe solve-key → outcome map with in-flight claims."""

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 when set")
        self._lock = threading.Lock()
        self.max_entries = max_entries
        #: key → primary job id (claimed the moment the primary is admitted)
        self._claims: Dict[str, str] = {}
        #: key → primary outcome (set when the primary finishes), oldest
        #: hit first — the eviction order when max_entries is exceeded.
        self._done: "OrderedDict[str, JobOutcome]" = OrderedDict()
        #: key → followers waiting on the primary: (job_id, callback)
        self._waiters: Dict[str, List[Tuple[str, Callable]]] = {}
        self.dedup_hits = 0
        self.evictions = 0

    def _evict_locked(self) -> None:
        while (
            self.max_entries is not None
            and len(self._done) > self.max_entries
        ):
            key, _outcome = self._done.popitem(last=False)
            self._claims.pop(key, None)
            self.evictions += 1

    def lookup_or_claim(self, key: str, job_id: str) -> Optional[str]:
        """Claim ``key`` for ``job_id`` or report the existing primary.

        Returns ``None`` when ``job_id`` is now the primary and must
        solve; otherwise the primary's job id (the caller should attach
        a waiter or fetch the finished outcome).
        """
        with self._lock:
            primary = self._claims.get(key)
            if primary is None:
                self._claims[key] = job_id
                return None
            self.dedup_hits += 1
            return primary

    def finished(self, key: str) -> Optional[JobOutcome]:
        """The primary's outcome, if it already landed (marks the key
        most-recently-used for LRU purposes)."""
        with self._lock:
            outcome = self._done.get(key)
            if outcome is not None:
                self._done.move_to_end(key)
            return outcome

    def add_waiter(
        self, key: str, job_id: str, callback: Callable[[JobOutcome], None]
    ) -> bool:
        """Register a follower callback; fires with the *primary's*
        outcome.  Returns False (callback NOT registered) when the
        outcome is already available — the caller should use
        :meth:`finished` instead, avoiding a register/fire race."""
        with self._lock:
            if key in self._done:
                return False
            self._waiters.setdefault(key, []).append((job_id, callback))
            return True

    def fulfil(self, key: str, outcome: JobOutcome) -> List[Tuple[str, Callable]]:
        """Record the primary's outcome and detach its waiters.

        Returns the waiter list so the caller invokes callbacks outside
        the store lock.  A failed primary releases the claim instead of
        caching: followers get the failure, but a *future* identical
        submission may retry fresh.
        """
        with self._lock:
            waiters = self._waiters.pop(key, [])
            if outcome.state == "done":
                self._done[key] = outcome
                self._done.move_to_end(key)
                self._evict_locked()
            else:
                self._claims.pop(key, None)
            return waiters

    def release(self, key: str, job_id: str) -> List[Tuple[str, Callable]]:
        """Drop ``job_id``'s claim without an outcome (primary was
        cancelled/expired before running).  Returns orphaned waiters;
        the caller must re-dispatch or fail them."""
        with self._lock:
            if self._claims.get(key) == job_id and key not in self._done:
                self._claims.pop(key, None)
                return self._waiters.pop(key, [])
            return []
