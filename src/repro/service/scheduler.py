"""QPU multiplexing: fair-share scheduling of anneal requests.

The simulator models **one** annealer, but the service runs many jobs
at once; :class:`QpuScheduler` is the arbiter between them.  Each job's
device stack is wrapped in a :class:`ScheduledDevice`, so every
``run(request)`` first acquires the shared QPU:

- **Fair share** — when several jobs are waiting, the grant goes to
  the job that has consumed the least cumulative modelled QPU time so
  far (FIFO between ties), so a QA-heavy job cannot starve its
  siblings.
- **Coalescing** — waiters whose requests are bit-identical (same
  device seed, same call index, same problem content) are granted in
  one shared window.  Each still runs its *own* seeded device — by
  determinism they produce identical samples, so per-job RNG and
  call-count bookkeeping stay exactly as in a solo run — but the
  window is billed to the shared timeline once, which is how duplicate
  jobs that bypass result-level dedup still share device time.
- **Shared budget** — an optional pool-wide cap on modelled QPU
  microseconds; once spent, further grants are refused with
  :class:`~repro.resilience.QaUnavailable` (``budget_exhausted``),
  which each job's hybrid loop already knows how to absorb by
  degrading to pure CDCL.  Per-job budgets/breakers live in each job's
  own :class:`~repro.resilience.ResilientDevice`, so one job's faults
  never trip another job's breaker.

All accounting uses the modelled device clock
(:class:`~repro.annealer.timing.QpuTimingModel`), never wall time.
:func:`simulate_makespan` replays completed jobs through a
discrete-event model of *k* worker lanes and one QPU lane — the
service-clock throughput model ``benchmarks/bench_service.py`` reports.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SchedulerStats:
    """Counters of one scheduler lifetime (service metrics source)."""

    #: Exclusive QPU windows granted (a coalesced group counts once).
    grants: int = 0
    #: Requests served by joining another request's window.
    coalesced: int = 0
    #: Grants refused because the shared pool budget was spent.
    budget_denied: int = 0
    #: Total modelled µs the QPU was occupied (coalesced windows once).
    busy_us: float = 0.0
    #: Modelled µs billed per job (each member of a coalesced window
    #: is billed individually here — this drives fair share).
    spent_by_job: Dict[str, float] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Total requests served (grants + coalesced joiners)."""
        return self.grants + self.coalesced


@dataclass
class _Waiter:
    job_id: str
    key: Tuple
    seq: int
    granted: bool = False


@dataclass
class _Grant:
    key: Tuple
    pending: int
    window_us: float = 0.0


def request_key(device, request) -> Tuple:
    """Coalescing identity of a device call.

    Two calls coalesce only when they are *provably* going to produce
    identical results: same device seed, same per-call index (the
    device derives each call's RNG from ``(seed, call_count)``), same
    read count and energy scale, and the same logical objective
    content.  Anything less would break per-job bit-identity.
    """
    objective = request.objective
    content = (
        round(objective.offset, 12),
        tuple(sorted(objective.linear.items())),
        tuple(sorted(objective.quadratic.items())),
    )
    return (
        getattr(device, "seed", None),
        getattr(device, "_call_count", 0) + 1,
        request.num_reads,
        request.energy_scale,
        content,
    )


class QpuScheduler:
    """Arbiter of the single simulated annealer.

    ``budget_us`` caps the *pool's* modelled device time (``None`` =
    unlimited).  Thread-safe; one instance per service.
    """

    def __init__(self, budget_us: Optional[float] = None):
        if budget_us is not None and budget_us <= 0:
            raise ValueError("budget_us must be positive when set")
        self.budget_us = budget_us
        self.stats = SchedulerStats()
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._waiters: List[_Waiter] = []
        self._active: Optional[_Grant] = None
        self._seq = 0

    # -- accounting ----------------------------------------------------

    def budget_remaining_us(self) -> float:
        """Modelled µs left in the shared pool (inf if unlimited)."""
        with self._lock:
            if self.budget_us is None:
                return float("inf")
            return max(0.0, self.budget_us - self.stats.busy_us)

    def utilization(self, wall_seconds: float) -> float:
        """QPU busy fraction over a wall-clock window (modelled µs of
        device occupancy per elapsed second; can exceed 1.0 only if the
        window is shorter than the busy time, i.e. never in practice)."""
        if wall_seconds <= 0:
            return 0.0
        with self._lock:
            return self.stats.busy_us * 1e-6 / wall_seconds

    def replay(self, job_id: str, grants: int, busy_us: float) -> None:
        """Fold a job's QPU usage into the shared accounting after the
        fact.  Process-pool jobs run in another address space, so their
        devices cannot call :meth:`acquire` live; the service replays
        their outcome counters here so utilisation and fair-share
        history stay correct across pool modes."""
        with self._lock:
            self.stats.grants += grants
            self.stats.busy_us += busy_us
            self.stats.spent_by_job[job_id] = (
                self.stats.spent_by_job.get(job_id, 0.0) + busy_us
            )

    # -- the lease -----------------------------------------------------

    def acquire(self, job_id: str, key: Tuple, estimate_us: float):
        """Block until this request holds the QPU (or a shared window).

        Returns an opaque token for :meth:`release`.  Raises
        :class:`~repro.resilience.QaUnavailable` (reason
        ``budget_exhausted``, persistent) when the pool budget cannot
        cover the call.
        """
        from repro.resilience import QaUnavailable

        with self._cv:
            if (
                self.budget_us is not None
                and self.stats.busy_us + estimate_us > self.budget_us
            ):
                self.stats.budget_denied += 1
                raise QaUnavailable(
                    "budget_exhausted",
                    f"shared QA pool spent ({self.stats.busy_us:.0f}us of "
                    f"{self.budget_us:.0f}us); request refused",
                )
            waiter = _Waiter(job_id=job_id, key=key, seq=self._seq)
            self._seq += 1
            self._waiters.append(waiter)
            if self._active is None:
                self._promote_locked()
            while not waiter.granted:
                self._cv.wait()
            return waiter

    def release(self, token, cost_us: float) -> None:
        """Return the QPU after a granted call.

        ``cost_us`` is the call's *actual* modelled device time (reads
        billed even on faulted calls, as hardware does).  The job is
        billed individually for fair share; the shared window is billed
        once per coalesced group, at the widest member's cost.
        """
        with self._cv:
            self.stats.spent_by_job[token.job_id] = (
                self.stats.spent_by_job.get(token.job_id, 0.0) + cost_us
            )
            grant = self._active
            if grant is None or token.key != grant.key:
                raise RuntimeError("release without a matching grant")
            grant.window_us = max(grant.window_us, cost_us)
            grant.pending -= 1
            if grant.pending == 0:
                self.stats.busy_us += grant.window_us
                self._active = None
                self._promote_locked()

    def _promote_locked(self) -> None:
        """Grant the next window: pick the fairest waiter, then pull in
        every waiter with an identical request.  Caller holds the lock."""
        if not self._waiters:
            return
        leader = min(
            self._waiters,
            key=lambda w: (
                self.stats.spent_by_job.get(w.job_id, 0.0),
                w.seq,
            ),
        )
        group = [w for w in self._waiters if w.key == leader.key]
        self._waiters = [w for w in self._waiters if w.key != leader.key]
        self._active = _Grant(key=leader.key, pending=len(group))
        self.stats.grants += 1
        self.stats.coalesced += len(group) - 1
        for w in group:
            w.granted = True
        self._cv.notify_all()


class ScheduledDevice:
    """Device proxy that routes ``run`` through a :class:`QpuScheduler`.

    Wraps a job's *outermost* device (its :class:`~repro.resilience.
    ResilientDevice`, or a bare :class:`~repro.annealer.device.
    AnnealerDevice` for ``no_resilience`` jobs); every other attribute
    — stats, breaker, timing, recalibration — delegates through, so
    the hybrid loop's bookkeeping is oblivious to the scheduler.
    """

    def __init__(self, device, scheduler: QpuScheduler, job_id: str):
        self.inner = device
        self.scheduler = scheduler
        self.job_id = job_id

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def run(self, request):
        key = request_key(self.inner, request)
        estimate_us = self.inner.timing.total_us(request.num_reads)
        token = self.scheduler.acquire(self.job_id, key, estimate_us)
        before_us = self.inner.total_modelled_us
        try:
            return self.inner.run(request)
        finally:
            self.scheduler.release(
                token, self.inner.total_modelled_us - before_us
            )


@dataclass(frozen=True)
class FleetPolicy:
    """Health scoring and failover tunables of a :class:`FleetDevice`.

    Health is an EWMA of call outcomes (success = 1, failure = 0)
    starting at 1.0; a device whose health drops below
    ``quarantine_threshold`` is quarantined for ``cooldown_us`` of
    modelled fleet time, then serves one *probation* probe call —
    success reactivates it, failure re-quarantines.  With
    ``hedge_after_us`` set, a primary anneal whose modelled call time
    exceeds it is hedged on the next healthy member and the
    lower-energy result wins.
    """

    health_alpha: float = 0.3
    quarantine_threshold: float = 0.4
    cooldown_us: float = 100_000.0
    hedge_after_us: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.health_alpha <= 1.0:
            raise ValueError("health_alpha must be in (0, 1]")
        if not 0.0 <= self.quarantine_threshold < 1.0:
            raise ValueError("quarantine_threshold must be in [0, 1)")
        if self.cooldown_us < 0:
            raise ValueError("cooldown_us must be non-negative")
        if self.hedge_after_us is not None and self.hedge_after_us <= 0:
            raise ValueError("hedge_after_us must be positive when set")


@dataclass
class FleetStats:
    """Counters of one :class:`FleetDevice` lifetime."""

    #: Calls answered by a non-primary member after the routed-to
    #: member(s) failed.
    failovers: int = 0
    #: active → quarantined transitions (including re-quarantines).
    quarantines: int = 0
    #: Probation probe calls served.
    probes: int = 0
    #: Hedged anneals issued (and how many the backup won).
    hedges: int = 0
    hedge_wins: int = 0
    #: All-members-quarantined calls that waited out the shortest
    #: cooldown (in modelled time) before probing.
    cooldown_waits: int = 0


class FleetDevice:
    """N annealer stacks behind one device interface, with EWMA health
    scores, quarantine/probation, automatic failover, and optional
    hedged anneals.

    Members are the per-device stacks :func:`repro.service.jobs.
    build_device` assembles (each its own seeded
    :class:`~repro.annealer.device.AnnealerDevice`, usually wrapped in
    its own :class:`~repro.resilience.ResilientDevice` so breakers and
    budgets stay per-device).  Calls route to the healthiest *active*
    member — index 0 on ties, so a fleet of healthy devices behaves
    bit-identically to member 0 alone — and fail over down the health
    order on :class:`~repro.resilience.QaUnavailable` or a bare
    :class:`~repro.annealer.faults.DeviceFault`.  All clocks are
    modelled device microseconds (the fleet clock is the members'
    summed spend), never wall time, so quarantine cooldowns replay
    deterministically.

    Everything the hybrid loop reads (``hardware``, ``timing``,
    ``seed``, aggregated ``stats``, member 0's ``breaker``) delegates
    so :class:`~repro.core.hyqsat.HyQSatSolver` is oblivious to the
    fleet.
    """

    def __init__(self, members, policy: Optional[FleetPolicy] = None):
        if not members:
            raise ValueError("a fleet needs at least one member device")
        self.members = list(members)
        self.policy = policy or FleetPolicy()
        self.fleet_stats = FleetStats()
        self.health = [1.0] * len(self.members)
        self._state = ["active"] * len(self.members)
        self._quarantined_until = [0.0] * len(self.members)
        self._waited_us = 0.0
        self._obs = None

    # -- delegation ----------------------------------------------------

    def __getattr__(self, name: str):
        # Member 0 is the canonical identity: seed, call count, timing,
        # hardware — whatever the frontend or scheduler asks for.
        if name == "members":  # guard half-constructed instances
            raise AttributeError(name)
        return getattr(self.members[0], name)

    @property
    def stats(self):
        """Aggregated :class:`~repro.resilience.device.ResilienceStats`
        across members (raises ``AttributeError`` for bare fleets, like
        a bare single device would)."""
        from dataclasses import fields as dataclass_fields

        member_stats = [m.stats for m in self.members]  # may raise
        total = type(member_stats[0])()
        for stats in member_stats:
            for spec in dataclass_fields(stats):
                value = getattr(stats, spec.name)
                if isinstance(value, dict):
                    merged = getattr(total, spec.name)
                    for key, count in value.items():
                        merged[key] = merged.get(key, 0) + count
                elif isinstance(value, list):
                    getattr(total, spec.name).extend(value)
                else:
                    setattr(
                        total, spec.name, getattr(total, spec.name) + value
                    )
        return total

    def set_observability(self, observability) -> None:
        """Attach a tracing/metrics bundle here and on every member."""
        self._obs = observability
        for member in self.members:
            if hasattr(member, "set_observability"):
                member.set_observability(observability)
        self._publish_health()

    # -- health machinery ----------------------------------------------

    def _member_spent_us(self, member) -> float:
        stats = getattr(member, "stats", None)
        if stats is not None and hasattr(stats, "budget_spent_us"):
            return stats.budget_spent_us
        return getattr(member, "total_modelled_us", 0.0)

    def _now_us(self) -> float:
        """The fleet's modelled clock: total µs spent across members,
        plus any time waited out while every member was cooling down
        (member spend freezes when nobody is attempting, so waits must
        be tracked separately or an all-quarantined fleet would never
        recover)."""
        return (
            sum(self._member_spent_us(m) for m in self.members)
            + self._waited_us
        )

    def _publish_health(self) -> None:
        if self._obs is None or self._obs.metrics is None:
            return
        gauge = self._obs.metrics.gauge("hyqsat_device_health")
        for index, score in enumerate(self.health):
            gauge.labels(device=str(index)).set(score)

    def _on_success(self, index: int) -> None:
        alpha = self.policy.health_alpha
        self.health[index] = (1 - alpha) * self.health[index] + alpha
        if self._state[index] == "probation":
            self._state[index] = "active"
        self._publish_health()

    def _on_failure(self, index: int, reason: str) -> None:
        alpha = self.policy.health_alpha
        self.health[index] = (1 - alpha) * self.health[index]
        failed_probe = self._state[index] == "probation"
        if failed_probe or (
            self._state[index] == "active"
            and self.health[index] < self.policy.quarantine_threshold
        ):
            self._state[index] = "quarantined"
            self._quarantined_until[index] = (
                self._now_us() + self.policy.cooldown_us
            )
            self.fleet_stats.quarantines += 1
            if self._obs is not None:
                if self._obs.tracer.enabled:
                    self._obs.tracer.event(
                        "device.quarantine",
                        device=index,
                        reason=reason,
                        health=self.health[index],
                    )
                if self._obs.metrics is not None:
                    self._obs.metrics.counter(
                        "hyqsat_device_quarantines_total"
                    ).labels(device=str(index)).inc()
        self._publish_health()

    def _routing_order(self) -> List[int]:
        """Serving candidates: probation members first (their one probe
        call — success reactivates, failure re-quarantines, and either
        way the wait ends), then active members healthiest first (index
        0 on ties).  Quarantined members whose cooldown elapsed join as
        probation probes.  A failed probe falls over to the next
        candidate like any other failure, so probing never loses a
        call."""
        now = self._now_us()
        for index, state in enumerate(self._state):
            if state == "quarantined" and now >= self._quarantined_until[index]:
                self._state[index] = "probation"
        candidates = [
            i for i, state in enumerate(self._state) if state != "quarantined"
        ]
        return sorted(
            candidates,
            key=lambda i: (
                self._state[i] != "probation",
                -self.health[i],
                i,
            ),
        )

    # -- the device interface ------------------------------------------

    def run(self, request):
        """Anneal on the healthiest member, failing over on faults.

        Raises the last member's error when every candidate fails —
        persistent only if *every* failure was persistent, so one
        transiently-down member never degrades the whole solve.
        """
        from repro.annealer.faults import DeviceFault, fault_channel
        from repro.resilience import QaUnavailable

        order = self._routing_order()
        if not order:
            # Everyone is cooling down.  A real scheduler would block
            # until the shortest cooldown elapses; in modelled time we
            # advance the fleet clock to that instant and probe the
            # earliest-due member.  Refusing instead would deadlock:
            # the clock is summed member spend, which never advances
            # while every member is quarantined.
            earliest = min(self._quarantined_until)
            self._waited_us += max(0.0, earliest - self._now_us())
            self.fleet_stats.cooldown_waits += 1
            order = self._routing_order()
        errors: List[Exception] = []
        for position, index in enumerate(order):
            member = self.members[index]
            probing = self._state[index] == "probation"
            if probing:
                self.fleet_stats.probes += 1
            try:
                result = member.run(request)
            except QaUnavailable as unavailable:
                errors.append(unavailable)
                self._on_failure(index, unavailable.reason)
            except DeviceFault as fault:
                errors.append(fault)
                self._on_failure(index, fault_channel(fault))
            else:
                self._on_success(index)
                if position > 0:
                    self.fleet_stats.failovers += 1
                    if self._obs is not None and self._obs.tracer.enabled:
                        self._obs.tracer.event(
                            "device.failover",
                            device=index,
                            attempts=position + 1,
                        )
                return self._maybe_hedge(result, request, order, position)
        if all(
            isinstance(e, QaUnavailable) and e.persistent for e in errors
        ):
            raise errors[-1]
        raise QaUnavailable(
            "fleet_exhausted",
            f"all {len(order)} fleet member(s) failed this call; "
            "last: " + repr(errors[-1]),
        )

    def _maybe_hedge(self, result, request, order, position):
        """Re-anneal a straggler on the next healthy member and keep
        the lower-energy result (modelled time is billed on both
        members, exactly like real hedged requests)."""
        hedge_after = self.policy.hedge_after_us
        if hedge_after is None or result.qpu_time_us <= hedge_after:
            return result
        backups = [i for i in order[position + 1:]
                   if self._state[i] == "active"]
        if not backups:
            return result
        from repro.annealer.faults import DeviceFault, fault_channel
        from repro.resilience import QaUnavailable

        backup = backups[0]
        self.fleet_stats.hedges += 1
        try:
            rival = self.members[backup].run(request)
        except QaUnavailable as unavailable:
            self._on_failure(backup, unavailable.reason)
            return result
        except DeviceFault as fault:
            self._on_failure(backup, fault_channel(fault))
            return result
        self._on_success(backup)
        if rival.best.energy < result.best.energy:
            self.fleet_stats.hedge_wins += 1
            return rival
        return result


def simulate_makespan(
    profiles: Sequence[Tuple[float, int, float]], workers: int
) -> float:
    """Service-clock makespan of a job set on *k* workers + one QPU.

    Each profile is ``(cpu_seconds, qa_calls, qpu_time_us)`` from a
    completed job.  A job is modelled as ``qa_calls + 1`` equal CPU
    segments interleaved with ``qa_calls`` equal QPU segments; a worker
    lane holds its job start to finish (as the real pool does) and QPU
    segments serialise on the single device lane.  This is the modelled
    service clock — measured CPU time overlapped across workers plus
    modelled device time on one shared QPU — which is the honest
    throughput model on hosts without real CPU parallelism (the repo's
    modelled-time convention; docs/SERVICE.md#benchmark).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    jobs = []
    for cpu_s, qa_calls, qpu_us in profiles:
        calls = max(0, int(qa_calls))
        jobs.append((
            calls,
            cpu_s / (calls + 1),
            (qpu_us * 1e-6 / calls) if calls else 0.0,
        ))
    # Events must interleave across lanes in global time order: a QPU
    # request queues only behind windows already granted *before* it,
    # not behind every window an earlier-submitted job will ever take.
    next_job = 0
    events: List[Tuple[float, int, int, int]] = []
    seq = 0
    qpu_free = 0.0
    makespan = 0.0

    def start_next(now: float) -> None:
        nonlocal next_job, seq
        calls, cpu_seg, _ = jobs[next_job]
        heapq.heappush(events, (now + cpu_seg, seq, next_job, calls))
        next_job += 1
        seq += 1

    while next_job < len(jobs) and next_job < workers:
        start_next(0.0)
    while events:
        now, _, index, remaining = heapq.heappop(events)
        _, cpu_seg, qpu_seg = jobs[index]
        if remaining:
            qpu_free = max(now, qpu_free) + qpu_seg
            heapq.heappush(
                events, (qpu_free + cpu_seg, seq, index, remaining - 1)
            )
            seq += 1
        else:
            makespan = max(makespan, now)
            if next_job < len(jobs):
                start_next(now)
    return makespan
