"""QPU multiplexing: fair-share scheduling of anneal requests.

The simulator models **one** annealer, but the service runs many jobs
at once; :class:`QpuScheduler` is the arbiter between them.  Each job's
device stack is wrapped in a :class:`ScheduledDevice`, so every
``run(request)`` first acquires the shared QPU:

- **Fair share** — when several jobs are waiting, the grant goes to
  the job that has consumed the least cumulative modelled QPU time so
  far (FIFO between ties), so a QA-heavy job cannot starve its
  siblings.
- **Coalescing** — waiters whose requests are bit-identical (same
  device seed, same call index, same problem content) are granted in
  one shared window.  Each still runs its *own* seeded device — by
  determinism they produce identical samples, so per-job RNG and
  call-count bookkeeping stay exactly as in a solo run — but the
  window is billed to the shared timeline once, which is how duplicate
  jobs that bypass result-level dedup still share device time.
- **Shared budget** — an optional pool-wide cap on modelled QPU
  microseconds; once spent, further grants are refused with
  :class:`~repro.resilience.QaUnavailable` (``budget_exhausted``),
  which each job's hybrid loop already knows how to absorb by
  degrading to pure CDCL.  Per-job budgets/breakers live in each job's
  own :class:`~repro.resilience.ResilientDevice`, so one job's faults
  never trip another job's breaker.

All accounting uses the modelled device clock
(:class:`~repro.annealer.timing.QpuTimingModel`), never wall time.
:func:`simulate_makespan` replays completed jobs through a
discrete-event model of *k* worker lanes and one QPU lane — the
service-clock throughput model ``benchmarks/bench_service.py`` reports.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SchedulerStats:
    """Counters of one scheduler lifetime (service metrics source)."""

    #: Exclusive QPU windows granted (a coalesced group counts once).
    grants: int = 0
    #: Requests served by joining another request's window.
    coalesced: int = 0
    #: Grants refused because the shared pool budget was spent.
    budget_denied: int = 0
    #: Total modelled µs the QPU was occupied (coalesced windows once).
    busy_us: float = 0.0
    #: Modelled µs billed per job (each member of a coalesced window
    #: is billed individually here — this drives fair share).
    spent_by_job: Dict[str, float] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Total requests served (grants + coalesced joiners)."""
        return self.grants + self.coalesced


@dataclass
class _Waiter:
    job_id: str
    key: Tuple
    seq: int
    granted: bool = False


@dataclass
class _Grant:
    key: Tuple
    pending: int
    window_us: float = 0.0


def request_key(device, request) -> Tuple:
    """Coalescing identity of a device call.

    Two calls coalesce only when they are *provably* going to produce
    identical results: same device seed, same per-call index (the
    device derives each call's RNG from ``(seed, call_count)``), same
    read count and energy scale, and the same logical objective
    content.  Anything less would break per-job bit-identity.
    """
    objective = request.objective
    content = (
        round(objective.offset, 12),
        tuple(sorted(objective.linear.items())),
        tuple(sorted(objective.quadratic.items())),
    )
    return (
        getattr(device, "seed", None),
        getattr(device, "_call_count", 0) + 1,
        request.num_reads,
        request.energy_scale,
        content,
    )


class QpuScheduler:
    """Arbiter of the single simulated annealer.

    ``budget_us`` caps the *pool's* modelled device time (``None`` =
    unlimited).  Thread-safe; one instance per service.
    """

    def __init__(self, budget_us: Optional[float] = None):
        if budget_us is not None and budget_us <= 0:
            raise ValueError("budget_us must be positive when set")
        self.budget_us = budget_us
        self.stats = SchedulerStats()
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._waiters: List[_Waiter] = []
        self._active: Optional[_Grant] = None
        self._seq = 0

    # -- accounting ----------------------------------------------------

    def budget_remaining_us(self) -> float:
        """Modelled µs left in the shared pool (inf if unlimited)."""
        with self._lock:
            if self.budget_us is None:
                return float("inf")
            return max(0.0, self.budget_us - self.stats.busy_us)

    def utilization(self, wall_seconds: float) -> float:
        """QPU busy fraction over a wall-clock window (modelled µs of
        device occupancy per elapsed second; can exceed 1.0 only if the
        window is shorter than the busy time, i.e. never in practice)."""
        if wall_seconds <= 0:
            return 0.0
        with self._lock:
            return self.stats.busy_us * 1e-6 / wall_seconds

    def replay(self, job_id: str, grants: int, busy_us: float) -> None:
        """Fold a job's QPU usage into the shared accounting after the
        fact.  Process-pool jobs run in another address space, so their
        devices cannot call :meth:`acquire` live; the service replays
        their outcome counters here so utilisation and fair-share
        history stay correct across pool modes."""
        with self._lock:
            self.stats.grants += grants
            self.stats.busy_us += busy_us
            self.stats.spent_by_job[job_id] = (
                self.stats.spent_by_job.get(job_id, 0.0) + busy_us
            )

    # -- the lease -----------------------------------------------------

    def acquire(self, job_id: str, key: Tuple, estimate_us: float):
        """Block until this request holds the QPU (or a shared window).

        Returns an opaque token for :meth:`release`.  Raises
        :class:`~repro.resilience.QaUnavailable` (reason
        ``budget_exhausted``, persistent) when the pool budget cannot
        cover the call.
        """
        from repro.resilience import QaUnavailable

        with self._cv:
            if (
                self.budget_us is not None
                and self.stats.busy_us + estimate_us > self.budget_us
            ):
                self.stats.budget_denied += 1
                raise QaUnavailable(
                    "budget_exhausted",
                    f"shared QA pool spent ({self.stats.busy_us:.0f}us of "
                    f"{self.budget_us:.0f}us); request refused",
                )
            waiter = _Waiter(job_id=job_id, key=key, seq=self._seq)
            self._seq += 1
            self._waiters.append(waiter)
            if self._active is None:
                self._promote_locked()
            while not waiter.granted:
                self._cv.wait()
            return waiter

    def release(self, token, cost_us: float) -> None:
        """Return the QPU after a granted call.

        ``cost_us`` is the call's *actual* modelled device time (reads
        billed even on faulted calls, as hardware does).  The job is
        billed individually for fair share; the shared window is billed
        once per coalesced group, at the widest member's cost.
        """
        with self._cv:
            self.stats.spent_by_job[token.job_id] = (
                self.stats.spent_by_job.get(token.job_id, 0.0) + cost_us
            )
            grant = self._active
            if grant is None or token.key != grant.key:
                raise RuntimeError("release without a matching grant")
            grant.window_us = max(grant.window_us, cost_us)
            grant.pending -= 1
            if grant.pending == 0:
                self.stats.busy_us += grant.window_us
                self._active = None
                self._promote_locked()

    def _promote_locked(self) -> None:
        """Grant the next window: pick the fairest waiter, then pull in
        every waiter with an identical request.  Caller holds the lock."""
        if not self._waiters:
            return
        leader = min(
            self._waiters,
            key=lambda w: (
                self.stats.spent_by_job.get(w.job_id, 0.0),
                w.seq,
            ),
        )
        group = [w for w in self._waiters if w.key == leader.key]
        self._waiters = [w for w in self._waiters if w.key != leader.key]
        self._active = _Grant(key=leader.key, pending=len(group))
        self.stats.grants += 1
        self.stats.coalesced += len(group) - 1
        for w in group:
            w.granted = True
        self._cv.notify_all()


class ScheduledDevice:
    """Device proxy that routes ``run`` through a :class:`QpuScheduler`.

    Wraps a job's *outermost* device (its :class:`~repro.resilience.
    ResilientDevice`, or a bare :class:`~repro.annealer.device.
    AnnealerDevice` for ``no_resilience`` jobs); every other attribute
    — stats, breaker, timing, recalibration — delegates through, so
    the hybrid loop's bookkeeping is oblivious to the scheduler.
    """

    def __init__(self, device, scheduler: QpuScheduler, job_id: str):
        self.inner = device
        self.scheduler = scheduler
        self.job_id = job_id

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def run(self, request):
        key = request_key(self.inner, request)
        estimate_us = self.inner.timing.total_us(request.num_reads)
        token = self.scheduler.acquire(self.job_id, key, estimate_us)
        before_us = self.inner.total_modelled_us
        try:
            return self.inner.run(request)
        finally:
            self.scheduler.release(
                token, self.inner.total_modelled_us - before_us
            )


def simulate_makespan(
    profiles: Sequence[Tuple[float, int, float]], workers: int
) -> float:
    """Service-clock makespan of a job set on *k* workers + one QPU.

    Each profile is ``(cpu_seconds, qa_calls, qpu_time_us)`` from a
    completed job.  A job is modelled as ``qa_calls + 1`` equal CPU
    segments interleaved with ``qa_calls`` equal QPU segments; a worker
    lane holds its job start to finish (as the real pool does) and QPU
    segments serialise on the single device lane.  This is the modelled
    service clock — measured CPU time overlapped across workers plus
    modelled device time on one shared QPU — which is the honest
    throughput model on hosts without real CPU parallelism (the repo's
    modelled-time convention; docs/SERVICE.md#benchmark).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    jobs = []
    for cpu_s, qa_calls, qpu_us in profiles:
        calls = max(0, int(qa_calls))
        jobs.append((
            calls,
            cpu_s / (calls + 1),
            (qpu_us * 1e-6 / calls) if calls else 0.0,
        ))
    # Events must interleave across lanes in global time order: a QPU
    # request queues only behind windows already granted *before* it,
    # not behind every window an earlier-submitted job will ever take.
    next_job = 0
    events: List[Tuple[float, int, int, int]] = []
    seq = 0
    qpu_free = 0.0
    makespan = 0.0

    def start_next(now: float) -> None:
        nonlocal next_job, seq
        calls, cpu_seg, _ = jobs[next_job]
        heapq.heappush(events, (now + cpu_seg, seq, next_job, calls))
        next_job += 1
        seq += 1

    while next_job < len(jobs) and next_job < workers:
        start_next(0.0)
    while events:
        now, _, index, remaining = heapq.heappop(events)
        _, cpu_seg, qpu_seg = jobs[index]
        if remaining:
            qpu_free = max(now, qpu_free) + qpu_seg
            heapq.heappush(
                events, (qpu_free + cpu_seg, seq, index, remaining - 1)
            )
            seq += 1
        else:
            makespan = max(makespan, now)
            if next_job < len(jobs):
                start_next(now)
    return makespan
