"""Worker pool: the execution substrate of the service.

Three interchangeable modes behind one ``submit`` API:

- ``thread`` (default) — a :class:`~concurrent.futures.
  ThreadPoolExecutor`.  Workers share the process, so each job's
  :class:`~repro.service.scheduler.ScheduledDevice` talks to the live
  :class:`~repro.service.scheduler.QpuScheduler` and QPU multiplexing
  (fair share, coalescing, shared budget) is enforced in real time.
  The solver holds no global mutable state, so thread workers are safe.
- ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  True OS-level isolation; jobs are shipped as picklable
  :class:`~repro.service.jobs.JobSpec` and solved by the module-level
  :func:`~repro.service.jobs.run_job`, seeded per job, so results are
  bit-identical to thread/inline runs.  The scheduler cannot arbitrate
  across address spaces, so its accounting is *replayed* from each
  outcome's counters instead.
- ``inline`` — runs the job synchronously inside ``submit`` (the
  ``--jobs 1`` path and the reference behaviour tests compare against).

Determinism is per-job, not per-pool: a job's result depends only on
its spec (seed included), never on which worker ran it or in what
order — the property the parallel-equals-serial tests pin.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Callable, Optional

POOL_MODES = ("thread", "process", "inline")


class _InlineFuture:
    """A completed-at-submit Future look-alike for inline mode."""

    def __init__(self, value=None, error: Optional[BaseException] = None):
        self._value = value
        self._error = error

    def result(self, timeout: Optional[float] = None):
        if self._error is not None:
            raise self._error
        return self._value

    def done(self) -> bool:
        return True

    def cancel(self) -> bool:
        return False

    def add_done_callback(self, fn: Callable) -> None:
        fn(self)


class WorkerPool:
    """A bounded pool of job executors (see module docstring)."""

    def __init__(self, workers: int = 1, mode: str = "thread"):
        if mode not in POOL_MODES:
            raise ValueError(f"unknown pool mode {mode!r}; known: {POOL_MODES}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.mode = mode
        self.workers = workers
        self._executor = None
        self._lock = threading.Lock()
        if mode == "thread":
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="hyqsat-worker"
            )
        elif mode == "process":
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            )

    @property
    def live_scheduling(self) -> bool:
        """True when workers share the service's address space, so the
        QPU scheduler can arbitrate calls live rather than by replay."""
        return self.mode != "process"

    def submit(self, fn: Callable, /, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` on the pool; returns a Future.

        Inline mode executes synchronously and returns an
        already-completed future, so callers are mode-agnostic.
        """
        if self._executor is None:
            try:
                return _InlineFuture(value=fn(*args, **kwargs))
            except BaseException as error:  # noqa: BLE001 — future contract
                return _InlineFuture(error=error)
        return self._executor.submit(fn, *args, **kwargs)

    def respawn(self) -> bool:
        """Replace a *broken* process executor with a fresh one.

        A worker process dying (OOM kill, ``kill -9``) poisons the
        whole :class:`~concurrent.futures.ProcessPoolExecutor`: every
        in-flight future raises ``BrokenExecutor`` and no new work is
        accepted.  The service calls this before resubmitting the lost
        jobs.  Only an actually-broken executor is replaced — a second
        poisoned future arriving after a respawn must not discard the
        healthy pool (and the resubmissions already queued on it).
        Thread/inline pools never break; no-op.  Returns True when a
        new executor was installed.
        """
        if self.mode != "process":
            return False
        with self._lock:
            if not getattr(self._executor, "_broken", False):
                return False
            old = self._executor
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
            old.shutdown(wait=False)
            return True

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting work; optionally cancel queued tasks."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)
