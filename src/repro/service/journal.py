"""Crash-safe write-ahead job journal.

:class:`JobJournal` is an append-only JSONL log that makes
``hyqsat serve`` / ``hyqsat batch`` restartable: every admitted job,
every dispatch, every worker retry, and — crucially — every *acked*
terminal outcome is a journal record, so a crashed session can be
re-run with the same command and

- acked jobs are **re-emitted from the journal** exactly once, never
  re-solved (and never re-billed on the modelled QPU clock);
- unacked jobs (pending or in-flight at the crash) simply run again,
  which is safe because a job's result depends only on its spec
  (docs/SERVICE.md, "The determinism contract").

Durability model
----------------

Each record is one JSON object per line carrying a CRC-32 checksum of
its own canonical serialisation (``"ck"``), so a torn or bit-flipped
tail is detected, not replayed.  ``submit``/``start`` records are
batched (fsync every ``fsync_every`` records); ``done`` records — the
ack — are flushed **and fsynced before the result line is emitted** to
the consumer, which is the invariant that makes "the consumer saw it"
imply "the journal holds it".  On open, the journal reads the existing
file, drops everything from the first unparseable or checksum-failing
line onward (counting the torn records), truncates the file back to
the last valid record, and appends from there.

Record kinds::

    {"k": "submit", "id": ..., "spec": {...}, "ck": ...}
    {"k": "start",  "id": ..., "ck": ...}
    {"k": "retry",  "id": ..., "reason": ..., "ck": ...}
    {"k": "done",   "id": ..., "outcome": {...}, "ck": ...}

Pure stdlib (``json``, ``zlib``, ``os``); no third-party deps.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Valid record kinds, in lifecycle order.
RECORD_KINDS = ("submit", "start", "retry", "done")


def _encode_record(payload: dict) -> str:
    """Canonical JSONL line for ``payload`` with its checksum added."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    check = format(zlib.crc32(canon.encode("utf-8")) & 0xFFFFFFFF, "08x")
    return json.dumps(
        dict(payload, ck=check), sort_keys=True, separators=(",", ":")
    )


def _decode_record(line: str) -> Optional[dict]:
    """Parse and verify one journal line; ``None`` when invalid."""
    try:
        record = json.loads(line)
    except (ValueError, TypeError):
        return None
    if not isinstance(record, dict):
        return None
    check = record.pop("ck", None)
    canon = json.dumps(record, sort_keys=True, separators=(",", ":"))
    expected = format(zlib.crc32(canon.encode("utf-8")) & 0xFFFFFFFF, "08x")
    if check != expected:
        return None
    if record.get("k") not in RECORD_KINDS:
        return None
    return record


@dataclass
class JournalStats:
    """Counters of one :class:`JobJournal` lifetime (metrics feed)."""

    records_by_kind: Dict[str, int] = field(default_factory=dict)
    fsyncs: int = 0
    torn_records: int = 0
    replayed: int = 0

    def count(self, kind: str) -> None:
        self.records_by_kind[kind] = self.records_by_kind.get(kind, 0) + 1


@dataclass
class RecoveryReport:
    """What a journal knew when it was (re)opened.

    ``outcomes`` maps job id → the journaled terminal outcome dict
    (the ack); ``submitted`` maps job id → the journaled spec dict;
    ``started`` / ``retries`` describe in-flight state at the crash.
    """

    outcomes: Dict[str, dict] = field(default_factory=dict)
    submitted: Dict[str, dict] = field(default_factory=dict)
    started: List[str] = field(default_factory=list)
    retries: Dict[str, int] = field(default_factory=dict)
    torn_records: int = 0
    valid_records: int = 0

    @property
    def has_state(self) -> bool:
        return bool(self.valid_records)


def read_journal(path: str) -> Tuple[List[dict], int, int]:
    """Read a journal file without opening it for writes.

    Returns ``(valid_records, valid_byte_length, torn_records)``.
    Validation is prefix-based: the first bad line invalidates
    everything after it (an append-only log's suffix cannot be trusted
    past a corrupt record).
    """
    records: List[dict] = []
    valid_len = 0
    torn = 0
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return records, 0, 0
    offset = 0
    for line in raw.splitlines(keepends=True):
        text = line.decode("utf-8", errors="replace").strip()
        if not line.endswith(b"\n"):
            # Torn final write: no newline means the record may be
            # incomplete even if it happens to parse.
            if text:
                torn += 1
            break
        if not text:
            offset += len(line)
            continue
        record = _decode_record(text)
        if record is None:
            # Everything from here on is untrusted.
            torn += sum(
                1
                for rest in raw[offset:].splitlines()
                if rest.strip()
            )
            break
        records.append(record)
        offset += len(line)
        valid_len = offset
    return records, valid_len, torn


def _report_from_records(records: List[dict]) -> RecoveryReport:
    report = RecoveryReport(valid_records=len(records))
    for record in records:
        kind = record["k"]
        job_id = record.get("id")
        if kind == "submit":
            report.submitted[job_id] = record.get("spec", {})
        elif kind == "start":
            report.started.append(job_id)
        elif kind == "retry":
            report.retries[job_id] = report.retries.get(job_id, 0) + 1
        elif kind == "done":
            report.outcomes[job_id] = record.get("outcome", {})
    return report


class JobJournal:
    """Append-only, checksummed, crash-recoverable job journal.

    Opening an existing journal performs recovery: the valid record
    prefix becomes :attr:`recovered`, the torn tail (if any) is
    truncated away, and subsequent records append after the last valid
    one.  All writes happen on the service coordinator thread.
    """

    def __init__(self, path: str, fsync_every: int = 8):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = path
        self.fsync_every = fsync_every
        self.stats = JournalStats()

        records, valid_len, torn = read_journal(path)
        self.stats.torn_records = torn
        self.recovered = _report_from_records(records)
        self.recovered.torn_records = torn

        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "ab")
        if self._handle.tell() != valid_len:
            # Drop the torn tail so new records append after the last
            # valid one instead of gluing onto a partial line.
            self._handle.truncate(valid_len)
            self._handle.seek(valid_len)
        self._unsynced = 0
        self._closed = False

    # -- writes --------------------------------------------------------

    def _append(self, payload: dict, durable: bool) -> None:
        if self._closed:
            raise RuntimeError("journal is closed")
        line = _encode_record(payload) + "\n"
        self._handle.write(line.encode("utf-8"))
        self.stats.count(payload["k"])
        self._unsynced += 1
        if durable or self._unsynced >= self.fsync_every:
            self.sync()

    def record_submit(self, spec) -> None:
        """Journal an admitted job (batched fsync)."""
        self._append(
            {"k": "submit", "id": spec.job_id, "spec": spec.as_dict()},
            durable=False,
        )

    def record_start(self, job_id: str) -> None:
        """Journal a dispatch (batched fsync)."""
        self._append({"k": "start", "id": job_id}, durable=False)

    def record_retry(self, job_id: str, reason: str) -> None:
        """Journal a worker-death requeue (durable)."""
        self._append(
            {"k": "retry", "id": job_id, "reason": reason}, durable=True
        )

    def record_done(self, outcome) -> None:
        """Journal a terminal outcome — the ack.

        Returns only after the record is flushed **and fsynced**; the
        caller must emit the result line to the consumer *after* this
        returns, never before.
        """
        self._append(
            {"k": "done", "id": outcome.job_id, "outcome": outcome.as_dict()},
            durable=True,
        )

    def sync(self) -> None:
        """Flush buffered records to stable storage."""
        if self._unsynced == 0 or self._closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.stats.fsyncs += 1
        self._unsynced = 0

    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- recovery queries ---------------------------------------------

    def recovered_outcome(self, spec) -> Optional[dict]:
        """The journaled terminal outcome for ``spec``, if its acked
        record matches the spec the consumer is re-submitting.

        A job id whose journaled spec differs from the current one is
        treated as a *new* job (the consumer changed the job file), so
        it re-solves instead of replaying a stale result.
        """
        outcome = self.recovered.outcomes.get(spec.job_id)
        if outcome is None:
            return None
        journaled = self.recovered.submitted.get(spec.job_id)
        if journaled is not None and journaled != spec.as_dict():
            return None
        self.stats.replayed += 1
        return outcome
