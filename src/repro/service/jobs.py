"""Job model of the solver service.

A *job* is one CNF solve request: the instance (a DIMACS file path or
inline DIMACS text), the seeds and device options that make the solve
reproducible, and the scheduling attributes the service consumes
(priority class, relative deadline).  :class:`JobSpec` is the wire
format — one JSON object per line in the job JSONL files that
``hyqsat serve`` / ``hyqsat batch`` read — and :class:`JobOutcome` is
the matching result line.

:func:`build_solver` constructs *exactly* the solver ``hyqsat solve``
builds for the same options, so a job executed by the service is
bit-identical to a solo CLI run with the same seed; :func:`run_job` is
the worker-side entry point (picklable, module-level) that the
:class:`~repro.service.pool.WorkerPool` executes.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional

from repro.sat.cnf import CNF, fingerprint

#: Priority classes, highest first.  The queue serves strictly by
#: class, FIFO within a class.
PRIORITY_CLASSES = ("interactive", "batch", "background")

#: Terminal job states (the ``state`` label of
#: ``hyqsat_service_jobs_total``).
JOB_STATES = (
    "done", "failed", "deduped", "rejected", "expired", "cancelled",
)


@dataclass
class JobSpec:
    """One solve request (the job-JSONL line schema; docs/SERVICE.md).

    Exactly one of ``path`` / ``dimacs`` must be set.  The solver
    options mirror the ``hyqsat solve`` flags one-to-one so a job can
    be replayed as a solo CLI run.
    """

    job_id: str
    path: Optional[str] = None
    dimacs: Optional[str] = None
    seed: int = 0
    priority: str = "batch"
    #: Relative deadline in wall seconds from submission; a job still
    #: queued past its deadline is expired, never dispatched.
    deadline_s: Optional[float] = None
    classic: bool = False
    noise: bool = False
    lenient: bool = False
    qa_faults: Optional[str] = None
    fault_seed: Optional[int] = None
    qa_retries: int = 4
    qa_deadline_us: Optional[float] = None
    qa_budget_us: Optional[float] = None
    qa_breaker_threshold: int = 5
    no_resilience: bool = False
    #: Anneal against a fleet of this many devices with health-scored
    #: failover (0 or 1 = single device; see
    #: :class:`~repro.service.scheduler.FleetDevice`).
    fleet: int = 0
    #: Hedge fleet anneals: when the primary's modelled call time
    #: exceeds this many µs, a backup device anneals the same request
    #: and the lower-energy result wins.  Requires ``fleet`` >= 2.
    fleet_hedge_us: Optional[float] = None
    #: QA hardware topology ("chimera" or "pegasus"; None = chimera).
    #: The gateway's fleet router pins this when it places a job, so
    #: the placement is replayable as a solo ``hyqsat solve`` run.
    topology: Optional[str] = None
    #: Hardware grid size (``grid x grid`` cells; None = 16, the
    #: D-Wave 2000Q scale the paper targets).
    grid: Optional[int] = None
    #: Checkpoint the solve every N post-warmup conflicts (0 = off).
    #: Not part of the dedup key: checkpointing never changes the
    #: outcome, only crash recovery cost.
    checkpoint_every: int = 0
    #: CDCL engine ("reference" or "fast").  Not part of the dedup key:
    #: the engines are gated bit-identical, so either may serve the
    #: other's cached result.
    engine: str = "reference"

    def __post_init__(self) -> None:
        if self.engine not in ("reference", "fast"):
            raise ValueError(
                f"unknown CDCL engine {self.engine!r}; "
                "expected 'reference' or 'fast'"
            )
        if (self.path is None) == (self.dimacs is None):
            raise ValueError("exactly one of path/dimacs must be set")
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority {self.priority!r}; "
                f"known: {PRIORITY_CLASSES}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.fleet < 0:
            raise ValueError("fleet must be >= 0")
        if self.fleet_hedge_us is not None:
            if self.fleet_hedge_us <= 0:
                raise ValueError("fleet_hedge_us must be positive when set")
            if self.fleet < 2:
                raise ValueError("fleet_hedge_us requires fleet >= 2")
        if self.topology is not None:
            from repro.topology import TOPOLOGIES

            if self.topology not in TOPOLOGIES:
                raise ValueError(
                    f"unknown topology {self.topology!r}; "
                    f"known: {sorted(TOPOLOGIES)}"
                )
        if self.grid is not None and self.grid < 1:
            raise ValueError("grid must be >= 1 when set")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.qa_faults is not None:
            from repro.annealer.faults import parse_fault_spec

            parse_fault_spec(self.qa_faults)  # validate eagerly

    @property
    def priority_rank(self) -> int:
        """Numeric rank (lower serves first)."""
        return PRIORITY_CLASSES.index(self.priority)

    def load_formula(self) -> CNF:
        """Read and, when needed, 3-SAT-reduce the instance."""
        from repro.sat import read_dimacs, parse_dimacs, to_3sat

        if self.path is not None:
            formula = read_dimacs(self.path, strict=not self.lenient)
        else:
            formula = parse_dimacs(self.dimacs, strict=not self.lenient)
        if not formula.is_3sat:
            formula = to_3sat(formula).formula
        return formula

    def solve_key(self, formula: Optional[CNF] = None) -> str:
        """Deduplication key: the canonical formula fingerprint plus
        every option that can change the solve's outcome.  Two jobs
        with equal keys are guaranteed to produce identical results,
        so the :class:`~repro.service.store.ResultStore` solves one
        and shares the outcome."""
        import hashlib

        if formula is None:
            formula = self.load_formula()
        options = repr((
            self.seed, self.classic, self.noise, self.qa_faults,
            self.fault_seed, self.qa_retries, self.qa_deadline_us,
            self.qa_budget_us, self.qa_breaker_threshold,
            self.no_resilience, self.fleet, self.fleet_hedge_us,
            self.topology, self.grid,
        ))
        opt_hash = hashlib.sha256(options.encode()).hexdigest()[:12]
        return f"{fingerprint(formula)}:{opt_hash}"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (all fields, JSON-able) — the journal's
        record payload, compared field-for-field at recovery."""
        return asdict(self)

    def to_json(self) -> str:
        """One job-JSONL line (defaults omitted for readability)."""
        payload: Dict[str, Any] = {"id": self.job_id}
        for spec_field in dataclass_fields(self):
            name = spec_field.name
            if name in ("job_id", "path", "dimacs"):
                continue
            value = getattr(self, name)
            if value != spec_field.default:
                payload[name] = value
        if self.path is not None:
            payload["path"] = self.path
        else:
            payload["dimacs"] = self.dimacs
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "JobSpec":
        """Parse one job-JSONL line (see docs/SERVICE.md)."""
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError(f"job line must be a JSON object: {line!r}")
        job_id = payload.pop("id", None) or payload.pop("job_id", None)
        if not job_id:
            raise ValueError("job line missing 'id'")
        known = {f for f in cls.__dataclass_fields__ if f != "job_id"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown job fields: {sorted(unknown)}")
        return cls(job_id=str(job_id), **payload)


@dataclass
class JobOutcome:
    """Terminal result of one job (the result-JSONL line schema).

    ``state`` is one of :data:`JOB_STATES`; solver fields are ``None``
    for jobs that never ran (rejected/expired/cancelled/failed).
    ``wait_seconds`` (submit → dispatch) and ``run_seconds`` (dispatch
    → completion) are filled in by the service, not the worker.
    """

    job_id: str
    state: str = "done"
    status: Optional[str] = None  # sat | unsat | unknown
    model: Optional[List[int]] = None
    iterations: Optional[int] = None
    conflicts: Optional[int] = None
    qa_calls: int = 0
    qpu_time_us: float = 0.0
    qa_retries: int = 0
    qa_failures: int = 0
    breaker_state: str = "closed"
    qa_budget_spent_us: float = 0.0
    degraded: bool = False
    seed: int = 0
    error: Optional[str] = None
    dedup_of: Optional[str] = None
    wait_seconds: float = 0.0
    run_seconds: float = 0.0
    #: True when the solve resumed from a mid-search checkpoint.  A
    #: resumed solve makes no live QA calls (checkpoints only exist
    #: post-warm-up), so the service bills its restored counters into
    #: the shared ledger by replay instead.
    resumed: bool = False
    #: True when the outcome was served from the persistent result
    #: cache (no solve ran, no QPU time was billed); ``cache_kind``
    #: says how — "exact" (bit-identical stored outcome replay),
    #: "model" (a cached model re-validated against this instance) or
    #: "unsat" (UNSAT inherited from a cached clause-subset).
    cached: Optional[bool] = None
    cache_kind: Optional[str] = None
    #: Number of banked learned clauses this solve was seeded with
    #: (cache warm start).  Warm-started outcomes are never stored for
    #: exact replay — their search counters differ from a cold solve's.
    warm_clauses: Optional[int] = None
    #: Short learned clauses harvested for the cache's clause bank
    #: (signed DIMACS literals).  Stripped before the outcome reaches
    #: result JSONL / the journal; only the cache layer reads it.
    learned: Optional[List[List[int]]] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (all fields, JSON-able) — the journal's
        ``done`` record payload."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobOutcome":
        """Rebuild an outcome serialised by :meth:`as_dict` (journal
        replay)."""
        return cls(**data)

    def to_json(self) -> str:
        payload = {k: v for k, v in asdict(self).items() if v is not None}
        payload["id"] = payload.pop("job_id")
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "JobOutcome":
        payload = json.loads(line)
        payload["job_id"] = payload.pop("id")
        return cls(**payload)

    def as_dedup_of(self, primary: "JobOutcome", job_id: str) -> "JobOutcome":
        """A copy of ``primary``'s solver fields credited to this job."""
        twin = JobOutcome(**asdict(primary))
        twin.job_id = job_id
        twin.state = "deduped"
        twin.dedup_of = primary.job_id
        twin.wait_seconds = self.wait_seconds
        twin.run_seconds = 0.0
        return twin


def build_device(spec: JobSpec):
    """The device stack ``hyqsat solve`` would build for these options:
    a seeded (possibly faulty) :class:`AnnealerDevice`, wrapped in a
    :class:`ResilientDevice` unless ``no_resilience``; with ``fleet``
    >= 2, that many such stacks behind a health-scored
    :class:`~repro.service.scheduler.FleetDevice` (member 0 being
    exactly the solo stack, so a healthy fleet stays bit-identical)."""
    from repro.annealer import AnnealerDevice, NoiseModel, parse_fault_spec
    from repro.core.config import (
        BreakerPolicy,
        ResilienceConfig,
        RetryPolicy,
    )
    from repro.resilience import ResilientDevice

    noise = NoiseModel.dwave_2000q() if spec.noise else NoiseModel.noiseless()
    faults = parse_fault_spec(spec.qa_faults) if spec.qa_faults else None
    fault_seed = spec.seed if spec.fault_seed is None else spec.fault_seed
    hardware = None
    if spec.topology is not None or spec.grid is not None:
        from repro.topology import build_hardware

        hardware = build_hardware(spec.topology or "chimera", spec.grid or 16)

    def one_stack(member_fault_seed: int):
        device = AnnealerDevice(
            noise=noise,
            seed=spec.seed,
            faults=faults,
            fault_seed=member_fault_seed,
            hardware=hardware,
        )
        if not spec.no_resilience:
            device = ResilientDevice(
                device,
                ResilienceConfig(
                    retry=RetryPolicy(max_attempts=spec.qa_retries),
                    breaker=BreakerPolicy(
                        failure_threshold=spec.qa_breaker_threshold
                    ),
                    call_deadline_us=spec.qa_deadline_us,
                    qa_budget_us=spec.qa_budget_us,
                    seed=member_fault_seed,
                ),
            )
        return device

    if spec.fleet >= 2:
        from repro.service.scheduler import FleetDevice, FleetPolicy

        # Member i gets a decorrelated fault seed so one fault storm
        # does not take out every member in lockstep.
        members = [
            one_stack(fault_seed + 1000003 * i) for i in range(spec.fleet)
        ]
        return FleetDevice(
            members, FleetPolicy(hedge_after_us=spec.fleet_hedge_us)
        )
    return one_stack(fault_seed)


def build_solver(
    spec: JobSpec,
    formula: Optional[CNF] = None,
    device=None,
    observability=None,
    checkpoint_path: Optional[str] = None,
):
    """The solver a solo ``hyqsat solve`` run would construct.

    Returns an object with ``.solve()``: a CDCL preset for
    ``classic`` jobs, a :class:`HyQSatSolver` otherwise.  ``device``
    overrides the default stack (the service passes a
    scheduler-wrapped device here); ``formula`` skips a re-parse when
    the caller already loaded it.  With ``checkpoint_path`` set and
    ``spec.checkpoint_every`` > 0, the hybrid solve checkpoints there
    and resumes from any valid snapshot it finds (classic jobs never
    checkpoint — the preset has no hybrid hook to snapshot from).
    """
    from repro.cdcl import minisat_solver
    from repro.core import HyQSatConfig, HyQSatSolver

    if formula is None:
        formula = spec.load_formula()
    if spec.classic:
        return minisat_solver(formula, seed=spec.seed, engine=spec.engine)
    if device is None:
        device = build_device(spec)
    checkpoint_every = (
        spec.checkpoint_every if checkpoint_path is not None else 0
    )
    return HyQSatSolver(
        formula,
        device=device,
        config=HyQSatConfig(
            seed=spec.seed,
            engine=spec.engine,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path if checkpoint_every else None,
        ),
        observability=observability,
    )


def outcome_from_result(spec: JobSpec, result) -> JobOutcome:
    """Fold a solve result (hybrid or classic) into a picklable
    :class:`JobOutcome`."""
    hybrid = getattr(result, "hybrid", None)
    outcome = JobOutcome(
        job_id=spec.job_id,
        state="done",
        status=result.status.value,
        model=(
            [lit.value for lit in result.model.as_literals()]
            if result.model is not None
            else None
        ),
        iterations=result.stats.iterations,
        conflicts=result.stats.conflicts,
        seed=spec.seed,
    )
    if hybrid is not None:
        outcome.qa_calls = hybrid.qa_calls
        outcome.qpu_time_us = hybrid.qpu_time_us
        outcome.qa_retries = hybrid.qa_retries
        outcome.qa_failures = hybrid.qa_failures
        outcome.breaker_state = hybrid.breaker_state
        outcome.qa_budget_spent_us = hybrid.qa_budget_spent_us
        outcome.degraded = hybrid.degraded
    return outcome


def run_job(
    spec: JobSpec,
    scheduler=None,
    checkpoint_dir=None,
    warm_clauses: Optional[List[List[int]]] = None,
    collect_learned: bool = False,
) -> JobOutcome:
    """Execute one job start to finish (the worker entry point).

    Never raises: any error becomes a ``failed`` outcome so one bad
    job cannot take down a worker or the service.  With a
    :class:`~repro.service.scheduler.QpuScheduler` supplied
    (thread/inline pools), the job's device is wrapped in a
    :class:`~repro.service.scheduler.ScheduledDevice` so its anneal
    requests go through the shared-QPU multiplexer; without one
    (process pools), the scheduler's accounting is replayed by the
    service from the outcome's counters.  With ``checkpoint_dir`` and
    ``spec.checkpoint_every`` set, the solve checkpoints under
    ``<checkpoint_dir>/<job_id>.ckpt`` and a retried/re-run job
    resumes from its last snapshot.

    ``warm_clauses`` seeds the solve with cache-banked learned clauses
    through the incremental API (hybrid jobs only; sound because the
    cache only donates clauses implied by a clause-subset of this
    instance).  ``collect_learned`` harvests the solve's own short
    learned clauses into ``outcome.learned`` for the bank.
    """
    started = time.perf_counter()
    try:
        formula = spec.load_formula()
        device = None
        if scheduler is not None and not spec.classic:
            from repro.service.scheduler import ScheduledDevice

            device = ScheduledDevice(
                build_device(spec), scheduler, spec.job_id
            )
        checkpoint_path = None
        if checkpoint_dir is not None and spec.checkpoint_every > 0:
            from repro.service.checkpoint import CheckpointManager

            checkpoint_path = CheckpointManager(checkpoint_dir).path_for(
                spec.job_id
            )
        solver = build_solver(
            spec,
            formula=formula,
            device=device,
            checkpoint_path=checkpoint_path,
        )
        if warm_clauses and not spec.classic:
            solver.preseed_clauses(warm_clauses)
        result = solver.solve()
        outcome = outcome_from_result(spec, result)
        outcome.resumed = getattr(solver, "_resumed_from_checkpoint", False)
        if warm_clauses and not spec.classic:
            outcome.warm_clauses = len(warm_clauses)
        if collect_learned and not spec.classic:
            from repro.cache import CLAUSE_BANK_MAX_CLAUSES, CLAUSE_BANK_MAX_LEN

            engine = getattr(solver, "last_engine", None)
            if engine is not None and outcome.status in ("sat", "unsat"):
                outcome.learned = engine.learned_clause_lits(
                    max_len=CLAUSE_BANK_MAX_LEN,
                    limit=CLAUSE_BANK_MAX_CLAUSES,
                ) or None
    except Exception as error:  # noqa: BLE001 — worker boundary
        outcome = JobOutcome(
            job_id=spec.job_id,
            state="failed",
            error=f"{type(error).__name__}: {error}",
            seed=spec.seed,
        )
    outcome.run_seconds = time.perf_counter() - started
    return outcome
