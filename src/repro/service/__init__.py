"""In-process concurrent solver service.

The service turns the single-shot hybrid solver into a multi-tenant
system: a priority :class:`~repro.service.queue.JobQueue` with
deadlines and admission control feeds a
:class:`~repro.service.pool.WorkerPool`; every worker's anneal
requests are multiplexed across the one simulated annealer by a
fair-share :class:`~repro.service.scheduler.QpuScheduler` (with
identical-request coalescing and a shared device-time budget); and a
:class:`~repro.service.store.ResultStore` deduplicates jobs whose
canonical CNF fingerprint and solve options match, solving each
distinct instance once.

Results are bit-identical to solo ``hyqsat solve`` runs per job seed,
whatever the worker count or pool mode — see docs/SERVICE.md.

The durability tier makes the service crash-safe: a write-ahead
:class:`~repro.service.journal.JobJournal` lets a killed session be
re-run with acked jobs replayed instead of re-solved,
:mod:`repro.service.checkpoint` persists mid-search solver state so
long solves resume where they stopped, and
:class:`~repro.service.scheduler.FleetDevice` fails anneal traffic
over across a registry of health-tracked devices (see docs/SERVICE.md,
"Durability & failure model").
"""

from repro.service.checkpoint import (
    CheckpointManager,
    discard_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.service.jobs import (
    JOB_STATES,
    PRIORITY_CLASSES,
    JobOutcome,
    JobSpec,
    build_device,
    build_solver,
    run_job,
)
from repro.service.journal import (
    JobJournal,
    JournalStats,
    RecoveryReport,
    read_journal,
)
from repro.service.pool import POOL_MODES, WorkerPool
from repro.service.queue import AdmissionError, JobQueue, QueueStats
from repro.service.scheduler import (
    FleetDevice,
    FleetPolicy,
    FleetStats,
    QpuScheduler,
    ScheduledDevice,
    SchedulerStats,
    simulate_makespan,
)
from repro.service.service import (
    ServiceConfig,
    ServiceStats,
    SolverService,
    run_batch,
)
from repro.service.store import ResultStore

__all__ = [
    "AdmissionError",
    "CheckpointManager",
    "FleetDevice",
    "FleetPolicy",
    "FleetStats",
    "JOB_STATES",
    "JobJournal",
    "JobOutcome",
    "JobQueue",
    "JobSpec",
    "JournalStats",
    "POOL_MODES",
    "PRIORITY_CLASSES",
    "QpuScheduler",
    "QueueStats",
    "RecoveryReport",
    "ResultStore",
    "ScheduledDevice",
    "SchedulerStats",
    "ServiceConfig",
    "ServiceStats",
    "SolverService",
    "WorkerPool",
    "build_device",
    "build_solver",
    "discard_checkpoint",
    "load_checkpoint",
    "read_journal",
    "run_batch",
    "run_job",
    "save_checkpoint",
    "simulate_makespan",
]
