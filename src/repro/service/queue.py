"""Priority job queue with deadlines and admission control.

A thread-safe bounded queue ordered by ``(priority class, submission
order)``: strict priority between classes, FIFO within a class.
Admission control happens at :meth:`~JobQueue.push` — a queue at
``max_depth`` rejects instead of blocking, so a flooded service sheds
load at the door rather than growing without bound.  Deadlines are
*queue* deadlines: a job whose ``deadline_s`` elapses while still
queued is expired at pop time and never dispatched (a job already
running is allowed to finish).

All deadline arithmetic runs on an injectable monotonic ``clock``
(default :func:`time.monotonic`), so expiry is immune to wall-clock
adjustments and fully deterministic under a fake clock in tests.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.service.jobs import JobSpec


class AdmissionError(RuntimeError):
    """The queue refused a job at admission (full, or closed)."""


@dataclass(order=True)
class _Entry:
    sort_key: Tuple[int, int]
    spec: JobSpec = field(compare=False)
    submitted_at: float = field(compare=False)
    #: Lazy cancellation: popped entries with this flag are discarded.
    cancelled: bool = field(default=False, compare=False)


@dataclass
class QueueStats:
    """Counters the service folds into its metrics."""

    admitted: int = 0
    rejected: int = 0
    expired: int = 0
    cancelled: int = 0


class JobQueue:
    """Bounded priority queue of :class:`JobSpec`.

    ``max_depth`` bounds the number of *queued* (not yet popped) jobs;
    ``None`` means unbounded.  ``clock`` is the monotonic time source
    used for deadlines and wait accounting (tests inject a fake).
    All methods are thread-safe.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 when set")
        self.max_depth = max_depth
        self._clock = time.monotonic if clock is None else clock
        self.stats = QueueStats()
        self._heap: List[_Entry] = []
        self._by_id: dict = {}
        self._seq = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for e in self._heap if not e.cancelled)

    def push(self, spec: JobSpec, now: Optional[float] = None) -> None:
        """Admit a job or raise :class:`AdmissionError`.

        ``now`` (``time.monotonic()`` domain) exists so tests can pin
        the clock; deadlines are measured from this instant.
        """
        with self._not_empty:
            if self._closed:
                raise AdmissionError("queue is closed to new jobs")
            if spec.job_id in self._by_id:
                raise AdmissionError(f"duplicate job id {spec.job_id!r}")
            depth = sum(1 for e in self._heap if not e.cancelled)
            if self.max_depth is not None and depth >= self.max_depth:
                self.stats.rejected += 1
                raise AdmissionError(
                    f"queue full (depth {depth} >= max_depth {self.max_depth})"
                )
            entry = _Entry(
                sort_key=(spec.priority_rank, self._seq),
                spec=spec,
                submitted_at=self._clock() if now is None else now,
            )
            self._seq += 1
            heapq.heappush(self._heap, entry)
            self._by_id[spec.job_id] = entry
            self.stats.admitted += 1
            self._not_empty.notify()

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; False if unknown or already popped."""
        with self._lock:
            entry = self._by_id.get(job_id)
            if entry is None or entry.cancelled:
                return False
            entry.cancelled = True
            self.stats.cancelled += 1
            return True

    def close(self) -> None:
        """Refuse further pushes and wake blocked poppers."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def pop(
        self, timeout: Optional[float] = None, now: Optional[float] = None
    ) -> Tuple[Optional[JobSpec], List[JobSpec], float]:
        """Pop the next runnable job.

        Returns ``(spec, expired, waited_s)`` where ``expired`` lists
        jobs whose queue deadline passed before dispatch (the caller
        owes each an ``expired`` outcome) and ``waited_s`` is the
        popped job's time in queue.  ``spec`` is ``None`` on timeout or
        when the queue is closed and drained.
        """
        deadline = None if timeout is None else self._clock() + timeout
        expired: List[JobSpec] = []
        with self._not_empty:
            while True:
                clock = self._clock() if now is None else now
                while self._heap:
                    entry = heapq.heappop(self._heap)
                    self._by_id.pop(entry.spec.job_id, None)
                    if entry.cancelled:
                        continue
                    spec = entry.spec
                    waited = clock - entry.submitted_at
                    if (
                        spec.deadline_s is not None
                        and waited > spec.deadline_s
                    ):
                        self.stats.expired += 1
                        expired.append(spec)
                        continue
                    return spec, expired, max(0.0, waited)
                if self._closed:
                    return None, expired, 0.0
                remaining = (
                    None if deadline is None else deadline - self._clock()
                )
                if remaining is not None and remaining <= 0:
                    return None, expired, 0.0
                self._not_empty.wait(remaining)
