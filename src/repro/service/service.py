"""The in-process solver service coordinator.

:class:`SolverService` wires the subsystem together: jobs are admitted
into a :class:`~repro.service.queue.JobQueue` (priority, deadlines,
admission control), dispatched onto a :class:`~repro.service.pool.
WorkerPool` as worker slots free up, deduplicated through a
:class:`~repro.service.store.ResultStore`, and their anneal requests
arbitrated by one shared :class:`~repro.service.scheduler.QpuScheduler`.

Threading model: **all** coordination — queue pops, dedup decisions,
outcome finalisation, and every tracer/metrics touch — happens on the
single thread that calls :meth:`run`.  Worker threads/processes only
execute :func:`~repro.service.jobs.run_job` and push a completion
token onto an internal queue; the tracer's explicit span stack is never
shared.  That makes the service safe on every pool mode without a
single lock around the observability layer.

Determinism: a job's solver output depends only on its spec — same
seed, same device construction as a solo ``hyqsat solve`` — never on
worker count, dispatch order, or sibling jobs.  The batch bit-identity
tests pin this property.
"""

from __future__ import annotations

import concurrent.futures
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.service.jobs import JobOutcome, JobSpec, run_job
from repro.service.journal import JobJournal
from repro.service.pool import WorkerPool
from repro.service.queue import AdmissionError, JobQueue
from repro.service.scheduler import QpuScheduler
from repro.service.store import ResultStore

#: Default LRU cap on the in-memory dedup store — the single source of
#: truth ``hyqsat serve`` and ``hyqsat batch`` both resolve their
#: ``--store-cap`` default from (docs/SERVICE.md).
DEFAULT_STORE_CAP = 4096


@dataclass
class ServiceConfig:
    """Knobs of one :class:`SolverService`."""

    #: Worker slots (jobs solving concurrently).
    workers: int = 1
    #: Pool mode: ``thread`` | ``process`` | ``inline``
    #: (:data:`~repro.service.pool.POOL_MODES`).
    pool_mode: str = "thread"
    #: Queue admission cap (``None`` = unbounded).
    max_depth: Optional[int] = None
    #: Shared modelled-µs cap on the QPU pool (``None`` = unlimited).
    qpu_budget_us: Optional[float] = None
    #: Canonical-CNF result deduplication.
    dedup: bool = True
    #: Crash-safe write-ahead job journal
    #: (:class:`~repro.service.journal.JobJournal`); ``None`` disables
    #: journaling.  Re-running the same command against an existing
    #: journal replays acked outcomes instead of re-solving them.
    journal_path: Optional[str] = None
    #: Directory for per-job mid-search checkpoints
    #: (:mod:`repro.service.checkpoint`); ``None`` disables them.  Only
    #: jobs with ``checkpoint_every > 0`` in their spec checkpoint.
    checkpoint_dir: Optional[str] = None
    #: LRU cap on cached dedup outcomes in the
    #: :class:`~repro.service.store.ResultStore` (``None`` = unbounded).
    store_max_entries: Optional[int] = DEFAULT_STORE_CAP
    #: How many times a job lost to a dead worker process is returned
    #: to the pool before it is failed.
    max_worker_retries: int = 2
    #: SQLite file of the persistent (L2) result cache
    #: (:class:`~repro.cache.PersistentResultStore`); ``None`` disables
    #: the cache entirely.
    cache_path: Optional[str] = None
    #: LRU cap on exact-result rows in the persistent cache
    #: (``None`` = unbounded).
    cache_cap: Optional[int] = None
    #: TTL in seconds on exact-result rows (``None`` = no expiry).
    cache_ttl_s: Optional[float] = None
    #: Clause-signature subsumption lookups (model revalidation /
    #: UNSAT inheritance); exact hits work regardless.
    cache_subsume: bool = True
    #: Learned-clause-bank warm starts for near-miss instances.
    cache_warm_start: bool = True


@dataclass
class ServiceStats:
    """Aggregate counters of one service run (CLI summary source)."""

    jobs_by_state: Dict[str, int] = field(default_factory=dict)
    dedup_hits: int = 0
    qpu_grants: int = 0
    qpu_coalesced: int = 0
    qpu_busy_us: float = 0.0
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_subsumption_hits: int = 0
    cache_warm_starts: int = 0

    def count(self, state: str) -> None:
        self.jobs_by_state[state] = self.jobs_by_state.get(state, 0) + 1

    @property
    def total_jobs(self) -> int:
        return sum(self.jobs_by_state.values())


class SolverService:
    """Concurrent solve orchestrator (see module docstring).

    One instance serves one batch/serve session; construct fresh per
    run.  ``observability`` is an optional
    :class:`~repro.observability.Observability` bundle used only from
    the coordinator thread.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        observability=None,
    ):
        from repro.observability import DISABLED, declare_solver_metrics

        self.config = config or ServiceConfig()
        self.queue = JobQueue(max_depth=self.config.max_depth)
        self.store = ResultStore(max_entries=self.config.store_max_entries)
        #: Persistent L2 cache under the in-memory store (``None`` when
        #: disabled).  Opened on the coordinator thread; workers never
        #: touch it.
        self.cache = None
        if self.config.cache_path is not None:
            from repro.cache import PersistentResultStore

            self.cache = PersistentResultStore(
                self.config.cache_path,
                max_entries=self.config.cache_cap,
                ttl_s=self.config.cache_ttl_s,
                subsume=self.config.cache_subsume,
                warm_start=self.config.cache_warm_start,
            )
        self.scheduler = QpuScheduler(budget_us=self.config.qpu_budget_us)
        self.pool = WorkerPool(
            workers=self.config.workers, mode=self.config.pool_mode
        )
        #: Opening the journal performs crash recovery: the valid
        #: record prefix is parsed and any torn tail truncated away.
        self.journal: Optional[JobJournal] = (
            JobJournal(self.config.journal_path)
            if self.config.journal_path is not None
            else None
        )
        #: job_id -> times resubmitted after a worker-process death.
        self._worker_retries: Dict[str, int] = {}
        self.stats = ServiceStats()
        self.observability = observability or DISABLED
        if self.observability.metrics is not None:
            declare_solver_metrics(self.observability.metrics)
        #: Completion tokens: ``("done", job_id)`` from worker
        #: callbacks, ``("cancelled", job_id)`` from :meth:`cancel`.
        self._completions: "queue_module.Queue[Tuple[str, str]]" = (
            queue_module.Queue()
        )
        self._cancelled_ids: set = set()
        self._cancel_lock = threading.Lock()

    # -- control surface ----------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job (running jobs finish).  Safe from
        any thread; returns False when the job is unknown, already
        dispatched, or already finished."""
        if self.queue.cancel(job_id):
            with self._cancel_lock:
                self._cancelled_ids.add(job_id)
            self._completions.put(("cancelled", job_id))
            return True
        return False

    # -- the run loop --------------------------------------------------

    def run(
        self,
        specs: Sequence[JobSpec],
        on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    ) -> List[JobOutcome]:
        """Admit, dispatch, and finalise ``specs``; block to completion.

        Returns outcomes in **submission order** regardless of
        completion order; ``on_outcome`` fires in completion order as
        each job finalises (the streaming hook ``hyqsat serve`` writes
        result lines from).
        """
        obs = self.observability
        tracer = obs.tracer
        started = time.perf_counter()
        outcomes: Dict[str, JobOutcome] = {}
        #: dispatched job_id ->
        #: (spec, future, waited_s, dedup key, formula, warm start)
        inflight: Dict[str, Tuple] = {}
        #: dedup key -> parked duplicate (spec, waited_s) pairs
        followers: Dict[str, List[Tuple[JobSpec, float]]] = {}
        #: dedup key -> finished primary outcome
        primaries: Dict[str, JobOutcome] = {}
        free_slots = self.config.workers

        def finalise(outcome: JobOutcome, record: bool = True) -> None:
            if record and self.journal is not None:
                # The ack: fsynced before the consumer can observe the
                # result, so "emitted" always implies "journaled".
                self.journal.record_done(outcome)
            outcomes[outcome.job_id] = outcome
            self.stats.count(outcome.state)
            if obs.metrics is not None:
                obs.metrics.counter("hyqsat_service_jobs_total").labels(
                    state=outcome.state
                ).inc()
                if outcome.state in ("done", "failed"):
                    obs.metrics.histogram(
                        "hyqsat_service_queue_wait_seconds"
                    ).observe(outcome.wait_seconds)
                    obs.metrics.histogram(
                        "hyqsat_service_job_run_seconds"
                    ).observe(outcome.run_seconds)
                obs.metrics.gauge("hyqsat_service_queue_depth").set(
                    len(self.queue)
                )
            if tracer.enabled:
                tracer.start_span("service.job", job_id=outcome.job_id).end(
                    state=outcome.state,
                    status=outcome.status,
                    wait_s=round(outcome.wait_seconds, 6),
                    run_s=round(outcome.run_seconds, 6),
                    qa_calls=outcome.qa_calls,
                    dedup_of=outcome.dedup_of,
                )
            if on_outcome is not None:
                on_outcome(outcome)

        def settle_followers(key: str, primary: JobOutcome) -> None:
            primaries[key] = primary
            for spec, waited in followers.pop(key, []):
                twin = JobOutcome(
                    job_id=spec.job_id, wait_seconds=waited
                ).as_dedup_of(primary, spec.job_id)
                finalise(twin)

        batch_span = tracer.start_span(
            "service.batch",
            jobs=len(specs),
            workers=self.config.workers,
            pool=self.config.pool_mode,
        )
        try:
            # Admission: every spec either replays from the journal,
            # enters the queue, or is rejected on the spot.
            pending = 0
            for spec in specs:
                if self.journal is not None:
                    recovered = self.journal.recovered_outcome(spec)
                    if recovered is not None:
                        # Acked before the crash: re-emit the journaled
                        # outcome exactly once, never re-solve — and
                        # bill its QPU usage into this session's ledger
                        # so modelled time is charged once overall.
                        outcome = JobOutcome.from_dict(recovered)
                        tracer.event(
                            "service.recover",
                            job_id=spec.job_id,
                            state=outcome.state,
                        )
                        if obs.metrics is not None:
                            obs.metrics.counter(
                                "hyqsat_service_recoveries_total"
                            ).inc()
                        if not spec.classic and (
                            outcome.qa_calls or outcome.qpu_time_us
                        ):
                            self.scheduler.replay(
                                spec.job_id,
                                outcome.qa_calls,
                                outcome.qpu_time_us,
                            )
                        finalise(outcome, record=False)
                        continue
                try:
                    if self.journal is not None:
                        self.journal.record_submit(spec)
                    self.queue.push(spec)
                    pending += 1
                    tracer.event(
                        "service.admit",
                        job_id=spec.job_id,
                        priority=spec.priority,
                    )
                except AdmissionError as error:
                    tracer.event(
                        "service.reject", job_id=spec.job_id, reason=str(error)
                    )
                    finalise(
                        JobOutcome(
                            job_id=spec.job_id,
                            state="rejected",
                            error=str(error),
                            seed=spec.seed,
                        )
                    )
            if obs.metrics is not None:
                obs.metrics.gauge("hyqsat_service_queue_depth").set(
                    len(self.queue)
                )

            while pending > 0 or inflight:
                # Fill free worker slots from the queue.  Followers and
                # expired/cancelled jobs consume no slot, so keep
                # popping until a slot is actually used or the queue is
                # momentarily empty.
                while free_slots > 0 and pending > 0:
                    spec, expired, waited = self.queue.pop(timeout=0)
                    for dead in expired:
                        pending -= 1
                        tracer.event("service.expire", job_id=dead.job_id)
                        finalise(
                            JobOutcome(
                                job_id=dead.job_id,
                                state="expired",
                                error="queue deadline exceeded",
                                seed=dead.seed,
                            )
                        )
                    if spec is None:
                        break
                    pending -= 1
                    key: Optional[str] = None
                    formula = None
                    want_key = (
                        self.config.dedup or self.cache is not None
                    ) and not spec.classic
                    if want_key:
                        try:
                            formula = spec.load_formula()
                            key = spec.solve_key(formula)
                        except Exception:  # noqa: BLE001 — unreadable
                            key = None  # let run_job surface the error
                    if key is not None and self.config.dedup:
                        primary_id = self.store.lookup_or_claim(
                            key, spec.job_id
                        )
                        if primary_id is not None:
                            self.stats.dedup_hits += 1
                            tracer.event(
                                "service.dedup",
                                job_id=spec.job_id,
                                primary=primary_id,
                            )
                            if obs.metrics is not None:
                                obs.metrics.counter(
                                    "hyqsat_service_dedup_hits_total"
                                ).inc()
                            if key in primaries:
                                twin = JobOutcome(
                                    job_id=spec.job_id, wait_seconds=waited
                                ).as_dedup_of(primaries[key], spec.job_id)
                                finalise(twin)
                            else:
                                followers.setdefault(key, []).append(
                                    (spec, waited)
                                )
                            continue
                    warm = None
                    if self.cache is not None and formula is not None:
                        # L2: exact replay or a subsumption
                        # certificate — either way no solve runs and no
                        # QPU time is billed.
                        hit = None
                        try:
                            hit = self.cache.lookup(key, spec, formula)
                        except Exception:  # noqa: BLE001 — cache is
                            hit = None  # advisory, never fatal
                        if hit is not None:
                            hit.wait_seconds = waited
                            tracer.event(
                                "service.cache_hit",
                                job_id=spec.job_id,
                                kind=hit.cache_kind,
                            )
                            finalise(hit)
                            if key is not None:
                                settle_followers(key, hit)
                                self.store.fulfil(key, hit)
                            continue
                        try:
                            warm = self.cache.warm_clauses(formula)
                        except Exception:  # noqa: BLE001
                            warm = None
                    live = (
                        self.pool.live_scheduling and not spec.classic
                    )
                    if self.journal is not None:
                        self.journal.record_start(spec.job_id)
                    future = self.pool.submit(
                        run_job,
                        spec,
                        self.scheduler if live else None,
                        self.config.checkpoint_dir,
                        warm.clauses if warm is not None else None,
                        self.cache is not None and not spec.classic,
                    )
                    free_slots -= 1
                    inflight[spec.job_id] = (
                        spec, future, waited, key, formula, warm
                    )
                    future.add_done_callback(
                        lambda _f, jid=spec.job_id: self._completions.put(
                            ("done", jid)
                        )
                    )

                if not inflight and pending == 0:
                    break
                kind, job_id = self._completions.get()
                if kind == "cancelled":
                    pending -= 1
                    tracer.event("service.cancel", job_id=job_id)
                    finalise(
                        JobOutcome(
                            job_id=job_id,
                            state="cancelled",
                            error="cancelled while queued",
                        )
                    )
                    continue
                spec, future, waited, key, formula, warm = inflight.pop(
                    job_id
                )
                free_slots += 1
                try:
                    outcome = future.result()  # run_job never raises
                except concurrent.futures.BrokenExecutor:
                    # A worker process died mid-job and poisoned the
                    # pool.  Respawn the executor (a no-op unless it is
                    # actually broken) and return the job to the pool a
                    # bounded number of times instead of hanging or
                    # losing it.
                    self.pool.respawn()
                    retries = self._worker_retries.get(job_id, 0)
                    if retries < self.config.max_worker_retries:
                        self._worker_retries[job_id] = retries + 1
                        if self.journal is not None:
                            self.journal.record_retry(
                                job_id, "worker process died"
                            )
                        tracer.event(
                            "service.retry",
                            job_id=job_id,
                            attempt=retries + 1,
                        )
                        if obs.metrics is not None:
                            obs.metrics.counter(
                                "hyqsat_service_worker_retries_total"
                            ).inc()
                        live = (
                            self.pool.live_scheduling and not spec.classic
                        )
                        future = self.pool.submit(
                            run_job,
                            spec,
                            self.scheduler if live else None,
                            self.config.checkpoint_dir,
                            warm.clauses if warm is not None else None,
                            self.cache is not None and not spec.classic,
                        )
                        free_slots -= 1
                        inflight[job_id] = (
                            spec, future, waited, key, formula, warm
                        )
                        future.add_done_callback(
                            lambda _f, jid=job_id: self._completions.put(
                                ("done", jid)
                            )
                        )
                        continue
                    outcome = JobOutcome(
                        job_id=job_id,
                        state="failed",
                        error="worker process died (retries exhausted)",
                        seed=spec.seed,
                    )
                outcome.wait_seconds = waited
                if not self.pool.live_scheduling and not spec.classic:
                    # Process workers solved in another address space;
                    # fold their device usage into the shared ledger.
                    self.scheduler.replay(
                        job_id, outcome.qa_calls, outcome.qpu_time_us
                    )
                elif outcome.resumed and not spec.classic:
                    # A checkpoint-resumed solve made no live QA calls
                    # (checkpoints only exist post-warm-up): bill its
                    # restored counters so the session ledger carries
                    # the job's usage exactly once.
                    self.scheduler.replay(
                        job_id, outcome.qa_calls, outcome.qpu_time_us
                    )
                if self.cache is not None and not spec.classic:
                    if outcome.warm_clauses and warm is not None:
                        saved = max(
                            0,
                            warm.donor_conflicts
                            - (outcome.conflicts or 0),
                        )
                        self.cache.note_warm_start(
                            warm.donor_conflicts, outcome.conflicts or 0
                        )
                        tracer.event(
                            "service.warm_start",
                            job_id=job_id,
                            clauses=outcome.warm_clauses,
                            conflicts_saved=saved,
                        )
                    if key is not None and formula is not None:
                        try:
                            self.cache.record(key, formula, outcome)
                        except Exception:  # noqa: BLE001 — advisory
                            pass
                # The clause-bank payload is cache-internal: strip it
                # before the outcome reaches the journal / JSONL.
                outcome.learned = None
                finalise(outcome)
                if key is not None:
                    settle_followers(key, outcome)
                    self.store.fulfil(key, outcome)
        except BaseException:
            # Interrupt/crash: stop feeding workers and return control
            # immediately; already-running jobs finish in the
            # background (their streamed results stay valid).
            self.queue.close()
            self.pool.shutdown(wait=False, cancel_pending=True)
            raise
        else:
            self.pool.shutdown(wait=True)
        finally:
            if self.journal is not None:
                self.journal.close()
            if self.cache is not None:
                self.stats.cache_hits = self.cache.stats.hits
                self.stats.cache_misses = self.cache.stats.misses
                self.stats.cache_subsumption_hits = sum(
                    self.cache.stats.subsumption_hits.values()
                )
                self.stats.cache_warm_starts = self.cache.stats.warm_starts
            self.stats.wall_seconds = time.perf_counter() - started
            self.stats.qpu_grants = self.scheduler.stats.grants
            self.stats.qpu_coalesced = self.scheduler.stats.coalesced
            self.stats.qpu_busy_us = self.scheduler.stats.busy_us
            if obs.metrics is not None:
                metrics = obs.metrics
                if self.scheduler.stats.grants:
                    metrics.counter(
                        "hyqsat_service_qpu_grants_total"
                    ).inc(self.scheduler.stats.grants)
                if self.scheduler.stats.coalesced:
                    metrics.counter(
                        "hyqsat_service_qpu_coalesced_total"
                    ).inc(self.scheduler.stats.coalesced)
                metrics.gauge("hyqsat_service_qpu_busy_us").set(
                    self.scheduler.stats.busy_us
                )
                if self.store.evictions:
                    metrics.counter(
                        "hyqsat_service_store_evictions_total"
                    ).inc(self.store.evictions)
                if self.cache is not None:
                    cstats = self.cache.stats
                    if cstats.hits:
                        metrics.counter(
                            "hyqsat_cache_hits_total"
                        ).inc(cstats.hits)
                    if cstats.misses:
                        metrics.counter(
                            "hyqsat_cache_misses_total"
                        ).inc(cstats.misses)
                    for kind, count in sorted(
                        cstats.subsumption_hits.items()
                    ):
                        metrics.counter(
                            "hyqsat_cache_subsumption_hits_total"
                        ).labels(kind=kind).inc(count)
                    if cstats.warm_starts:
                        metrics.counter(
                            "hyqsat_cache_warm_starts_total"
                        ).inc(cstats.warm_starts)
                    if cstats.warm_start_conflicts_saved:
                        metrics.counter(
                            "hyqsat_cache_warm_start_conflicts_saved_total"
                        ).inc(cstats.warm_start_conflicts_saved)
                    if cstats.evictions:
                        metrics.counter(
                            "hyqsat_cache_evictions_total"
                        ).inc(cstats.evictions)
                    try:
                        metrics.gauge("hyqsat_cache_entries").set(
                            self.cache.entry_count()
                        )
                    except Exception:  # noqa: BLE001 — closing DB
                        pass
                if self.journal is not None:
                    jstats = self.journal.stats
                    for kind, count in sorted(
                        jstats.records_by_kind.items()
                    ):
                        metrics.counter(
                            "hyqsat_journal_records_total"
                        ).labels(kind=kind).inc(count)
                    if jstats.fsyncs:
                        metrics.counter(
                            "hyqsat_journal_fsyncs_total"
                        ).inc(jstats.fsyncs)
                    if jstats.replayed:
                        metrics.counter(
                            "hyqsat_journal_replayed_total"
                        ).inc(jstats.replayed)
                    if jstats.torn_records:
                        metrics.counter(
                            "hyqsat_journal_torn_records_total"
                        ).inc(jstats.torn_records)
            if self.cache is not None:
                self.cache.close()
            batch_span.end(
                done=self.stats.jobs_by_state.get("done", 0),
                deduped=self.stats.jobs_by_state.get("deduped", 0),
                failed=self.stats.jobs_by_state.get("failed", 0),
            )
        return [outcomes[spec.job_id] for spec in specs]


def run_batch(
    specs: Sequence[JobSpec],
    workers: int = 1,
    pool_mode: str = "thread",
    observability=None,
    on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    max_depth: Optional[int] = None,
    qpu_budget_us: Optional[float] = None,
    dedup: bool = True,
    journal_path: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    store_max_entries: Optional[int] = DEFAULT_STORE_CAP,
    max_worker_retries: int = 2,
    cache_path: Optional[str] = None,
    cache_cap: Optional[int] = None,
    cache_ttl_s: Optional[float] = None,
    cache_subsume: bool = True,
    cache_warm_start: bool = True,
) -> Tuple[List[JobOutcome], "ServiceStats"]:
    """One-shot convenience: build a service, run ``specs``, return
    ``(outcomes, stats)`` (outcomes in submission order)."""
    service = SolverService(
        ServiceConfig(
            workers=workers,
            pool_mode=pool_mode,
            max_depth=max_depth,
            qpu_budget_us=qpu_budget_us,
            dedup=dedup,
            journal_path=journal_path,
            checkpoint_dir=checkpoint_dir,
            store_max_entries=store_max_entries,
            max_worker_retries=max_worker_retries,
            cache_path=cache_path,
            cache_cap=cache_cap,
            cache_ttl_s=cache_ttl_s,
            cache_subsume=cache_subsume,
            cache_warm_start=cache_warm_start,
        ),
        observability=observability,
    )
    return service.run(specs, on_outcome=on_outcome), service.stats
