"""Clause-signature primitives of the subsumption index.

A formula's *clause signature set* is one 16-byte hash per canonical
clause row (the same sorted-literal rows :func:`repro.sat.cnf.
fingerprint` hashes).  Set inclusion over signature sets decides the
subset/superset relation between instances without storing (or
re-parsing) either formula — 128-bit hashes make a false inclusion
astronomically unlikely, and every SAT answer derived from one is
re-validated against the *actual* new formula anyway, so only the
UNSAT-propagation and clause-bank paths rely on the hash width.

A 63-bit Bloom-style ``mask`` (one bit per clause hash) rides along
as an SQL-side prefilter: ``A ⊆ B`` requires
``mask(A) & mask(B) == mask(A)``, so candidate scans reject most
non-inclusions without unpacking signature blobs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence

from repro.sat.cnf import CNF

#: Bytes kept per clause hash (128 bits: inclusion false-positives are
#: negligible even across millions of cached clauses).
CLAUSE_SIG_BYTES = 16


def clause_signatures(formula: CNF) -> List[bytes]:
    """Sorted 16-byte content hashes, one per canonical clause row."""
    sigs = []
    for clause in formula.clauses:
        row = " ".join(
            str(value) for value in sorted(lit.value for lit in clause)
        )
        sigs.append(
            hashlib.blake2b(
                row.encode(), digest_size=CLAUSE_SIG_BYTES
            ).digest()
        )
    sigs.sort()
    return sigs


def pack_signatures(sigs: Sequence[bytes]) -> bytes:
    """Signature list -> one BLOB column value."""
    return b"".join(sigs)


def unpack_signatures(blob: bytes) -> List[bytes]:
    """BLOB column value -> signature list."""
    return [
        blob[offset : offset + CLAUSE_SIG_BYTES]
        for offset in range(0, len(blob), CLAUSE_SIG_BYTES)
    ]


def signature_mask(sigs: Iterable[bytes]) -> int:
    """63-bit Bloom mask of a signature set (SQL-side prefilter).

    63 bits, not 64, so the mask always fits SQLite's signed INTEGER
    column without sign games.
    """
    mask = 0
    for sig in sigs:
        mask |= 1 << (sig[0] % 63)
    return mask


def sigs_subset(smaller: Sequence[bytes], larger: Sequence[bytes]) -> bool:
    """True when every signature in ``smaller`` appears in ``larger``."""
    return set(smaller) <= set(larger)


def model_completed(
    model: Sequence[int], num_vars: int
) -> List[int]:
    """Re-shape a cached model onto ``num_vars`` variables.

    Returns one signed literal per variable 1..``num_vars`` (the
    :class:`~repro.service.jobs.JobOutcome` model convention).
    Variables the cached model does not cover default to False — the
    validation step decides whether the completed model actually
    satisfies the new instance.
    """
    signs: Dict[int, bool] = {}
    for value in model:
        signs[abs(value)] = value > 0
    return [
        var if signs.get(var, False) else -var
        for var in range(1, num_vars + 1)
    ]


def model_satisfies(formula: CNF, model: Sequence[int]) -> bool:
    """Whether a signed-literal model satisfies every clause.

    This is the *re-validation* step of a subsumption hit: O(total
    literals), no search — cheap enough to run on every candidate.
    """
    signs = {abs(value): value > 0 for value in model}
    for clause in formula.clauses:
        for lit in clause:
            assigned = signs.get(lit.var)
            if assigned is not None and assigned == lit.positive:
                break
        else:
            return False
    return True


def family_signature(formula: CNF) -> str:
    """Hex digest over the signature *set* (not the header) — equal for
    any two formulas with the same clause multiset regardless of their
    declared variable counts.  Used as the clause-bank key."""
    digest = hashlib.blake2b(digest_size=CLAUSE_SIG_BYTES)
    for sig in clause_signatures(formula):
        digest.update(sig)
    return digest.hexdigest()
