"""The disk-backed result store: SQLite, WAL mode, restart-surviving.

:class:`PersistentResultStore` is the L2 of the service's result path
(the in-memory :class:`~repro.service.store.ResultStore` stays the
L1 for in-flight claims and same-session duplicates).  Three tables:

``results``
    One row per *solve key* (fingerprint + option hash): the full
    :class:`~repro.service.jobs.JobOutcome` JSON of a fresh solve.
    Exact hits replay this bit-identically — model, counters, seed —
    which is why warm-started solves are **never** written here (their
    counters differ from a cold solve's; they feed ``instances`` and
    ``clause_bank`` instead).

``instances``
    One row per formula fingerprint: the best known *option-free*
    facts — SAT with a model, or UNSAT — plus the clause-signature
    index (16-byte per-clause hashes and a 64-bit Bloom mask).  This
    is the subsumption layer: a model is a certificate valid under
    any solve options, and UNSAT of a clause-subset dooms every
    superset.

``clause_bank``
    One row per fingerprint: short learned clauses of the solve plus
    its conflict count.  A new instance whose clause set is a strict
    superset of a banked donor's is seeded with the donor's clauses
    through the incremental API (sound: everything derivable from a
    subset is derivable from the superset).

Durability/concurrency: WAL journal mode with ``synchronous=NORMAL``
(writes survive a ``kill -9``; readers never block the writer), a
``busy_timeout`` for cross-process ``hyqsat serve`` fleets sharing
one file, and an internal lock so one store instance is safe from the
gateway's executor threads.  The service's process *worker* pool never
touches the DB — all cache traffic happens on the coordinator.

Eviction is LRU (least-recently-hit) over ``results`` under
``max_entries``, plus TTL expiry under ``ttl_s``; evicting a result
row drops orphaned instance/bank rows on :meth:`gc`.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.cache.signature import (
    clause_signatures,
    model_completed,
    model_satisfies,
    pack_signatures,
    signature_mask,
    sigs_subset,
    unpack_signatures,
)
from repro.sat.cnf import CNF, fingerprint
from repro.service.jobs import JobOutcome, JobSpec

#: Clause-bank caps: only short clauses generalise across near-miss
#: instances, and seeding thousands would swamp the solve they help.
CLAUSE_BANK_MAX_LEN = 8
CLAUSE_BANK_MAX_CLAUSES = 256

#: Subsumption candidate scan cap per lookup (most recent first).
_SCAN_LIMIT = 512

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    solve_key   TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    outcome     TEXT NOT NULL,
    created_s   REAL NOT NULL,
    last_hit_s  REAL NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_results_lru ON results(last_hit_s);
CREATE INDEX IF NOT EXISTS idx_results_fp ON results(fingerprint);
CREATE TABLE IF NOT EXISTS instances (
    fingerprint TEXT PRIMARY KEY,
    num_vars    INTEGER NOT NULL,
    num_clauses INTEGER NOT NULL,
    mask        INTEGER NOT NULL,
    sigs        BLOB NOT NULL,
    status      TEXT NOT NULL,
    model       TEXT,
    created_s   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS clause_bank (
    fingerprint TEXT PRIMARY KEY,
    clauses     TEXT NOT NULL,
    conflicts   INTEGER NOT NULL,
    created_s   REAL NOT NULL
);
"""


@dataclass
class WarmStart:
    """Clause-bank donor material for one near-miss solve."""

    clauses: List[List[int]]
    donor_conflicts: int
    donor_fingerprint: str


@dataclass
class CacheStats:
    """Per-store-instance counters (flushed into ``hyqsat_cache_*``)."""

    hits: int = 0
    misses: int = 0
    subsumption_hits: Dict[str, int] = field(default_factory=dict)
    warm_starts: int = 0
    warm_start_conflicts_saved: int = 0
    evictions: int = 0

    def count_subsumption(self, kind: str) -> None:
        self.subsumption_hits[kind] = self.subsumption_hits.get(kind, 0) + 1


class PersistentResultStore:
    """Disk-backed solve-key -> outcome map with subsumption lookups.

    ``subsume`` gates the clause-signature layer (exact hits always
    work); ``warm_start`` gates clause-bank donation.  All methods are
    thread-safe; SQLite WAL mode makes the file safe to share across
    processes.
    """

    def __init__(
        self,
        path: str,
        max_entries: Optional[int] = None,
        ttl_s: Optional[float] = None,
        subsume: bool = True,
        warm_start: bool = True,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 when set")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive when set")
        self.path = path
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self.subsume = subsume
        self.warm_start = warm_start
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._db = sqlite3.connect(path, check_same_thread=False)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA busy_timeout=5000")
        with self._db:
            self._db.executescript(_SCHEMA)

    # -- lookups --------------------------------------------------------

    def lookup(
        self, key: str, spec: JobSpec, formula: CNF
    ) -> Optional[JobOutcome]:
        """The cached answer for ``spec``, or None (a miss).

        Exact solve-key hits replay the stored outcome bit-identically
        (``cache_kind="exact"``); subsumption hits return a freshly
        validated certificate with zeroed search counters
        (``cache_kind="model"`` or ``"unsat"``).  Never raises on a
        healthy database; the caller treats any exception as a miss.
        """
        now = time.time()
        with self._lock:
            self._expire_locked(now)
            row = self._db.execute(
                "SELECT outcome FROM results WHERE solve_key = ?", (key,)
            ).fetchone()
            if row is not None:
                with self._db:
                    self._db.execute(
                        "UPDATE results SET last_hit_s = ?, hits = hits + 1 "
                        "WHERE solve_key = ?",
                        (now, key),
                    )
                self.stats.hits += 1
                return self._exact_outcome(json.loads(row[0]), spec)
            if self.subsume:
                hit = self._subsumption_lookup_locked(spec, formula)
                if hit is not None:
                    return hit
            self.stats.misses += 1
            return None

    def _exact_outcome(
        self, payload: Dict[str, Any], spec: JobSpec
    ) -> JobOutcome:
        outcome = JobOutcome.from_dict(payload)
        outcome.job_id = spec.job_id
        outcome.dedup_of = None
        outcome.wait_seconds = 0.0
        outcome.run_seconds = 0.0
        outcome.cached = True
        outcome.cache_kind = "exact"
        return outcome

    def _certificate_outcome(
        self, spec: JobSpec, status: str, model: Optional[List[int]], kind: str
    ) -> JobOutcome:
        self.stats.count_subsumption(kind)
        return JobOutcome(
            job_id=spec.job_id,
            state="done",
            status=status,
            model=model,
            iterations=0,
            conflicts=0,
            seed=spec.seed,
            cached=True,
            cache_kind=kind,
        )

    def _subsumption_lookup_locked(
        self, spec: JobSpec, formula: CNF
    ) -> Optional[JobOutcome]:
        fp = fingerprint(formula)
        sigs = clause_signatures(formula)
        mask = signature_mask(sigs)
        # Same formula under different solve options: any cached
        # certificate transfers directly.
        row = self._db.execute(
            "SELECT status, model FROM instances WHERE fingerprint = ?",
            (fp,),
        ).fetchone()
        if row is not None:
            status, model_json = row
            if status == "unsat":
                return self._certificate_outcome(spec, "unsat", None, "unsat")
            if status == "sat" and model_json:
                model = model_completed(
                    json.loads(model_json), formula.num_vars
                )
                if model_satisfies(formula, model):
                    return self._certificate_outcome(
                        spec, "sat", model, "model"
                    )
        for cand in self._db.execute(
            "SELECT fingerprint, num_vars, mask, sigs, status, model "
            "FROM instances WHERE fingerprint != ? "
            "ORDER BY created_s DESC LIMIT ?",
            (fp, _SCAN_LIMIT),
        ):
            cand_fp, cand_vars, cand_mask, cand_blob, status, model_json = cand
            cand_mask = int(cand_mask)
            new_is_subset = (cand_mask & mask) == mask
            new_is_superset = (cand_mask & mask) == cand_mask
            if not (new_is_subset or new_is_superset):
                continue
            cand_sigs = unpack_signatures(cand_blob)
            if (
                status == "sat"
                and model_json
                and new_is_subset
                and sigs_subset(sigs, cand_sigs)
            ):
                # Our clauses are a subset of a satisfied instance:
                # its model satisfies us by construction — validate
                # anyway (hash defence) before serving it.
                model = model_completed(
                    json.loads(model_json), formula.num_vars
                )
                if model_satisfies(formula, model):
                    return self._certificate_outcome(
                        spec, "sat", model, "model"
                    )
            if new_is_superset and sigs_subset(cand_sigs, sigs):
                if status == "unsat":
                    # Every clause of an UNSAT instance is among ours:
                    # we are UNSAT too.
                    return self._certificate_outcome(
                        spec, "unsat", None, "unsat"
                    )
                if status == "sat" and model_json:
                    # Superset of a SAT instance: re-validate its model
                    # against our extra clauses instead of re-solving.
                    model = model_completed(
                        json.loads(model_json), formula.num_vars
                    )
                    if model_satisfies(formula, model):
                        return self._certificate_outcome(
                            spec, "sat", model, "model"
                        )
        return None

    def warm_clauses(self, formula: CNF) -> Optional[WarmStart]:
        """Banked learned clauses of the largest strict-subset donor.

        Sound because a clause derivable from a subset of our clauses
        is derivable from our clauses; literals beyond our variable
        range (possible when the donor declared more variables) are
        filtered defensively.
        """
        if not self.warm_start:
            return None
        sigs = clause_signatures(formula)
        mask = signature_mask(sigs)
        fp = fingerprint(formula)
        with self._lock:
            best: Optional[Tuple[int, str, str, int]] = None
            for cand in self._db.execute(
                "SELECT i.fingerprint, i.num_clauses, i.mask, i.sigs, "
                "b.clauses, b.conflicts FROM instances i "
                "JOIN clause_bank b ON b.fingerprint = i.fingerprint "
                "WHERE i.fingerprint != ? ORDER BY i.created_s DESC LIMIT ?",
                (fp, _SCAN_LIMIT),
            ):
                cand_fp, cand_clauses, cand_mask, cand_blob, bank, confl = cand
                if (int(cand_mask) & mask) != int(cand_mask):
                    continue
                if not sigs_subset(unpack_signatures(cand_blob), sigs):
                    continue
                if best is None or cand_clauses > best[0]:
                    best = (cand_clauses, cand_fp, bank, int(confl))
            if best is None:
                return None
            _, donor_fp, bank_json, conflicts = best
            clauses = [
                lits
                for lits in json.loads(bank_json)
                if all(abs(value) <= formula.num_vars for value in lits)
            ]
            if not clauses:
                return None
            return WarmStart(
                clauses=clauses,
                donor_conflicts=conflicts,
                donor_fingerprint=donor_fp,
            )

    # -- writes ---------------------------------------------------------

    def record(
        self, key: str, formula: CNF, outcome: JobOutcome
    ) -> None:
        """Persist a finished solve.

        Fresh (non-warm-started) ``done`` outcomes land in ``results``
        for bit-identical replay.  Any definitive sat/unsat answer —
        warm-started or not — updates the instance index and, when the
        outcome carries learned clauses, the clause bank.  Cached
        outcomes are never re-recorded.
        """
        if outcome.state != "done" or outcome.cached:
            return
        now = time.time()
        payload = outcome.as_dict()
        payload["learned"] = None
        with self._lock, self._db:
            fp = fingerprint(formula)
            if not outcome.warm_clauses:
                self._db.execute(
                    "INSERT OR REPLACE INTO results "
                    "(solve_key, fingerprint, outcome, created_s, "
                    " last_hit_s, hits) VALUES (?, ?, ?, ?, ?, 0)",
                    (key, fp, json.dumps(payload), now, now),
                )
            if outcome.status in ("sat", "unsat"):
                sigs = clause_signatures(formula)
                self._db.execute(
                    "INSERT OR REPLACE INTO instances "
                    "(fingerprint, num_vars, num_clauses, mask, sigs, "
                    " status, model, created_s) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        fp,
                        formula.num_vars,
                        formula.num_clauses,
                        signature_mask(sigs),
                        pack_signatures(sigs),
                        outcome.status,
                        json.dumps(outcome.model)
                        if outcome.model is not None
                        else None,
                        now,
                    ),
                )
            if outcome.learned:
                self._db.execute(
                    "INSERT OR REPLACE INTO clause_bank "
                    "(fingerprint, clauses, conflicts, created_s) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        fp,
                        json.dumps(outcome.learned),
                        int(outcome.conflicts or 0),
                        now,
                    ),
                )
            self._evict_locked(now)

    def note_warm_start(self, donor_conflicts: int, conflicts: int) -> None:
        """Count one warm-started solve and its conflict savings
        (thread-safe; callers report after the solve finishes)."""
        with self._lock:
            self.stats.warm_starts += 1
            self.stats.warm_start_conflicts_saved += max(
                0, donor_conflicts - conflicts
            )

    # -- maintenance ----------------------------------------------------

    def _expire_locked(self, now: float) -> None:
        if self.ttl_s is None:
            return
        with self._db:
            cursor = self._db.execute(
                "DELETE FROM results WHERE last_hit_s < ?",
                (now - self.ttl_s,),
            )
        self.stats.evictions += cursor.rowcount

    def _evict_locked(self, now: float) -> None:
        self._expire_locked(now)
        if self.max_entries is None:
            return
        (count,) = self._db.execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()
        overflow = count - self.max_entries
        if overflow > 0:
            self._db.execute(
                "DELETE FROM results WHERE solve_key IN ("
                "SELECT solve_key FROM results "
                "ORDER BY last_hit_s ASC LIMIT ?)",
                (overflow,),
            )
            self.stats.evictions += overflow

    def gc(
        self,
        max_entries: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> int:
        """Apply eviction policy now; returns rows dropped.

        Overrides (when given) replace the constructor's cap/TTL for
        this pass.  Also drops instance/clause-bank rows no results
        row references, then VACUUMs.
        """
        before = self.stats.evictions
        with self._lock:
            if max_entries is not None:
                self.max_entries = max_entries
            if ttl_s is not None:
                self.ttl_s = ttl_s
            with self._db:
                self._evict_locked(time.time())
                orphans = self._db.execute(
                    "DELETE FROM instances WHERE fingerprint NOT IN "
                    "(SELECT fingerprint FROM results)"
                ).rowcount
                self._db.execute(
                    "DELETE FROM clause_bank WHERE fingerprint NOT IN "
                    "(SELECT fingerprint FROM instances)"
                )
            self._db.execute("VACUUM")
            self.stats.evictions += max(0, orphans)
        return self.stats.evictions - before

    def entry_count(self) -> int:
        with self._lock:
            (count,) = self._db.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            return count

    def describe(self) -> Dict[str, Any]:
        """Stats snapshot for ``hyqsat cache stats``."""
        with self._lock:
            (results,) = self._db.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            (instances,) = self._db.execute(
                "SELECT COUNT(*) FROM instances"
            ).fetchone()
            (banked,) = self._db.execute(
                "SELECT COUNT(*) FROM clause_bank"
            ).fetchone()
            (total_hits,) = self._db.execute(
                "SELECT COALESCE(SUM(hits), 0) FROM results"
            ).fetchone()
            (page_count,) = self._db.execute(
                "PRAGMA page_count"
            ).fetchone()
            (page_size,) = self._db.execute("PRAGMA page_size").fetchone()
            return {
                "path": self.path,
                "results": results,
                "instances": instances,
                "clause_banks": banked,
                "lifetime_hits": total_hits,
                "db_bytes": page_count * page_size,
                "max_entries": self.max_entries,
                "ttl_s": self.ttl_s,
            }

    def export_rows(self) -> Iterator[Dict[str, Any]]:
        """Every results row as a JSON-able dict (``cache export``)."""
        with self._lock:
            rows = self._db.execute(
                "SELECT solve_key, fingerprint, outcome, created_s, "
                "last_hit_s, hits FROM results ORDER BY created_s"
            ).fetchall()
        for key, fp, outcome, created, last_hit, hits in rows:
            yield {
                "solve_key": key,
                "fingerprint": fp,
                "outcome": json.loads(outcome),
                "created_s": created,
                "last_hit_s": last_hit,
                "hits": hits,
            }

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "PersistentResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
