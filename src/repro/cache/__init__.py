"""Persistent, subsumption-aware result cache (L2 under the service's
in-memory :class:`~repro.service.store.ResultStore`).

The service/gateway layers answer three progressively cheaper
questions before paying for a solve:

1. **Exact hit** — has this *solve key* (canonical CNF fingerprint +
   every outcome-relevant option) been solved before, in any process
   lifetime?  Replay the stored outcome bit-identically.
2. **Subsumption hit** — is this instance a clause-subset or
   clause-superset of a solved instance?  A subset of a SAT instance
   inherits its model; a superset of an UNSAT instance inherits
   UNSAT; a superset of a SAT instance has the cached model
   *re-validated* (not re-solved) against the extra clauses.
3. **Warm start** — failing both, do we hold banked learned clauses
   of a clause-subset donor?  Every clause learned from a subset
   formula is implied by the superset, so the solve is seeded through
   the incremental API (``add_clause``) to skip re-deriving them.

Everything is stdlib SQLite (WAL mode) so the cache survives
restarts and concurrent ``hyqsat serve`` processes; see
docs/SERVICE.md ("Result cache").
"""

from repro.cache.persistent import (
    CLAUSE_BANK_MAX_CLAUSES,
    CLAUSE_BANK_MAX_LEN,
    CacheStats,
    PersistentResultStore,
    WarmStart,
)
from repro.cache.signature import (
    clause_signatures,
    model_completed,
    model_satisfies,
    signature_mask,
    sigs_subset,
)

__all__ = [
    "CLAUSE_BANK_MAX_CLAUSES",
    "CLAUSE_BANK_MAX_LEN",
    "CacheStats",
    "PersistentResultStore",
    "WarmStart",
    "clause_signatures",
    "model_completed",
    "model_satisfies",
    "signature_mask",
    "sigs_subset",
]
