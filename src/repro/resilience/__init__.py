"""Resilience layer: surviving QPU service failure, not just noise.

The paper's deployment is a CDCL loop calling a remote, shared D-Wave
2000Q; on live service, calls fail to program, time out, and drift out
of calibration.  This package wraps the simulated device with the
client-side machinery such a deployment needs:

- :class:`ResilientDevice` — retry with exponential backoff and
  decorrelated jitter, per-call deadlines, a global QA time budget on
  the modelled device clock, and a circuit breaker.
- :class:`CircuitBreaker` / :class:`BreakerState` — the closed →
  open → half-open state machine.
- :class:`QaUnavailable` — the single exception surfaced to callers;
  its ``persistent`` flag tells the hybrid loop whether to degrade to
  pure CDCL (the paper's Strategy 3 is the per-call fallback).

Policies are plain dataclasses in :mod:`repro.core.config`
(:class:`~repro.core.config.RetryPolicy`,
:class:`~repro.core.config.BreakerPolicy`,
:class:`~repro.core.config.ResilienceConfig`).
"""

from repro.core.config import BreakerPolicy, ResilienceConfig, RetryPolicy
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.device import QaUnavailable, ResilienceStats, ResilientDevice

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "QaUnavailable",
    "ResilienceConfig",
    "ResilienceStats",
    "ResilientDevice",
    "RetryPolicy",
]
