"""Circuit breaker over the modelled device clock.

Standard three-state breaker (closed → open → half-open) protecting
the hybrid loop from hammering a failing QPU service: after
``failure_threshold`` *consecutive* failures the breaker opens and
calls are refused outright; once ``cooldown_us`` of modelled time has
passed it admits ``half_open_probes`` probe call(s), closing again
only if every probe succeeds.

The clock is injected as a callable returning *modelled microseconds*
(the :class:`~repro.annealer.timing.QpuTimingModel` accounting the
resilience layer maintains), never wall time, so breaker behaviour is
deterministic and replayable.  Every transition is recorded as
``(clock_us, from_state, to_state)`` for the determinism tests and the
CLI summary.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, List, Tuple

from repro.core.config import BreakerPolicy


class BreakerState(enum.Enum):
    """The three breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(self, policy: BreakerPolicy, clock: Callable[[], float]):
        self.policy = policy
        self.clock = clock
        self.state = BreakerState.CLOSED
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self._forced = False

    def _transition(self, to: BreakerState) -> None:
        self.transitions.append((self.clock(), self.state, to))
        self.state = to

    def force_open(self) -> None:
        """Open the breaker permanently (no cooldown recovery).

        Used to pin the solver to pure-CDCL mode: with the breaker
        forced open every QA call is refused before touching the
        device, so the hybrid run is bit-identical to classic CDCL.
        """
        self._forced = True
        if self.state is not BreakerState.OPEN:
            self._transition(BreakerState.OPEN)
        self._opened_at = math.inf

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        An open breaker whose cooldown has expired moves to half-open
        as a side effect (the probe is this very call).
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self._forced:
                return False
            if self.clock() - self._opened_at >= self.policy.cooldown_us:
                self._probe_successes = 0
                self._transition(BreakerState.HALF_OPEN)
                return True
            return False
        return True  # HALF_OPEN: probes flow through

    def record_success(self) -> None:
        """Note a successful call."""
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.policy.half_open_probes:
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """Note a failed call; may open the breaker."""
        if self.state is BreakerState.HALF_OPEN:
            self._opened_at = self.clock()
            self._transition(BreakerState.OPEN)
            return
        self._consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._opened_at = self.clock()
            self._transition(BreakerState.OPEN)

    @property
    def is_open(self) -> bool:
        """True when calls are currently refused."""
        return self.state is BreakerState.OPEN
