"""The resilient device proxy.

:class:`ResilientDevice` wraps any :class:`~repro.annealer.device.
AnnealerDevice`-shaped object (anything with ``run(request)``) and
turns its typed faults into a single, well-defined outcome per call:
either an :class:`~repro.annealer.device.AnnealResult` (possibly
salvaged from partial reads) or :class:`QaUnavailable` — the *only*
exception the hybrid loop has to handle.

Policies (see :mod:`repro.core.config`):

- **Retry + backoff** — up to ``max_attempts`` tries per call with
  exponential backoff and decorrelated jitter, drawn from a seeded RNG
  so the retry trace replays exactly.
- **Deadlines and budget** — a per-call deadline truncates requests to
  the reads that fit; a global QA budget caps total modelled device
  time (anneal + readout + programming + backoff) across the solve.
  All accounting uses the :class:`~repro.annealer.timing.QpuTimingModel`
  clock, never wall time.
- **Circuit breaker** — consecutive failed *calls* open the breaker;
  while open, calls are refused before touching the device.

Every decision is recorded in :class:`ResilienceStats` (attempt-level
retry trace, per-channel fault counts, budget spent, breaker
transitions) for `HybridStats`, the CLI summary, and the determinism
tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.annealer.device import AnnealRequest, AnnealResult
from repro.annealer.faults import (
    CalibrationDrift,
    DeviceFault,
    ProgrammingError,
    ReadoutTimeout,
)
from repro.core.config import ResilienceConfig
from repro.resilience.breaker import BreakerState, CircuitBreaker


class QaUnavailable(RuntimeError):
    """The QA service could not serve this call and retrying now is
    pointless.

    ``reason`` is one of ``breaker_open``, ``budget_exhausted``,
    ``deadline``, ``calibration_drift``, or ``retries_exhausted``.
    The first four are *persistent* (the condition outlives this call,
    so the hybrid loop degrades to pure CDCL); ``retries_exhausted``
    is transient (this call lost its retry budget, the next may
    succeed).
    """

    #: Reasons that will affect every subsequent call identically.
    PERSISTENT_REASONS = frozenset(
        {"breaker_open", "budget_exhausted", "deadline", "calibration_drift"}
    )

    def __init__(
        self,
        reason: str,
        message: str,
        cause: Optional[DeviceFault] = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.cause = cause

    @property
    def persistent(self) -> bool:
        """True when the condition outlives this call."""
        return self.reason in self.PERSISTENT_REASONS


@dataclass
class ResilienceStats:
    """Counters and traces of one :class:`ResilientDevice` lifetime."""

    calls: int = 0
    attempts: int = 0
    successes: int = 0
    retries: int = 0
    failed_attempts: int = 0
    unavailable: int = 0
    partial_accepted: int = 0
    truncated_calls: int = 0
    recalibrations: int = 0
    budget_spent_us: float = 0.0
    backoff_us: float = 0.0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: One entry per attempt or refusal:
    #: ``(call, attempt, event, backoff_us)``.
    retry_trace: List[Tuple[int, int, str, float]] = field(default_factory=list)

    def count_fault(self, name: str) -> None:
        """Bump the per-channel fault counter."""
        self.fault_counts[name] = self.fault_counts.get(name, 0) + 1


class ResilientDevice:
    """Retry/deadline/budget/breaker proxy around an annealer device.

    Drop-in for :class:`~repro.annealer.device.AnnealerDevice` wherever
    only ``run`` and the passive attributes (``hardware``,
    ``chain_strength``, ``timing``) are used; unknown attributes
    delegate to the wrapped device.
    """

    def __init__(
        self,
        device,
        config: Optional[ResilienceConfig] = None,
        observability=None,
    ):
        from repro.observability import DISABLED

        self.inner = device
        self.config = config or ResilienceConfig()
        self.stats = ResilienceStats()
        self._rng = np.random.default_rng(self.config.seed)
        self.breaker = CircuitBreaker(
            self.config.breaker, clock=lambda: self.stats.budget_spent_us
        )
        self.observability = DISABLED
        if observability is not None:
            self.set_observability(observability)

    # -- delegation ----------------------------------------------------

    @property
    def hardware(self):
        """The wrapped device's topology."""
        return self.inner.hardware

    @property
    def timing(self):
        """The wrapped device's timing model (the budget clock)."""
        return self.inner.timing

    @property
    def chain_strength(self):
        """The wrapped device's chain strength."""
        return getattr(self.inner, "chain_strength", None)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def recalibrate(self) -> None:
        """Recalibrate the wrapped device."""
        self.inner.recalibrate()

    def set_observability(self, observability) -> None:
        """Attach a tracing/metrics bundle here and on the wrapped
        device (retry/breaker decisions become ``qa.*`` /
        ``breaker.transition`` events and service-level metrics)."""
        from repro.observability import DISABLED, declare_solver_metrics

        self.observability = observability or DISABLED
        if self.observability.metrics is not None:
            declare_solver_metrics(self.observability.metrics)
        if hasattr(self.inner, "set_observability"):
            self.inner.set_observability(observability)

    # -- helpers -------------------------------------------------------

    @property
    def breaker_state(self) -> str:
        """Current breaker state name (for stats/CLI)."""
        return self.breaker.state.value

    def force_degraded(self) -> None:
        """Permanently refuse QA calls (pure-CDCL mode)."""
        self.breaker.force_open()

    def budget_remaining_us(self) -> float:
        """Modelled microseconds of QA budget left (inf if unlimited)."""
        if self.config.qa_budget_us is None:
            return float("inf")
        return max(0.0, self.config.qa_budget_us - self.stats.budget_spent_us)

    def _charge(self, amount_us: float) -> None:
        self.stats.budget_spent_us += amount_us

    def _fits_budget(self, amount_us: float) -> bool:
        if self.config.qa_budget_us is None:
            return True
        return self.stats.budget_spent_us + amount_us <= self.config.qa_budget_us

    def _deadline_reads(self, num_reads: int) -> int:
        """Max reads of this request that fit the per-call deadline
        (0 when not even one read fits)."""
        deadline = self.config.call_deadline_us
        if deadline is None:
            return num_reads
        timing = self.timing
        per_read = timing.sample_us + timing.inter_sample_delay_us
        if per_read <= 0:
            return num_reads
        budgetable = deadline - timing.programming_us + timing.inter_sample_delay_us
        fit = int(budgetable // per_read)
        return max(0, min(num_reads, fit))

    # -- the call ------------------------------------------------------

    #: retry_trace event names that are refusals or outcomes rather
    #: than failed device attempts; anything else in the trace marks an
    #: attempt that hit a fault and becomes a ``qa.retry`` event.
    _OUTCOME_TRACE_EVENTS = frozenset(
        {"success", "partial_accepted", "breaker_open", "deadline",
         "budget_exhausted"}
    )

    def run(self, request: AnnealRequest) -> AnnealResult:
        """One resilient device call.

        Raises :class:`QaUnavailable` (only) when the call cannot be
        served; all typed device faults are absorbed by the retry
        loop.  With observability attached, each retried attempt, each
        breaker transition, and each refusal is emitted as an event
        under the enclosing ``anneal`` span.
        """
        obs = self.observability
        if not obs.enabled:
            return self._run_guarded(request)
        marks = (
            len(self.stats.retry_trace),
            len(self.breaker.transitions),
            self.stats.retries,
        )
        try:
            return self._run_guarded(request)
        except QaUnavailable as unavailable:
            obs.tracer.event(
                "qa.unavailable",
                reason=unavailable.reason,
                persistent=unavailable.persistent,
            )
            raise
        finally:
            self._observe_call(obs, *marks)

    def _observe_call(
        self, obs, trace_mark: int, transition_mark: int, retries_mark: int
    ) -> None:
        """Emit events/metrics for everything this call recorded."""
        tracer = obs.tracer
        metrics = obs.metrics
        if tracer.enabled:
            for call, attempt, event, backoff_us in self.stats.retry_trace[
                trace_mark:
            ]:
                if event in self._OUTCOME_TRACE_EVENTS:
                    continue
                tracer.event(
                    "qa.retry",
                    attempt=attempt,
                    fault=event,
                    backoff_us=backoff_us,
                )
        for clock_us, from_state, to_state in self.breaker.transitions[
            transition_mark:
        ]:
            if tracer.enabled:
                tracer.event(
                    "breaker.transition",
                    from_state=from_state.value,
                    to_state=to_state.value,
                    clock_us=clock_us,
                )
            if metrics is not None:
                metrics.counter("hyqsat_breaker_transitions_total").labels(
                    from_state=from_state.value, to_state=to_state.value
                ).inc()
        if metrics is not None:
            retries = self.stats.retries - retries_mark
            if retries:
                metrics.counter("hyqsat_qa_retries_total").inc(retries)
            from repro.observability import BREAKER_STATE_CODES

            metrics.gauge("hyqsat_breaker_state").set(
                BREAKER_STATE_CODES[self.breaker.state.value]
            )
            metrics.gauge("hyqsat_qa_budget_spent_us").set(
                self.stats.budget_spent_us
            )

    def _run_guarded(self, request: AnnealRequest) -> AnnealResult:
        """The retry/deadline/budget/breaker state machine."""
        stats = self.stats
        stats.calls += 1
        call = stats.calls

        if not self.breaker.allow():
            stats.unavailable += 1
            stats.retry_trace.append((call, 0, "breaker_open", 0.0))
            raise QaUnavailable(
                "breaker_open",
                f"circuit breaker open; call {call} refused",
            )

        reads = self._deadline_reads(request.num_reads)
        if reads < 1:
            stats.unavailable += 1
            stats.retry_trace.append((call, 0, "deadline", 0.0))
            self.breaker.record_failure()
            raise QaUnavailable(
                "deadline",
                f"call deadline {self.config.call_deadline_us:.0f}us cannot "
                "fit a single read",
            )
        if reads < request.num_reads:
            stats.truncated_calls += 1
            request = dataclasses.replace(request, num_reads=reads)

        attempt_cost = self.timing.total_us(request.num_reads)
        backoff = self.config.retry.base_backoff_us
        last_fault: Optional[DeviceFault] = None
        event = "fault"
        for attempt in range(1, self.config.retry.max_attempts + 1):
            if not self._fits_budget(attempt_cost):
                stats.unavailable += 1
                stats.retry_trace.append((call, attempt, "budget_exhausted", 0.0))
                raise QaUnavailable(
                    "budget_exhausted",
                    f"QA budget spent ({stats.budget_spent_us:.0f}us of "
                    f"{self.config.qa_budget_us:.0f}us); call {call} refused",
                    cause=last_fault,
                )
            stats.attempts += 1
            if attempt > 1:
                stats.retries += 1
            try:
                result = self.inner.run(request)
            except ProgrammingError as fault:
                self._charge(self.timing.programming_us)
                last_fault = fault
                event = "programming_error"
                stats.count_fault(event)
            except CalibrationDrift as fault:
                self._charge(self.timing.programming_us)
                last_fault = fault
                event = "calibration_drift"
                stats.count_fault(event)
                if not self.config.recalibrate_on_drift:
                    stats.failed_attempts += 1
                    stats.unavailable += 1
                    stats.retry_trace.append(
                        (call, attempt, "calibration_drift", 0.0)
                    )
                    self.breaker.record_failure()
                    raise QaUnavailable(
                        "calibration_drift",
                        "device out of calibration and recalibration is "
                        "disabled",
                        cause=fault,
                    )
                self.recalibrate()
                stats.recalibrations += 1
            except ReadoutTimeout as fault:
                charged = fault.elapsed_us
                if self.config.call_deadline_us is not None:
                    charged = min(charged, self.config.call_deadline_us)
                self._charge(charged)
                last_fault = fault
                event = "readout_timeout"
                stats.count_fault(event)
                if self.config.accept_partial_reads and fault.partial:
                    stats.partial_accepted += 1
                    stats.successes += 1
                    stats.retry_trace.append(
                        (call, attempt, "partial_accepted", 0.0)
                    )
                    self.breaker.record_success()
                    return AnnealResult(
                        samples=tuple(fault.partial),
                        qpu_time_us=charged,
                        dropped_reads=request.num_reads - len(fault.partial),
                    )
            else:
                self._charge(result.qpu_time_us)
                stats.successes += 1
                stats.retry_trace.append((call, attempt, "success", 0.0))
                self.breaker.record_success()
                return result

            # One failed attempt.
            stats.failed_attempts += 1
            if attempt >= self.config.retry.max_attempts:
                stats.retry_trace.append((call, attempt, event, 0.0))
                break
            # Decorrelated jitter: sleep ~ U[base, min(max, 3*prev)],
            # charged to the budget in modelled microseconds.
            retry_policy = self.config.retry
            high = min(retry_policy.max_backoff_us, 3.0 * backoff)
            low = min(retry_policy.base_backoff_us, high)
            backoff = float(self._rng.uniform(low, high)) if high > 0 else 0.0
            stats.retry_trace.append((call, attempt, event, backoff))
            if not self._fits_budget(backoff):
                stats.unavailable += 1
                stats.retry_trace.append(
                    (call, attempt, "budget_exhausted", 0.0)
                )
                raise QaUnavailable(
                    "budget_exhausted",
                    "QA budget cannot absorb the retry backoff",
                    cause=last_fault,
                )
            self._charge(backoff)
            stats.backoff_us += backoff

        self.breaker.record_failure()
        stats.unavailable += 1
        if self.breaker.is_open:
            raise QaUnavailable(
                "breaker_open",
                f"call {call} exhausted its retries and opened the breaker",
                cause=last_fault,
            )
        raise QaUnavailable(
            "retries_exhausted",
            f"call {call} failed {self.config.retry.max_attempts} attempts",
            cause=last_fault,
        )
